#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the test suite.
#
#   ./ci/check.sh          # fmt + clippy + build + quick tests
#   ./ci/check.sh --full   # also the release build and full test suite
#
# Everything runs with --offline; the workspace has no external
# dependencies, so no network access is ever required.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
[[ "${1:-}" == "--full" ]] && full=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build"
cargo build --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline --quiet

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps --quiet

echo "==> turnlint gate"
# The static-analysis gate: every design-space claim, the algorithm x
# topology verification matrix, and invariant-sanitized runs of both
# engines. Then the self-test: injecting a known-bad turn set must make
# the gate fail (otherwise it is blind and proves nothing).
lint_tmp="$(mktemp -d)"
trap 'rm -rf "$lint_tmp"' EXIT
cargo run --offline --quiet -p turnroute-analysis --bin turnlint -- \
    --quick --out "$lint_tmp/turnlint.json" > "$lint_tmp/turnlint.log"
test -s "$lint_tmp/turnlint.json"
if cargo run --offline --quiet -p turnroute-analysis --bin turnlint -- \
    --quick --inject-bad --out "$lint_tmp/turnlint_bad.json" \
    > "$lint_tmp/turnlint_bad.log" 2>&1; then
    echo "turnlint --inject-bad unexpectedly passed; the gate is blind" >&2
    exit 1
fi
grep -q "witness" "$lint_tmp/turnlint_bad.log"

echo "==> turnprove gate"
# The proof-certificate gate: every configuration of the matrix (turn
# sets, 3D sets, hypercube/torus algorithms, double-y virtual channels,
# every sweep fault plan) must produce a certificate the independent
# checker accepts, and the simulator cross-validations must agree with
# the static verdicts. Then the self-test: planting a cyclic VC
# assignment declared deadlock free must make the gate fail with a
# checker-validated witness cycle.
cargo run --offline --quiet -p turnroute-analysis --bin turnprove -- \
    --quick --out "$lint_tmp/turnprove.json" > "$lint_tmp/turnprove.log"
test -s "$lint_tmp/turnprove.json"
if cargo run --offline --quiet -p turnroute-analysis --bin turnprove -- \
    --quick --inject-bad --out "$lint_tmp/turnprove_bad.json" \
    > "$lint_tmp/turnprove_bad.log" 2>&1; then
    echo "turnprove --inject-bad unexpectedly passed; the gate is blind" >&2
    exit 1
fi
grep -q "witness" "$lint_tmp/turnprove_bad.log"

echo "==> fault-injection group"
# The fault subsystem's own gates, runnable in isolation: determinism and
# degradation tests in both simulators, the sweep harness, and the
# workspace deadlock-freedom-under-faults suite.
cargo test -p turnroute-sim --offline --quiet fault
cargo test -p turnroute-vc --offline --quiet fault
cargo test -p turnroute-experiments --offline --quiet faults
cargo test -p turnroute --offline --quiet --test fault_tolerance

if [[ $full -eq 1 ]]; then
    echo "==> cargo build --release"
    cargo build --workspace --release --offline
    echo "==> exp smoke runs"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp" "$lint_tmp"' EXIT
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        fig13 --quick --out "$tmp" --metrics-out "$tmp/metrics.json"
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        fig1 --trace --out "$tmp"
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        faults --quick --out "$tmp"
    test -s "$tmp/metrics.json"
    test -s "$tmp/fig1_postmortem.jsonl"
    test -s "$tmp/faults.csv"
fi

echo "OK"
