#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the test suite.
#
#   ./ci/check.sh          # fmt + clippy + build + quick tests
#   ./ci/check.sh --full   # also the release build and full test suite
#
# Everything runs with --offline; the workspace has no external
# dependencies, so no network access is ever required.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
[[ "${1:-}" == "--full" ]] && full=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build"
cargo build --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline --quiet

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps --quiet

echo "==> turnlint gate"
# The static-analysis gate: every design-space claim, the algorithm x
# topology verification matrix, and invariant-sanitized runs of both
# engines. Then the self-test: injecting a known-bad turn set must make
# the gate fail (otherwise it is blind and proves nothing).
lint_tmp="$(mktemp -d)"
trap 'rm -rf "$lint_tmp"' EXIT
cargo run --offline --quiet -p turnroute-analysis --bin turnlint -- \
    --quick --min-witness --out "$lint_tmp/turnlint.json" > "$lint_tmp/turnlint.log"
test -s "$lint_tmp/turnlint.json"
grep -q "min-witness-girth" "$lint_tmp/turnlint.log"
if cargo run --offline --quiet -p turnroute-analysis --bin turnlint -- \
    --quick --inject-bad --min-witness --out "$lint_tmp/turnlint_bad.json" \
    > "$lint_tmp/turnlint_bad.log" 2>&1; then
    echo "turnlint --inject-bad unexpectedly passed; the gate is blind" >&2
    exit 1
fi
grep -q "witness" "$lint_tmp/turnlint_bad.log"

echo "==> turnprove gate"
# The proof-certificate gate: every configuration of the matrix (turn
# sets, 3D sets, hypercube/torus algorithms, double-y virtual channels,
# every sweep fault plan) must produce a certificate the independent
# checker accepts, and the simulator cross-validations must agree with
# the static verdicts. Then the self-test: planting a cyclic VC
# assignment declared deadlock free must make the gate fail with a
# checker-validated witness cycle.
cargo run --offline --quiet -p turnroute-analysis --bin turnprove -- \
    --quick --out "$lint_tmp/turnprove.json" > "$lint_tmp/turnprove.log"
test -s "$lint_tmp/turnprove.json"
if cargo run --offline --quiet -p turnroute-analysis --bin turnprove -- \
    --quick --inject-bad --out "$lint_tmp/turnprove_bad.json" \
    > "$lint_tmp/turnprove_bad.log" 2>&1; then
    echo "turnprove --inject-bad unexpectedly passed; the gate is blind" >&2
    exit 1
fi
grep -q "witness" "$lint_tmp/turnprove_bad.log"

echo "==> turncheck gate"
# The model-checking gate: drive the production engines through every
# reachable global state of the small-configuration matrix (quick
# profile), refute every census-unsafe set with a counterexample that
# replays to a stuck state, and seal the first counterexample as a TTRL
# log that turnstat must replay. Then the self-test: a planted
# arbitration bug that skips the turn-set filter on one router must be
# caught as a reachable stuck state.
cargo run --offline --quiet -p turnroute-analysis --bin turncheck -- \
    --quick --out "$lint_tmp/mc.json" \
    --ttr-out "$lint_tmp/mc_counterexample.ttr" > "$lint_tmp/turncheck.log"
test -s "$lint_tmp/mc.json"
test -s "$lint_tmp/mc_counterexample.ttr"
grep -q "configurations verified" "$lint_tmp/turncheck.log"
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    replay "$lint_tmp/mc_counterexample.ttr" --out "$lint_tmp/mc_replay.json" 2> /dev/null
test -s "$lint_tmp/mc_replay.json"
if cargo run --offline --quiet -p turnroute-analysis --bin turncheck -- \
    --quick --inject-bad --out "$lint_tmp/mc_bad.json" \
    --ttr-out "$lint_tmp/mc_bad.ttr" > "$lint_tmp/turncheck_bad.log" 2>&1; then
    echo "turncheck --inject-bad unexpectedly passed; the gate is blind" >&2
    exit 1
fi
grep -q "MODEL CHECKING FAILED" "$lint_tmp/turncheck_bad.log"

echo "==> turnsynth gate"
# The synthesis gate: every cyclic configuration of the matrix must get a
# synthesized escape/adaptive VC assignment whose certificate the
# independent checker accepts, byte-stable across reruns, with the
# simulator cross-validations agreeing (unsplit deadlocks, synthesized
# delivers 100%). Then the self-test: planting a dependency cycle inside
# the escape class while keeping the clean certificate must be rejected
# by the checker — not the synthesizer — and fail the gate.
cargo run --offline --quiet -p turnroute-analysis --bin turnsynth -- \
    --quick --out "$lint_tmp/turnsynth_a.json" > "$lint_tmp/turnsynth.log"
test -s "$lint_tmp/turnsynth_a.json"
cargo run --offline --quiet -p turnroute-analysis --bin turnsynth -- \
    --quick --out "$lint_tmp/turnsynth_b.json" > /dev/null
cmp "$lint_tmp/turnsynth_a.json" "$lint_tmp/turnsynth_b.json"
if cargo run --offline --quiet -p turnroute-analysis --bin turnsynth -- \
    --quick --inject-bad --out "$lint_tmp/turnsynth_bad.json" \
    > "$lint_tmp/turnsynth_bad.log" 2>&1; then
    echo "turnsynth --inject-bad unexpectedly passed; the gate is blind" >&2
    exit 1
fi
grep -q "checker rejected" "$lint_tmp/turnsynth_bad.log"
grep -q "self-test" "$lint_tmp/turnsynth_bad.log"

echo "==> turntrace gate"
# The observability gate: recording the canonical scenario twice with
# the same seed must produce byte-identical logs and aggregates,
# replaying a log (no re-simulation) must reproduce the live aggregates
# byte for byte, and the verifier self-test must reject every injected
# corruption (truncations and bit flips).
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    record --quick --seed 7 --out "$lint_tmp/trace_a" 2> /dev/null
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    record --quick --seed 7 --out "$lint_tmp/trace_b" 2> /dev/null
cmp "$lint_tmp/trace_a/run.ttr" "$lint_tmp/trace_b/run.ttr"
cmp "$lint_tmp/trace_a/aggregates.json" "$lint_tmp/trace_b/aggregates.json"
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    replay "$lint_tmp/trace_a/run.ttr" --out "$lint_tmp/replayed.json" 2> /dev/null
cmp "$lint_tmp/trace_a/aggregates.json" "$lint_tmp/replayed.json"
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    verify "$lint_tmp/trace_a/run.ttr" --against "$lint_tmp/trace_a/aggregates.json" \
    > "$lint_tmp/turnstat.log"
grep -q "byte-identical" "$lint_tmp/turnstat.log"
if cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    verify "$lint_tmp/trace_a/run.ttr" --inject-bad \
    > "$lint_tmp/turnstat_bad.log" 2>&1; then
    echo "turnstat --inject-bad unexpectedly passed; the verifier is blind" >&2
    exit 1
fi
grep -q "rejected" "$lint_tmp/turnstat_bad.log"
grep -q "self-test ok" "$lint_tmp/turnstat_bad.log"

echo "==> turnheal gate"
# The online-reconfiguration gate: a short seeded chaos storm must soak
# clean in both engines (sanitizer, delivered floor, a checker-validated
# certificate for every epoch), two same-seed runs must produce
# byte-identical healing logs, the log must replay through turnstat, and
# the self-test (--inject-bad swaps in a stale certificate) must be
# caught by the independent checker.
cargo run --offline --quiet -p turnroute-experiments --bin exp -- \
    chaos --quick --seed 7 --out "$lint_tmp/heal_a" 2> /dev/null
cargo run --offline --quiet -p turnroute-experiments --bin exp -- \
    chaos --quick --seed 7 --out "$lint_tmp/heal_b" 2> /dev/null
cmp "$lint_tmp/heal_a/chaos_heal.ttr" "$lint_tmp/heal_b/chaos_heal.ttr"
cmp "$lint_tmp/heal_a/chaos.md" "$lint_tmp/heal_b/chaos.md"
# The healing log is a sealed TTRL stream: turnstat must replay it.
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    replay "$lint_tmp/heal_a/chaos_heal.ttr" --out "$lint_tmp/heal_replay.json" 2> /dev/null
test -s "$lint_tmp/heal_replay.json"
grep -q "every epoch certified: yes" "$lint_tmp/heal_a/chaos.md"
cargo run --offline --quiet -p turnroute-experiments --bin exp -- \
    chaos --quick --seed 7 --inject-bad --out "$lint_tmp/heal_bad" 2> /dev/null
grep -q "self-test ok" "$lint_tmp/heal_bad/chaos.md"

echo "==> turnscope gate"
# The streaming-telemetry gate: the canonical recorded run seals
# telemetry frames into the log, so exporting them twice must be
# byte-identical and re-deriving frames + alerts from the raw event
# stream must reproduce the sealed ones exactly. The self-test must
# reject tampered frame payloads (length and version) and see a planted
# saturation ramp trip the blocked-mass detector; the scope study must
# call its planted collapse ahead of time while staying silent on the
# clean heavy-load baseline.
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    frames "$lint_tmp/trace_a/run.ttr" --out "$lint_tmp/frames_a.jsonl" 2> /dev/null
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    frames "$lint_tmp/trace_a/run.ttr" --out "$lint_tmp/frames_b.jsonl" 2> /dev/null
cmp "$lint_tmp/frames_a.jsonl" "$lint_tmp/frames_b.jsonl"
test -s "$lint_tmp/frames_a.jsonl"
cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    frames "$lint_tmp/trace_a/run.ttr" --check > "$lint_tmp/frames_check.log"
grep -q "frames match" "$lint_tmp/frames_check.log"
if cargo run --offline --quiet -p turnroute-obslog --bin turnstat -- \
    frames "$lint_tmp/trace_a/run.ttr" --inject-bad \
    > "$lint_tmp/frames_bad.log" 2>&1; then
    echo "turnstat frames --inject-bad unexpectedly passed; the decoder is blind" >&2
    exit 1
fi
grep -q "rejected" "$lint_tmp/frames_bad.log"
grep -q "planted-saturation" "$lint_tmp/frames_bad.log"
grep -q "self-test ok" "$lint_tmp/frames_bad.log"
cargo run --offline --quiet -p turnroute-experiments --bin exp -- \
    scope --quick --seed 7 --out "$lint_tmp/scope" 2> /dev/null
grep -q '\*\*PASS\*\*' "$lint_tmp/scope/scope.md"

echo "==> fault-injection group"
# The fault subsystem's own gates, runnable in isolation: determinism and
# degradation tests in both simulators, the sweep harness, and the
# workspace deadlock-freedom-under-faults suite.
cargo test -p turnroute-sim --offline --quiet fault
cargo test -p turnroute-vc --offline --quiet fault
cargo test -p turnroute-experiments --offline --quiet faults
cargo test -p turnroute --offline --quiet --test fault_tolerance

if [[ $full -eq 1 ]]; then
    echo "==> cargo build --release"
    cargo build --workspace --release --offline
    echo "==> exp smoke runs"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp" "$lint_tmp"' EXIT
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        fig13 --quick --out "$tmp" --metrics-out "$tmp/metrics.json"
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        fig1 --trace --out "$tmp"
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        faults --quick --out "$tmp"
    test -s "$tmp/metrics.json"
    test -s "$tmp/fig1_postmortem.jsonl"
    test -s "$tmp/faults.csv"
fi

echo "OK"
