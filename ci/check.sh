#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the test suite.
#
#   ./ci/check.sh          # fmt + clippy + build + quick tests
#   ./ci/check.sh --full   # also the release build and full test suite
#
# Everything runs with --offline; the workspace has no external
# dependencies, so no network access is ever required.
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
[[ "${1:-}" == "--full" ]] && full=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build"
cargo build --workspace --offline

echo "==> cargo test"
cargo test --workspace --offline --quiet

echo "==> fault-injection group"
# The fault subsystem's own gates, runnable in isolation: determinism and
# degradation tests in both simulators, the sweep harness, and the
# workspace deadlock-freedom-under-faults suite.
cargo test -p turnroute-sim --offline --quiet fault
cargo test -p turnroute-vc --offline --quiet fault
cargo test -p turnroute-experiments --offline --quiet faults
cargo test -p turnroute --offline --quiet --test fault_tolerance

if [[ $full -eq 1 ]]; then
    echo "==> cargo build --release"
    cargo build --workspace --release --offline
    echo "==> exp smoke runs"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        fig13 --quick --out "$tmp" --metrics-out "$tmp/metrics.json"
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        fig1 --trace --out "$tmp"
    cargo run --release --offline -p turnroute-experiments --bin exp -- \
        faults --quick --out "$tmp"
    test -s "$tmp/metrics.json"
    test -s "$tmp/fig1_postmortem.jsonl"
    test -s "$tmp/faults.csv"
fi

echo "OK"
