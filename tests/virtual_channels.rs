//! Integration: the virtual-channel extension end to end.

use proptest::prelude::*;
use turnroute::model::adaptiveness::s_fully_adaptive;
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{LengthDist, Sim, SimConfig};
use turnroute::topology::{Mesh, NodeId, Topology};
use turnroute::traffic::{MeshTranspose, Uniform};
use turnroute::vc::{count_paths, DoubleYAdaptive, VcCdg, VcRoutingFunction, VcSim};

#[test]
fn double_y_delivers_transpose_traffic() {
    let mesh = Mesh::new_2d(16, 16);
    let alg = DoubleYAdaptive::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.06)
        .lengths(LengthDist::Fixed(8))
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .drain_cycles(4_000)
        .seed(21)
        .build();
    let report = VcSim::new(&mesh, &alg, &MeshTranspose::new(), cfg).run();
    assert!(!report.deadlocked);
    assert!(report.delivered_fraction() > 0.99);
    assert!(report.generated_packets > 100);
}

#[test]
fn vc_sim_matches_base_sim_at_zero_contention() {
    // A lone packet should see identical timing in both simulators.
    let mesh = Mesh::new_2d(8, 8);
    let cfg = SimConfig::builder().injection_rate(0.0).build();
    let pattern = Uniform::new();

    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let mut base = Sim::new(&mesh, &wf, &pattern, cfg.clone());
    let a = base.inject_packet(mesh.node_at_coords(&[0, 0]), mesh.node_at_coords(&[6, 6]), 12);
    assert!(base.run_until_idle(500));

    let dy = DoubleYAdaptive::new();
    let mut vc = VcSim::new(&mesh, &dy, &pattern, cfg);
    let b = vc.inject_packet(mesh.node_at_coords(&[0, 0]), mesh.node_at_coords(&[6, 6]), 12);
    assert!(vc.run_until_idle(500));

    let (pa, pb) = (base.packets()[a.index()], vc.packets()[b.index()]);
    assert_eq!(pa.hops, pb.hops);
    assert_eq!(pa.latency(), pb.latency());
}

#[test]
fn double_y_hops_are_always_minimal() {
    let mesh = Mesh::new_2d(8, 8);
    let alg = DoubleYAdaptive::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.08)
        .lengths(LengthDist::Fixed(6))
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .drain_cycles(3_000)
        .seed(22)
        .build();
    let uniform = Uniform::new();
    let mut sim = VcSim::new(&mesh, &alg, &uniform, cfg);
    let _ = sim.run();
    for p in sim.packets() {
        if p.delivered.is_some() {
            assert_eq!(
                u32::try_from(mesh.min_hops(p.src, p.dst)).unwrap(),
                p.hops
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn double_y_cdg_acyclic_on_random_meshes(m in 2u16..8, n in 2u16..8) {
        let mesh = Mesh::new_2d(m, n);
        let cdg = VcCdg::from_routing(&mesh, &DoubleYAdaptive::new());
        prop_assert!(cdg.is_acyclic());
    }

    #[test]
    fn double_y_is_fully_adaptive_on_random_pairs(
        m in 2u16..9, n in 2u16..9, a in any::<u32>(), b in any::<u32>()
    ) {
        let mesh = Mesh::new_2d(m, n);
        let total = mesh.num_nodes() as u32;
        let (src, dst) = (NodeId(a % total), NodeId(b % total));
        prop_assume!(src != dst);
        prop_assert_eq!(
            count_paths(&mesh, src, dst),
            s_fully_adaptive(&mesh.coord_of(src), &mesh.coord_of(dst))
        );
    }

    #[test]
    fn double_y_walks_deliver(m in 3u16..8, n in 3u16..8, a in any::<u32>(), b in any::<u32>()) {
        let mesh = Mesh::new_2d(m, n);
        let total = mesh.num_nodes() as u32;
        let (src, dst) = (NodeId(a % total), NodeId(b % total));
        prop_assume!(src != dst);
        let alg = DoubleYAdaptive::new();
        let mut cur = src;
        let mut arrived = None;
        let mut hops = 0usize;
        while cur != dst {
            let out = alg.route(&mesh, cur, dst, arrived);
            prop_assert!(!out.is_empty(), "stuck at {cur}");
            let vd = *out.last().unwrap();
            cur = mesh.neighbor(cur, vd.dir()).unwrap();
            arrived = Some(vd);
            hops += 1;
        }
        prop_assert_eq!(hops, mesh.min_hops(src, dst));
    }
}
