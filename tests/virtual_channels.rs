//! Integration: the virtual-channel extension end to end.

use turnroute::model::adaptiveness::s_fully_adaptive;
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{LengthDist, Sim, SimConfig};
use turnroute::topology::{Mesh, NodeId, Topology};
use turnroute::traffic::{MeshTranspose, Uniform};
use turnroute::vc::{count_paths, DoubleYAdaptive, VcCdg, VcRoutingFunction, VcSim};
use turnroute_rng::{Rng, SeedableRng, StdRng};

fn random_pair(rng: &mut StdRng, total: usize) -> (NodeId, NodeId) {
    let total = total as u32;
    let src = NodeId(rng.gen_range(0u32..total));
    loop {
        let dst = NodeId(rng.gen_range(0u32..total));
        if dst != src {
            return (src, dst);
        }
    }
}

#[test]
fn double_y_delivers_transpose_traffic() {
    let mesh = Mesh::new_2d(16, 16);
    let alg = DoubleYAdaptive::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.06)
        .lengths(LengthDist::Fixed(8))
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .drain_cycles(4_000)
        .seed(21)
        .build();
    let report = VcSim::new(&mesh, &alg, &MeshTranspose::new(), cfg).run();
    assert!(!report.deadlocked);
    assert!(report.delivered_fraction() > 0.99);
    assert!(report.generated_packets > 100);
}

#[test]
fn vc_sim_matches_base_sim_at_zero_contention() {
    // A lone packet should see identical timing in both simulators.
    let mesh = Mesh::new_2d(8, 8);
    let cfg = SimConfig::builder().injection_rate(0.0).build();
    let pattern = Uniform::new();

    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let mut base = Sim::new(&mesh, &wf, &pattern, cfg.clone());
    let a = base.inject_packet(
        mesh.node_at_coords(&[0, 0]),
        mesh.node_at_coords(&[6, 6]),
        12,
    );
    assert!(base.run_until_idle(500));

    let dy = DoubleYAdaptive::new();
    let mut vc = VcSim::new(&mesh, &dy, &pattern, cfg);
    let b = vc.inject_packet(
        mesh.node_at_coords(&[0, 0]),
        mesh.node_at_coords(&[6, 6]),
        12,
    );
    assert!(vc.run_until_idle(500));

    let (pa, pb) = (base.packets()[a.index()], vc.packets()[b.index()]);
    assert_eq!(pa.hops, pb.hops);
    assert_eq!(pa.latency(), pb.latency());
}

#[test]
fn double_y_hops_are_always_minimal() {
    let mesh = Mesh::new_2d(8, 8);
    let alg = DoubleYAdaptive::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.08)
        .lengths(LengthDist::Fixed(6))
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .drain_cycles(3_000)
        .seed(22)
        .build();
    let uniform = Uniform::new();
    let mut sim = VcSim::new(&mesh, &alg, &uniform, cfg);
    let _ = sim.run();
    for p in sim.packets() {
        if p.delivered.is_some() {
            assert_eq!(u32::try_from(mesh.min_hops(p.src, p.dst)).unwrap(), p.hops);
        }
    }
}

#[test]
fn double_y_cdg_acyclic_on_random_meshes() {
    let mut rng = StdRng::seed_from_u64(0x7C1);
    for _ in 0..32 {
        let mesh = Mesh::new_2d(rng.gen_range(2u16..8), rng.gen_range(2u16..8));
        let cdg = VcCdg::from_routing(&mesh, &DoubleYAdaptive::new());
        assert!(cdg.is_acyclic());
    }
}

#[test]
fn double_y_is_fully_adaptive_on_random_pairs() {
    let mut rng = StdRng::seed_from_u64(0x7C2);
    for _ in 0..32 {
        let mesh = Mesh::new_2d(rng.gen_range(2u16..9), rng.gen_range(2u16..9));
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        assert_eq!(
            count_paths(&mesh, src, dst),
            s_fully_adaptive(&mesh.coord_of(src), &mesh.coord_of(dst))
        );
    }
}

#[test]
fn double_y_walks_deliver() {
    let mut rng = StdRng::seed_from_u64(0x7C3);
    for _ in 0..32 {
        let mesh = Mesh::new_2d(rng.gen_range(3u16..8), rng.gen_range(3u16..8));
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        let alg = DoubleYAdaptive::new();
        let mut cur = src;
        let mut arrived = None;
        let mut hops = 0usize;
        while cur != dst {
            let out = alg.route(&mesh, cur, dst, arrived);
            assert!(!out.is_empty(), "stuck at {cur}");
            let vd = *out.last().unwrap();
            cur = mesh.neighbor(cur, vd.dir()).unwrap();
            arrived = Some(vd);
            hops += 1;
        }
        assert_eq!(hops, mesh.min_hops(src, dst));
    }
}
