//! Integration: the turn-model deadlock-freedom guarantee survives fault
//! injection end to end.
//!
//! Faults only *remove* outputs from a routing relation (and the misroute
//! fallback stays inside the declared turn set), so the faulted channel
//! dependency graph is a subgraph of the fault-free one and inherits its
//! acyclicity. These tests exercise that argument mechanically — across
//! many random fault patterns, through the static [`FaultAware`] wrapper,
//! and through a full simulator run.

use turnroute::model::verifier::verify_under_faults;
use turnroute::model::RoutingFunction;
use turnroute::routing::{mesh2d, FaultAware, RoutingMode};
use turnroute::sim::{FaultPlan, RunTermination, Sim, SimConfig};
use turnroute::topology::{Direction, FaultSet, Mesh, NodeId, Topology};
use turnroute::traffic::Uniform;
use turnroute_rng::{Rng, SeedableRng, StdRng};

fn mesh_algorithms() -> Vec<Box<dyn RoutingFunction>> {
    vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ]
}

/// A random fault pattern: each link fails independently with probability
/// `link_p`, and every third seed additionally downs one random node.
fn random_pattern(mesh: &Mesh, seed: u64, link_p: f64) -> FaultSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut faults = FaultSet::new(mesh);
    for ch in mesh.channels() {
        if rng.gen_bool(link_p) {
            faults.fail_link(mesh, ch.src(), ch.dir());
        }
    }
    if seed.is_multiple_of(3) {
        let node = NodeId(rng.gen_range(0..mesh.num_nodes() as u32));
        faults.fail_node(mesh, node);
    }
    faults
}

#[test]
fn turn_sets_stay_deadlock_free_under_random_fault_patterns() {
    let mesh = Mesh::new_2d(6, 6);
    for seed in 0..20u64 {
        // Sweep from light damage to heavy damage as seeds advance.
        let link_p = 0.05 + 0.015 * seed as f64;
        let faults = random_pattern(&mesh, seed, link_p);
        for alg in mesh_algorithms() {
            let v = verify_under_faults(&mesh, alg.as_ref(), &faults);
            assert!(
                v.all_ok(),
                "seed {seed} ({} links, {} nodes failed): {v}",
                v.failed_links,
                v.failed_nodes
            );
            let pairs = mesh.num_nodes() * (mesh.num_nodes() - 1);
            assert_eq!(v.reachable_pairs + v.unreachable_pairs, pairs);
        }
    }
}

#[test]
fn heavy_damage_partitions_but_never_cycles() {
    // Far past any reasonable operating point: half the links gone. The
    // network is badly partitioned — reachability collapses — but the
    // routing relation must still be cycle free.
    let mesh = Mesh::new_2d(6, 6);
    for seed in 100..105u64 {
        let faults = random_pattern(&mesh, seed, 0.5);
        for alg in mesh_algorithms() {
            let v = verify_under_faults(&mesh, alg.as_ref(), &faults);
            assert!(v.all_ok(), "seed {seed}: {v}");
        }
    }
}

#[test]
fn fault_aware_wrapper_routes_around_a_failed_link() {
    let mesh = Mesh::new_2d(5, 5);
    let src = mesh.node_at_coords(&[1, 2]);
    let dst = mesh.node_at_coords(&[4, 2]);
    let mut faults = FaultSet::new(&mesh);
    // Break the xy path at its second hop.
    faults.fail_link(&mesh, mesh.node_at_coords(&[2, 2]), Direction::EAST);
    let dead_slot = mesh.channel_slot(mesh.node_at_coords(&[2, 2]), Direction::EAST);

    let routed = FaultAware::new(mesh2d::west_first(RoutingMode::Minimal), &mesh, faults);
    // Greedy walk: always take the last offered direction, as the
    // verifier's worst-case census does.
    let mut cur = src;
    let mut arrived = None;
    let mut hops = 0;
    while cur != dst {
        let dirs = routed.route(&mesh, cur, dst, arrived);
        let dir = dirs.iter().last().expect("no route offered");
        assert_ne!(
            mesh.channel_slot(cur, dir),
            dead_slot,
            "walk crossed the failed link"
        );
        cur = mesh.neighbor(cur, dir).unwrap();
        arrived = Some(dir);
        hops += 1;
        assert!(hops < 50, "walk did not converge");
    }
    assert!(hops >= 3, "a detour cannot be shorter than the direct path");
}

#[test]
fn simulator_completes_and_delivers_under_a_static_fault_plan() {
    // End-to-end through the facade: a mid-mesh link dies at cycle zero and
    // a node dies transiently; the run must end in graceful completion with
    // real deliveries, not a deadlock verdict.
    let mesh = Mesh::new_2d(6, 6);
    let plan = FaultPlan::new()
        .permanent_link(NodeId(14), Direction::EAST, 0)
        .transient_node(NodeId(21), 500, 500);
    let cfg = SimConfig::builder()
        .injection_rate(0.05)
        .warmup_cycles(500)
        .measure_cycles(2_000)
        .drain_cycles(3_000)
        .packet_timeout(1_500)
        .max_retries(1)
        .seed(7)
        .fault_plan(plan)
        .build();
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let report = Sim::new(&mesh, &wf, &Uniform::new(), cfg).run();
    assert_eq!(report.termination, RunTermination::Completed, "{report}");
    assert!(report.delivered_packets > 0, "{report}");
    assert!(
        report.delivered_fraction() > 0.5,
        "one dead link should not halve throughput: {report}"
    );
}
