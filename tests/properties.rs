//! Cross-crate randomized property tests (seeded, deterministic).

use turnroute::model::adaptiveness::{
    count_minimal_paths, s_fully_adaptive, s_negative_first, s_north_last, s_west_first,
};
use turnroute::model::RoutingFunction;
use turnroute::routing::{hypercube, mesh2d, ndmesh, RoutingMode};
use turnroute::topology::{Direction, Hypercube, Mesh, NodeId, Topology};
use turnroute_rng::{Rng, RngCore, SeedableRng, StdRng};

fn random_mesh2d(rng: &mut StdRng) -> Mesh {
    Mesh::new_2d(rng.gen_range(2u16..9), rng.gen_range(2u16..9))
}

fn random_pair(rng: &mut dyn RngCore, total: usize) -> (NodeId, NodeId) {
    let total = total as u32;
    let src = NodeId(rng.gen_range(0u32..total));
    loop {
        let dst = NodeId(rng.gen_range(0u32..total));
        if dst != src {
            return (src, dst);
        }
    }
}

/// Greedy walk following the *last* offered direction, checking turn
/// legality and minimality along the way.
fn walk_checked(topo: &dyn Topology, alg: &dyn RoutingFunction, src: NodeId, dst: NodeId) -> usize {
    let mut cur = src;
    let mut arrived: Option<Direction> = None;
    let mut hops = 0usize;
    let turn_set = alg.turn_set(topo.num_dims());
    while cur != dst {
        let dirs = alg.route(topo, cur, dst, arrived);
        assert!(!dirs.is_empty(), "{} stuck at {cur}", alg.name());
        let dir = dirs.iter().last().expect("nonempty");
        if let (Some(set), Some(arr)) = (&turn_set, arrived) {
            assert!(set.is_allowed(arr, dir), "illegal turn {arr}->{dir}");
        }
        let next = topo.neighbor(cur, dir).expect("offered channel exists");
        if alg.is_minimal() {
            assert_eq!(topo.min_hops(next, dst), topo.min_hops(cur, dst) - 1);
        }
        cur = next;
        arrived = Some(dir);
        hops += 1;
        assert!(hops <= 4 * (topo.num_nodes() + 4), "walk too long");
    }
    hops
}

#[test]
fn minimal_2d_algorithms_deliver_all_pairs() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for _ in 0..64 {
        let mesh = random_mesh2d(&mut rng);
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        for alg in [
            mesh2d::west_first(RoutingMode::Minimal),
            mesh2d::north_last(RoutingMode::Minimal),
            mesh2d::negative_first(RoutingMode::Minimal),
        ] {
            let hops = walk_checked(&mesh, &alg, src, dst);
            assert_eq!(hops, mesh.min_hops(src, dst));
        }
    }
}

#[test]
fn closed_forms_match_exhaustive_counts() {
    let mut rng = StdRng::seed_from_u64(0xB22);
    for _ in 0..64 {
        let mesh = random_mesh2d(&mut rng);
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        let (cs, cd) = (mesh.coord_of(src), mesh.coord_of(dst));
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        assert_eq!(
            count_minimal_paths(&mesh, &wf, src, dst),
            s_west_first(&cs, &cd)
        );
        let nl = mesh2d::north_last(RoutingMode::Minimal);
        assert_eq!(
            count_minimal_paths(&mesh, &nl, src, dst),
            s_north_last(&cs, &cd)
        );
        let nf = mesh2d::negative_first(RoutingMode::Minimal);
        assert_eq!(
            count_minimal_paths(&mesh, &nf, src, dst),
            s_negative_first(&cs, &cd)
        );
    }
}

#[test]
fn xy_has_exactly_one_path_everywhere() {
    let mut rng = StdRng::seed_from_u64(0xC33);
    for _ in 0..64 {
        let mesh = random_mesh2d(&mut rng);
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        assert_eq!(count_minimal_paths(&mesh, &mesh2d::xy(), src, dst), 1);
    }
}

#[test]
fn pcube_counts_match_formula() {
    let mut rng = StdRng::seed_from_u64(0xD44);
    for _ in 0..64 {
        let n = rng.gen_range(3usize..8);
        let cube = Hypercube::new(n);
        let (src, dst) = random_pair(&mut rng, cube.num_nodes());
        let alg = hypercube::p_cube(n, RoutingMode::Minimal);
        let h1 = (cube.address(src) & !cube.address(dst)).count_ones();
        let h0 = (!cube.address(src) & cube.address(dst) & ((1 << n) - 1)).count_ones();
        assert_eq!(
            count_minimal_paths(&cube, &alg, src, dst),
            turnroute::model::adaptiveness::s_pcube(h1, h0)
        );
    }
}

#[test]
fn partial_counts_never_exceed_fully_adaptive() {
    let mut rng = StdRng::seed_from_u64(0xE55);
    for _ in 0..64 {
        let mesh = random_mesh2d(&mut rng);
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        let sf = s_fully_adaptive(&mesh.coord_of(src), &mesh.coord_of(dst));
        for alg in [
            mesh2d::west_first(RoutingMode::Minimal),
            mesh2d::north_last(RoutingMode::Minimal),
            mesh2d::negative_first(RoutingMode::Minimal),
        ] {
            let sp = count_minimal_paths(&mesh, &alg, src, dst);
            assert!(sp >= 1 && sp <= sf);
        }
    }
}

#[test]
fn nd_negative_first_delivers() {
    let mut rng = StdRng::seed_from_u64(0xF66);
    for _ in 0..64 {
        let ndims = rng.gen_range(2usize..4);
        let dims: Vec<u16> = (0..ndims).map(|_| rng.gen_range(2u16..5)).collect();
        let mesh = Mesh::new(dims);
        let n = mesh.num_dims();
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        for alg in [
            ndmesh::negative_first(n, RoutingMode::Minimal),
            ndmesh::all_but_one_negative_first(n, RoutingMode::Minimal),
            ndmesh::all_but_one_positive_last(n, RoutingMode::Minimal),
        ] {
            let hops = walk_checked(&mesh, &alg, src, dst);
            assert_eq!(hops, mesh.min_hops(src, dst));
        }
    }
}

#[test]
fn nonminimal_walks_terminate_with_first_choice_policy() {
    // Following the FIRST offered direction (lowest index = most
    // negative) of nonminimal negative-first still terminates:
    // phase-1 wandering is bounded by the mesh boundary and phase 2
    // is productive.
    let mut rng = StdRng::seed_from_u64(0x177);
    for _ in 0..64 {
        let mesh = random_mesh2d(&mut rng);
        let (src, dst) = random_pair(&mut rng, mesh.num_nodes());
        let alg = mesh2d::negative_first(RoutingMode::Nonminimal);
        let mut cur = src;
        let mut arrived = None;
        let mut hops = 0usize;
        while cur != dst {
            let dirs = alg.route(&mesh, cur, dst, arrived);
            assert!(!dirs.is_empty());
            let dir = dirs.iter().next().expect("nonempty");
            cur = mesh.neighbor(cur, dir).expect("exists");
            arrived = Some(dir);
            hops += 1;
            assert!(hops <= 6 * mesh.num_nodes(), "nonminimal walk unbounded");
        }
    }
}
