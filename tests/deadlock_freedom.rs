//! Integration: every shipped routing algorithm is mechanically deadlock
//! free on its target topologies, and the turn-model bookkeeping is
//! consistent end to end.

use turnroute::model::numbering::{
    negative_first_numbering, numbering_from_cdg, verify_monotonic, west_first_numbering, Monotonic,
};
use turnroute::model::{Cdg, RoutingFunction};
use turnroute::routing::torus::{NegativeFirstTorus, WrapOnFirstHop};
use turnroute::routing::{hypercube, mesh2d, ndmesh, DimensionOrder, RoutingMode};
use turnroute::topology::{Direction, Hypercube, Mesh, NodeId, Topology, Torus};

fn mesh_algorithms() -> Vec<Box<dyn RoutingFunction>> {
    vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::west_first(RoutingMode::Nonminimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Nonminimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Nonminimal)),
    ]
}

#[test]
fn all_2d_algorithms_have_acyclic_cdgs_on_assorted_meshes() {
    for (m, n) in [(4u16, 4u16), (8, 8), (3, 9), (9, 3), (2, 6)] {
        let mesh = Mesh::new_2d(m, n);
        for alg in mesh_algorithms() {
            let cdg = Cdg::from_routing(&mesh, &alg);
            assert!(
                cdg.is_acyclic(),
                "{} ({:?}) cyclic on {m}x{n}",
                alg.name(),
                alg.is_minimal()
            );
        }
    }
}

#[test]
fn all_nd_algorithms_have_acyclic_cdgs() {
    for dims in [vec![3u16, 3, 3], vec![2, 4, 3], vec![2, 2, 2, 2]] {
        let mesh = Mesh::new(dims.clone());
        let n = mesh.num_dims();
        let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
            Box::new(DimensionOrder::e_cube(n)),
            Box::new(ndmesh::negative_first(n, RoutingMode::Minimal)),
            Box::new(ndmesh::negative_first(n, RoutingMode::Nonminimal)),
            Box::new(ndmesh::all_but_one_negative_first(n, RoutingMode::Minimal)),
            Box::new(ndmesh::all_but_one_negative_first(
                n,
                RoutingMode::Nonminimal,
            )),
            Box::new(ndmesh::all_but_one_positive_last(n, RoutingMode::Minimal)),
            Box::new(ndmesh::all_but_one_positive_last(
                n,
                RoutingMode::Nonminimal,
            )),
        ];
        for alg in &algorithms {
            assert!(
                Cdg::from_routing(&mesh, alg).is_acyclic(),
                "{} cyclic on {dims:?}",
                alg.name()
            );
        }
    }
}

#[test]
fn hypercube_algorithms_have_acyclic_cdgs() {
    for n in [3usize, 4, 5, 6] {
        let cube = Hypercube::new(n);
        let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
            Box::new(hypercube::e_cube(n)),
            Box::new(hypercube::p_cube(n, RoutingMode::Minimal)),
            Box::new(hypercube::p_cube(n, RoutingMode::Nonminimal)),
            Box::new(ndmesh::all_but_one_negative_first(n, RoutingMode::Minimal)),
            Box::new(ndmesh::all_but_one_positive_last(n, RoutingMode::Minimal)),
        ];
        for alg in &algorithms {
            assert!(
                Cdg::from_routing(&cube, alg).is_acyclic(),
                "{} cyclic on {n}-cube",
                alg.name()
            );
        }
    }
}

#[test]
fn torus_adaptations_have_acyclic_cdgs() {
    for (k, n) in [(3u16, 2usize), (4, 2), (5, 2), (3, 3)] {
        let torus = Torus::new(k, n);
        let nf = NegativeFirstTorus::new(n);
        assert!(
            Cdg::from_routing(&torus, &nf).is_acyclic(),
            "NF-torus cyclic on {k}-ary {n}-cube"
        );
        if n == 2 {
            let wrapped = WrapOnFirstHop::new(mesh2d::negative_first(RoutingMode::Minimal), &torus);
            assert!(
                Cdg::from_routing(&torus, &wrapped).is_acyclic(),
                "wrap-first-hop cyclic on {k}-ary {n}-cube"
            );
        }
    }
}

#[test]
fn every_route_move_is_within_the_declared_turn_set() {
    let mesh = Mesh::new_2d(6, 6);
    for alg in mesh_algorithms() {
        let Some(set) = alg.turn_set(2) else {
            continue;
        };
        for cur in 0..mesh.num_nodes() {
            let cur = NodeId(cur as u32);
            for dst in 0..mesh.num_nodes() {
                let dst = NodeId(dst as u32);
                for arrived in Direction::all(2) {
                    for out in alg.route(&mesh, cur, dst, Some(arrived)).iter() {
                        assert!(
                            set.is_allowed(arrived, out),
                            "{}: move {arrived}->{out} outside turn set",
                            alg.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn paper_numbering_witnesses_agree_with_cdg_witnesses() {
    // Theorem 2 and Theorem 5 witness the same algorithms the CDG clears.
    let mesh = Mesh::new_2d(6, 5);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    verify_monotonic(
        &mesh,
        &wf,
        &west_first_numbering(&mesh),
        Monotonic::Decreasing,
    )
    .expect("Theorem 2 numbering");
    let cdg = Cdg::from_routing(&mesh, &wf);
    let generic = numbering_from_cdg(&cdg).expect("acyclic");
    verify_monotonic(&mesh, &wf, &generic, Monotonic::Increasing).expect("generic numbering");

    let mesh3 = Mesh::new(vec![3, 4, 2]);
    let nf = ndmesh::negative_first(3, RoutingMode::Minimal);
    verify_monotonic(
        &mesh3,
        &nf,
        &negative_first_numbering(&mesh3),
        Monotonic::Increasing,
    )
    .expect("Theorem 5 numbering");
}

#[test]
fn turn_set_cdg_is_a_superset_of_routing_cdg() {
    // The turn-set relation covers every move the concrete minimal
    // routing can make, so its edge set must contain the routing CDG's.
    let mesh = Mesh::new_2d(5, 5);
    for alg in [
        mesh2d::west_first(RoutingMode::Minimal),
        mesh2d::north_last(RoutingMode::Minimal),
        mesh2d::negative_first(RoutingMode::Minimal),
    ] {
        let set = alg.turn_set(2).expect("2d turn set");
        let from_set = Cdg::from_turn_set(&mesh, &set);
        let from_routing = Cdg::from_routing(&mesh, &alg);
        assert!(from_set.num_edges() >= from_routing.num_edges());
        for ch in from_routing.channels() {
            for succ in from_routing.successors(ch.id()) {
                assert!(
                    from_set.successors(ch.id()).contains(succ),
                    "{}: routing edge missing from turn-set CDG",
                    alg.name()
                );
            }
        }
    }
}
