//! Randomized tests of simulator invariants across random configurations
//! (seeded, deterministic).

use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{LengthDist, Sim, SimConfig};
use turnroute::topology::{Mesh, Topology};
use turnroute::traffic::Uniform;
use turnroute_rng::{Rng, RngCore, SeedableRng, StdRng};

fn random_cfg(rng: &mut StdRng) -> SimConfig {
    // drain == measure so the measurement window can be reconstructed
    // from the report below.
    let measure = rng.gen_range(500u64..3_000);
    SimConfig::builder()
        .injection_rate(rng.gen_range(0.01f64..0.4))
        .lengths(LengthDist::Fixed(rng.gen_range(2u32..24)))
        .warmup_cycles(rng.gen_range(0u64..500))
        .measure_cycles(measure)
        .drain_cycles(measure)
        .buffer_depth(rng.gen_range(1u32..5))
        .deadlock_threshold(5_000)
        .seed(rng.next_u64())
        .build()
}

/// Conservation and sanity across random loads, lengths, seeds, and
/// buffer depths: the turn-model algorithms never deadlock, delivered
/// packets are exact-minimal, and the report's accounting is
/// internally consistent.
#[test]
fn random_runs_conserve_and_never_deadlock() {
    let mesh = Mesh::new_2d(6, 6);
    let algorithms: [Box<dyn turnroute::model::RoutingFunction>; 4] = [
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    let pattern = Uniform::new();
    let mut rng = StdRng::seed_from_u64(0x51A1);
    for case in 0..24 {
        let cfg = random_cfg(&mut rng);
        let alg = &algorithms[case % algorithms.len()];
        let mut sim = Sim::new(&mesh, alg, &pattern, cfg);
        let report = sim.run();

        assert!(!report.deadlocked, "{} deadlocked", alg.name());
        assert!(report.delivered_packets <= report.generated_packets);
        assert!(report.delivered_fraction() <= 1.0 + 1e-9);

        // Per-packet invariants.
        let mut delivered_window_packets = 0;
        for p in sim.packets() {
            if let Some(done) = p.delivered {
                assert!(p.injected.is_some());
                assert!(done >= p.injected.unwrap());
                let min = mesh.min_hops(p.src, p.dst) as u32;
                assert_eq!(p.hops, min, "minimal routing must be exact");
                // Uncontended latency is exactly injection + hops +
                // ejection transfers for the head (hops + 2 ... but the
                // head enters the injection buffer in its creation
                // cycle), then len - 1 flit cycles for the tail:
                // hops + len + 1. Queuing and contention only add.
                let floor = u64::from(min) + u64::from(p.len) + 1;
                assert!(
                    p.latency().unwrap() >= floor,
                    "latency {} below physical floor {}",
                    p.latency().unwrap(),
                    floor
                );
            }
            if p.delivered.is_some()
                && p.created >= cfg_window_start(&report)
                && p.created < cfg_window_end(&report)
            {
                delivered_window_packets += 1;
            }
        }
        assert_eq!(delivered_window_packets, report.delivered_packets);
    }
}

/// Reconstruct the measurement window from a completed run: the harness
/// sets `drain == measure`, so the window starts at `end - 2 * measure`.
fn cfg_window_start(report: &turnroute::sim::SimReport) -> u64 {
    report.end_cycle - 2 * report.measure_cycles
}

fn cfg_window_end(report: &turnroute::sim::SimReport) -> u64 {
    cfg_window_start(report) + report.measure_cycles
}
