//! Property-based tests of simulator invariants across random
//! configurations.

use proptest::prelude::*;
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{LengthDist, Sim, SimConfig};
use turnroute::topology::{Mesh, Topology};
use turnroute::traffic::Uniform;

fn arb_cfg() -> impl Strategy<Value = SimConfig> {
    (
        0.01f64..0.4,
        2u32..24,
        0u64..500,
        500u64..3_000,
        any::<u64>(),
        1u32..5,
    )
        .prop_map(|(rate, len, warmup, measure, seed, depth)| {
            SimConfig::builder()
                .injection_rate(rate)
                .lengths(LengthDist::Fixed(len))
                .warmup_cycles(warmup)
                .measure_cycles(measure)
                .drain_cycles(measure)
                .buffer_depth(depth)
                .deadlock_threshold(5_000)
                .seed(seed)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and sanity across random loads, lengths, seeds, and
    /// buffer depths: the turn-model algorithms never deadlock, delivered
    /// packets are exact-minimal, and the report's accounting is
    /// internally consistent.
    #[test]
    fn random_runs_conserve_and_never_deadlock(cfg in arb_cfg(), alg_pick in 0usize..4) {
        let mesh = Mesh::new_2d(6, 6);
        let algorithms: [Box<dyn turnroute::model::RoutingFunction>; 4] = [
            Box::new(mesh2d::xy()),
            Box::new(mesh2d::west_first(RoutingMode::Minimal)),
            Box::new(mesh2d::north_last(RoutingMode::Minimal)),
            Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
        ];
        let alg = &algorithms[alg_pick];
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, alg, &pattern, cfg);
        let report = sim.run();

        prop_assert!(!report.deadlocked, "{} deadlocked", alg.name());
        prop_assert!(report.delivered_packets <= report.generated_packets);
        prop_assert!(report.delivered_fraction() <= 1.0 + 1e-9);

        // Per-packet invariants.
        let mut delivered_window_packets = 0;
        for p in sim.packets() {
            if let Some(done) = p.delivered {
                prop_assert!(p.injected.is_some());
                prop_assert!(done >= p.injected.unwrap());
                let min = mesh.min_hops(p.src, p.dst) as u32;
                prop_assert_eq!(p.hops, min, "minimal routing must be exact");
                // Uncontended latency is exactly injection + hops +
                // ejection transfers for the head (hops + 2 ... but the
                // head enters the injection buffer in its creation
                // cycle), then len - 1 flit cycles for the tail:
                // hops + len + 1. Queuing and contention only add.
                let floor = u64::from(min) + u64::from(p.len) + 1;
                prop_assert!(
                    p.latency().unwrap() >= floor,
                    "latency {} below physical floor {}",
                    p.latency().unwrap(),
                    floor
                );
            }
            if p.delivered.is_some()
                && p.created >= cfg_window_start(&report)
                && p.created < cfg_window_end(&report)
            {
                delivered_window_packets += 1;
            }
        }
        prop_assert_eq!(delivered_window_packets, report.delivered_packets);
    }
}

/// Reconstruct the measurement window from a completed run: arb_cfg sets
/// `drain == measure`, so the window starts at `end - 2 * measure`.
fn cfg_window_start(report: &turnroute::sim::SimReport) -> u64 {
    report.end_cycle - 2 * report.measure_cycles
}

fn cfg_window_end(report: &turnroute::sim::SimReport) -> u64 {
    cfg_window_start(report) + report.measure_cycles
}
