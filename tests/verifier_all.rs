//! Integration: the one-call verifier signs off on every shipped
//! algorithm and rejects the known-broken ones.

use turnroute::model::verifier::{verify, Check};
use turnroute::model::RoutingFunction;
use turnroute::routing::torus::{NegativeFirstTorus, WrapOnFirstHop};
use turnroute::routing::{hypercube, mesh2d, ndmesh, FullyAdaptive, RoutingMode};
use turnroute::topology::{Hypercube, Mesh, Torus};

#[test]
fn all_minimal_mesh_algorithms_fully_verify() {
    let mesh = Mesh::new_2d(5, 6);
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    for alg in &algorithms {
        let report = verify(&mesh, alg);
        assert!(report.all_ok(), "{report}");
        // All of these declare a turn set, so the check must have run.
        assert_eq!(report.turns_consistent, Check::Passed, "{}", alg.name());
    }
}

#[test]
fn nd_and_cube_algorithms_fully_verify() {
    let mesh = Mesh::new(vec![3, 3, 3]);
    for alg in [
        ndmesh::negative_first(3, RoutingMode::Minimal),
        ndmesh::all_but_one_negative_first(3, RoutingMode::Minimal),
        ndmesh::all_but_one_positive_last(3, RoutingMode::Minimal),
    ] {
        let report = verify(&mesh, &alg);
        assert!(report.all_ok(), "{report}");
    }
    let cube = Hypercube::new(5);
    let report = verify(&cube, &hypercube::p_cube(5, RoutingMode::Minimal));
    assert!(report.all_ok(), "{report}");
    let report = verify(&cube, &hypercube::e_cube(5));
    assert!(report.all_ok(), "{report}");
}

#[test]
fn torus_adaptations_verify_deadlock_and_connectivity() {
    let torus = Torus::new(4, 2);
    let nf = NegativeFirstTorus::new(2);
    let report = verify(&torus, &nf);
    assert!(report.all_ok(), "{report}");
    assert_eq!(report.minimal, Check::Skipped); // strictly nonminimal

    let wrapped = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
    let report = verify(&torus, &wrapped);
    assert!(report.deadlock_free.is_ok(), "{report}");
    assert!(report.channels_valid.is_ok(), "{report}");
    assert!(report.connected.is_ok(), "{report}");
}

#[test]
fn fully_adaptive_is_rejected_for_deadlock() {
    let mesh = Mesh::new_2d(4, 4);
    let report = verify(&mesh, &FullyAdaptive::new());
    assert!(!report.all_ok());
    assert!(matches!(report.deadlock_free, Check::Failed(_)));
    // Everything else about it is fine — that is the point of the paper:
    // adaptiveness itself is easy, deadlock freedom is the problem.
    assert!(report.connected.is_ok());
    assert!(report.minimal.is_ok());
    assert!(report.channels_valid.is_ok());
}

#[test]
fn nonminimal_modes_verify_deadlock_freedom() {
    let mesh = Mesh::new_2d(4, 5);
    for alg in [
        mesh2d::west_first(RoutingMode::Nonminimal),
        mesh2d::north_last(RoutingMode::Nonminimal),
        mesh2d::negative_first(RoutingMode::Nonminimal),
    ] {
        let report = verify(&mesh, &alg);
        assert!(report.deadlock_free.is_ok(), "{report}");
        assert!(report.channels_valid.is_ok(), "{report}");
        assert!(report.turns_consistent.is_ok(), "{report}");
        assert_eq!(report.minimal, Check::Skipped);
    }
}
