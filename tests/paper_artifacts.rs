//! One consolidated test per paper artifact: the repository's
//! "reproduction certificate". Each test pins the paper's analytical
//! claim to the measured value.

use turnroute::experiments::{adaptiveness_exp, claims, fig1, pcube_table, theorems};
use turnroute::model::cycle::{
    abstract_cycles, breaks_all_hex_cycles, hex_abstract_cycles, num_ninety_turns, two_turn_census,
};
use turnroute::model::symmetry::equivalence_classes;
use turnroute::model::{presets, TurnSet};
use turnroute::topology::{Hypercube, Mesh, Topology};
use turnroute::traffic::{MeshTranspose, ReverseFlip, Uniform};

#[test]
fn figure_1_deadlock_happens_and_is_prevented() {
    let deadlock = fig1::run_scenario(&fig1::TurnLeft::new());
    assert!(deadlock.deadlocked);
    assert_eq!(deadlock.delivered_packets, 0);
    let wf = turnroute::routing::mesh2d::west_first(turnroute::routing::RoutingMode::Minimal);
    let safe = fig1::run_scenario(&wf);
    assert!(!safe.deadlocked);
    assert_eq!(safe.delivered_packets, 4);
}

#[test]
fn figure_2_two_abstract_cycles_of_four_turns() {
    let cycles = abstract_cycles(2);
    assert_eq!(cycles.len(), 2);
    for c in &cycles {
        assert_eq!(c.turns().len(), 4);
    }
    assert_eq!(num_ninety_turns(2), 8);
}

#[test]
fn section_3_census_16_candidates_12_safe_3_unique() {
    let mesh = Mesh::new_2d(4, 4);
    let census = two_turn_census(&mesh);
    assert_eq!(census.total(), 16);
    assert_eq!(census.deadlock_free(), 12);
    let safe: Vec<TurnSet> = census
        .entries
        .iter()
        .filter(|(_, free)| *free)
        .map(|(s, _)| s.clone())
        .collect();
    assert_eq!(equivalence_classes(&safe).len(), 3);
}

#[test]
fn theorems_1_and_6_hold_for_n_2_to_5() {
    for row in theorems::verify(5) {
        assert_eq!(row.prohibited * 4, row.turns, "a quarter of the turns");
        assert!(row.sufficient && row.necessary, "n = {}", row.n);
    }
}

#[test]
fn section_3_4_adaptiveness_table() {
    // Mean S_p/S_f > 1/2 and S_p = 1 for >= half the pairs, with closed
    // forms matching exhaustive counts, on an 8x8 mesh.
    for row in adaptiveness_exp::analyze(8) {
        assert!(row.formula_verified, "{}", row.algorithm);
        assert!(row.summary.mean_ratio > 0.5);
        assert!(row.summary.single_path_fraction >= 0.5);
    }
}

#[test]
fn section_5_pcube_table_and_counts() {
    let rows = pcube_table::table();
    let choices: Vec<(u32, u32)> = rows
        .iter()
        .take(6)
        .map(|r| (r.choices, r.extra_nonminimal))
        .collect();
    assert_eq!(
        choices,
        vec![(3, 2), (2, 2), (1, 2), (3, 0), (2, 0), (1, 0)]
    );
    let s = pcube_table::render();
    assert!(s.contains("p-cube 36"));
}

#[test]
fn section_6_path_lengths() {
    let mesh = Mesh::new_2d(16, 16);
    let cube = Hypercube::new(8);
    let checks = [
        (
            claims::average_path_length(&cube, &Uniform::new(), 1),
            4.01,
            0.05,
        ),
        (
            claims::average_path_length(&cube, &ReverseFlip::new(), 1),
            4.27,
            0.05,
        ),
        (
            claims::average_path_length(&mesh, &Uniform::new(), 1),
            10.61,
            0.1,
        ),
        (
            claims::average_path_length(&mesh, &MeshTranspose::new(), 1),
            11.34,
            0.1,
        ),
    ];
    for (measured, paper, tol) in checks {
        assert!(
            (measured - paper).abs() < tol,
            "path length {measured:.3} vs paper {paper}"
        );
    }
}

#[test]
fn section_7_hexagonal_cycles_are_triangles() {
    let cycles = hex_abstract_cycles();
    assert_eq!(cycles.len(), 4);
    for c in &cycles {
        assert_eq!(c.turns().len(), 3, "hex cycles have three turns");
    }
    assert!(breaks_all_hex_cycles(&presets::negative_first_turns(3)));
}

#[test]
fn paper_simulation_parameters_are_the_defaults() {
    // 256-node networks, 20 flits/us channels, single-flit buffers,
    // 10-or-200-flit packets, FCFS input and lowest-dim output selection.
    let cfg = turnroute::sim::SimConfig::default();
    assert_eq!(
        cfg.lengths,
        turnroute::sim::LengthDist::Bimodal {
            short: 10,
            long: 200
        }
    );
    assert_eq!(cfg.buffer_depth, 1);
    assert_eq!(cfg.input_policy, turnroute::sim::InputPolicy::Fcfs);
    assert_eq!(cfg.output_policy, turnroute::sim::OutputPolicy::LowestDim);
    assert_eq!(turnroute::sim::CYCLES_PER_MICROSEC, 20.0);
    assert_eq!(Mesh::new_2d(16, 16).num_nodes(), 256);
    assert_eq!(Hypercube::new(8).num_nodes(), 256);
}
