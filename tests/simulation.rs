//! Integration: end-to-end simulations across topologies, algorithms,
//! and workloads.

use turnroute::model::RoutingFunction;
use turnroute::routing::torus::{NegativeFirstTorus, WrapOnFirstHop};
use turnroute::routing::{hypercube, mesh2d, ndmesh, RoutingMode};
use turnroute::sim::{LengthDist, Sim, SimConfig};
use turnroute::topology::{Hypercube, Mesh, Topology, Torus};
use turnroute::traffic::{
    BitComplement, HypercubeTranspose, MeshTranspose, ReverseFlip, TrafficPattern, Uniform,
};

fn low_load_cfg(seed: u64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.04)
        .lengths(LengthDist::Fixed(8))
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .drain_cycles(4_000)
        .seed(seed)
        .build()
}

fn assert_clean_delivery(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    seed: u64,
) {
    let report = Sim::new(topo, routing, pattern, low_load_cfg(seed)).run();
    assert!(!report.deadlocked, "{} deadlocked", routing.name());
    assert!(
        report.delivered_fraction() > 0.99,
        "{} on {}: delivered {:.3}",
        routing.name(),
        pattern.name(),
        report.delivered_fraction()
    );
    assert!(report.generated_packets > 100, "workload too small");
}

#[test]
fn mesh_algorithms_deliver_uniform_and_transpose() {
    let mesh = Mesh::new_2d(8, 8);
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];
    for alg in &algorithms {
        assert_clean_delivery(&mesh, alg, &Uniform::new(), 1);
        assert_clean_delivery(&mesh, alg, &MeshTranspose::new(), 2);
        assert_clean_delivery(&mesh, alg, &BitComplement::new(), 3);
    }
}

#[test]
fn cube_algorithms_deliver_all_paper_patterns() {
    let cube = Hypercube::new(6);
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(hypercube::e_cube(6)),
        Box::new(hypercube::p_cube(6, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_negative_first(6, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_positive_last(6, RoutingMode::Minimal)),
    ];
    for alg in &algorithms {
        assert_clean_delivery(&cube, alg, &Uniform::new(), 4);
        assert_clean_delivery(&cube, alg, &HypercubeTranspose::new(), 5);
        assert_clean_delivery(&cube, alg, &ReverseFlip::new(), 6);
    }
}

#[test]
fn torus_adaptations_deliver_uniform_traffic() {
    let torus = Torus::new(4, 2);
    let nf = NegativeFirstTorus::new(2);
    assert_clean_delivery(&torus, &nf, &Uniform::new(), 7);
    let wrapped = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
    assert_clean_delivery(&torus, &wrapped, &Uniform::new(), 8);
}

#[test]
fn nd_mesh_negative_first_delivers() {
    let mesh = Mesh::new(vec![4, 4, 4]);
    let nf = ndmesh::negative_first(3, RoutingMode::Minimal);
    assert_clean_delivery(&mesh, &nf, &Uniform::new(), 9);
}

#[test]
fn hexagonal_mesh_negative_first_delivers() {
    let hex = turnroute::topology::HexMesh::new(8, 8);
    let nf = turnroute::routing::hex::negative_first_hex(RoutingMode::Minimal);
    assert_clean_delivery(&hex, &nf, &Uniform::new(), 14);
}

#[test]
fn nonminimal_modes_deliver_with_budget() {
    let mesh = Mesh::new_2d(8, 8);
    let cfg = SimConfig::builder()
        .injection_rate(0.04)
        .lengths(LengthDist::Fixed(8))
        .warmup_cycles(500)
        .measure_cycles(3_000)
        .drain_cycles(5_000)
        .misroute_budget(4)
        .seed(10)
        .build();
    for alg in [
        mesh2d::west_first(RoutingMode::Nonminimal),
        mesh2d::negative_first(RoutingMode::Nonminimal),
    ] {
        let report = Sim::new(&mesh, &alg, &Uniform::new(), cfg.clone()).run();
        assert!(!report.deadlocked, "{} deadlocked", alg.name());
        assert!(
            report.delivered_fraction() > 0.98,
            "{} delivered {:.3}",
            alg.name(),
            report.delivered_fraction()
        );
    }
}

#[test]
fn hop_counts_match_minimal_distance_at_low_load() {
    let mesh = Mesh::new_2d(8, 8);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &xy, &pattern, low_load_cfg(11));
    let report = sim.run();
    assert!(report.avg_hops > 0.0);
    for p in sim.packets() {
        if p.delivered.is_some() {
            assert_eq!(
                u32::try_from(mesh.min_hops(p.src, p.dst)).unwrap(),
                p.hops,
                "minimal routing must use exactly min_hops"
            );
            assert_eq!(p.misroutes, 0);
        }
    }
}

#[test]
fn latency_grows_with_load() {
    let mesh = Mesh::new_2d(8, 8);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut latencies = Vec::new();
    for rate in [0.02, 0.10, 0.25] {
        let cfg = SimConfig::builder()
            .injection_rate(rate)
            .warmup_cycles(1_000)
            .measure_cycles(4_000)
            .drain_cycles(4_000)
            .seed(12)
            .build();
        let report = Sim::new(&mesh, &xy, &pattern, cfg).run();
        latencies.push(report.avg_latency_cycles);
    }
    assert!(
        latencies[0] < latencies[1] && latencies[1] < latencies[2],
        "latency must grow with load: {latencies:?}"
    );
}

#[test]
fn oversaturation_does_not_deadlock_partially_adaptive_routing() {
    // Far beyond saturation the network must keep moving (no deadlock):
    // that is the whole point of the turn model.
    let mesh = Mesh::new_2d(8, 8);
    for alg in [
        mesh2d::west_first(RoutingMode::Minimal),
        mesh2d::negative_first(RoutingMode::Minimal),
    ] {
        let cfg = SimConfig::builder()
            .injection_rate(0.8)
            .warmup_cycles(0)
            .measure_cycles(8_000)
            .drain_cycles(0)
            .deadlock_threshold(2_000)
            .seed(13)
            .build();
        let report = Sim::new(&mesh, &alg, &MeshTranspose::new(), cfg).run();
        assert!(
            !report.deadlocked,
            "{} deadlocked at saturation",
            alg.name()
        );
        assert!(report.delivered_flits_in_window > 0);
    }
}

#[test]
fn seeded_runs_replay_identically_across_topologies() {
    let cube = Hypercube::new(6);
    let pc = hypercube::p_cube(6, RoutingMode::Minimal);
    let pattern = ReverseFlip::new();
    let r1 = Sim::new(&cube, &pc, &pattern, low_load_cfg(99)).run();
    let r2 = Sim::new(&cube, &pc, &pattern, low_load_cfg(99)).run();
    assert_eq!(r1, r2);
    let r3 = Sim::new(&cube, &pc, &pattern, low_load_cfg(100)).run();
    assert_ne!(r1, r3, "different seeds should differ");
}

#[test]
fn ejection_contention_is_modeled() {
    // Two packets to the same destination share one ejection channel:
    // their deliveries must serialize.
    let mesh = Mesh::new_2d(4, 4);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let cfg = SimConfig::builder().injection_rate(0.0).build();
    let mut sim = Sim::new(&mesh, &xy, &pattern, cfg);
    let dst = mesh.node_at_coords(&[3, 3]);
    let a = sim.inject_packet(mesh.node_at_coords(&[0, 3]), dst, 20);
    let b = sim.inject_packet(mesh.node_at_coords(&[3, 0]), dst, 20);
    assert!(sim.run_until_idle(1_000));
    let (pa, pb) = (sim.packets()[a.index()], sim.packets()[b.index()]);
    let (da, db) = (pa.delivered.unwrap(), pb.delivered.unwrap());
    assert!(
        da.abs_diff(db) >= 20,
        "20-flit packets through one ejection port must be >= 20 cycles apart"
    );
}
