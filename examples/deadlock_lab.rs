//! Deadlock laboratory: watch the turn model at work.
//!
//! Demonstrates (1) a real wormhole deadlock in the simulator — the
//! paper's Figure 1 — complete with the flit-level postmortem the
//! telemetry subsystem captures, (2) the census of two-turn
//! prohibitions, and (3) a dependency-cycle witness for a turn set that
//! looks safe but is not (Figure 4).
//!
//! ```text
//! cargo run --release --example deadlock_lab
//! ```

use turnroute::experiments::fig1::{self, TurnLeft};
use turnroute::model::cycle::{abstract_cycles, two_turn_census};
use turnroute::model::{Cdg, TurnSet};
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::topology::Mesh;

fn main() {
    // --- Figure 1: four left-turning packets deadlock ---------------
    let (report, telemetry) = fig1::run_scenario_traced(&TurnLeft::new());
    println!(
        "Figure 1 scenario under unrestricted turns: deadlocked = {}",
        report.deadlocked
    );
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let safe = fig1::run_scenario(&wf);
    println!(
        "same packets under west-first: delivered {}/4, deadlocked = {}\n",
        safe.delivered_packets, safe.deadlocked
    );

    // --- The postmortem: what the event trace saw ---------------------
    // The ring trace kept the last flit-level events; the deadlock
    // detector froze the waits-for graph when it tripped.
    if let Some(snap) = telemetry.trace.snapshot() {
        let cycle = snap.cycle_channels();
        println!(
            "deadlock at cycle {}: {} channels hold a flit; circular wait through {} channels:",
            snap.now,
            snap.edges.len(),
            cycle.len()
        );
        for &c in &cycle {
            println!("  {}", snap.layout.describe(c));
        }
        println!("\npostmortem JSONL (what `exp fig1 --trace` writes):");
        for line in telemetry.trace.postmortem_jsonl().lines() {
            println!("  {line}");
        }
        println!();
    }

    // --- Census: 16 two-turn prohibitions, 12 deadlock free ----------
    let mesh = Mesh::new_2d(6, 6);
    let census = two_turn_census(&mesh);
    println!(
        "two-turn census on a 6x6 mesh: {}/{} prohibitions are deadlock free",
        census.deadlock_free(),
        census.total()
    );
    for (set, _) in census.entries.iter().filter(|(_, free)| !free) {
        let turns: Vec<String> = set
            .prohibited_ninety()
            .iter()
            .map(|t| t.to_string())
            .collect();
        println!("  UNSAFE pair: {}", turns.join(" + "));
    }

    // --- A concrete dependency-cycle witness (Figure 4) --------------
    // Prohibit north->west and south->east: both abstract cycles are
    // broken, yet the remaining turns compose into complex cycles.
    let cycles = abstract_cycles(2);
    let mut bad = TurnSet::all_ninety(2);
    bad.prohibit(cycles[1].turns()[0]); // a left turn
    bad.prohibit(cycles[0].turns()[2]); // a right turn, wrong choice
    let cdg = Cdg::from_turn_set(&mesh, &bad);
    match cdg.find_cycle() {
        Some(cycle) => {
            println!("\nwitness cycle of {} channels for {bad}:", cycle.len());
            for c in cycle.iter().take(8) {
                println!("  waits on {}", cdg.channels()[c.index()]);
            }
            if cycle.len() > 8 {
                println!("  ... ({} more)", cycle.len() - 8);
            }
        }
        None => println!("\nno cycle found for {bad} (this pair happens to be safe)"),
    }
}
