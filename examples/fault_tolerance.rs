//! Fault tolerance through nonminimal adaptive routing.
//!
//! The paper argues nonminimal routing "provides better fault tolerance":
//! a packet can route *around* a broken channel that minimal routing must
//! cross. This example breaks channels in an 8x8 mesh and compares
//! minimal and nonminimal west-first.
//!
//! The simulator's arbitration also carries a last-resort fault fallback:
//! when *every* output a routing function offers is broken, it misroutes
//! along any healthy direction the algorithm's turn set still allows. So
//! the minimal router is rescued too — it detours exactly like the
//! nonminimal one, it just never *chose* to.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{OutputPolicy, Sim, SimConfig};
use turnroute::topology::{Direction, Mesh, Topology};
use turnroute::traffic::Uniform;

fn main() {
    let mesh = Mesh::new_2d(8, 8);
    let pattern = Uniform::new();

    // Break the whole eastward column between x=3 and x=4 except one row:
    // packets crossing west-to-east must detour through row 7.
    let faults: Vec<_> = (0..7u16)
        .map(|y| (mesh.node_at_coords(&[3, y]), Direction::EAST))
        .collect();

    for (label, mode, budget) in [
        ("minimal west-first", RoutingMode::Minimal, 0u32),
        (
            "nonminimal west-first (8 misroutes)",
            RoutingMode::Nonminimal,
            8,
        ),
    ] {
        let routing = mesh2d::west_first(mode);
        // HighestDim makes the misrouting packet climb north toward the
        // one intact row rather than descending into the dead southwest
        // corner (column 3's eastward channels are broken for rows 0-6).
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .misroute_budget(budget)
            .output_policy(OutputPolicy::HighestDim)
            .deadlock_threshold(2_000)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        for (node, dir) in &faults {
            sim.set_fault(*node, *dir);
        }
        // A packet that must cross the broken column on a row where the
        // minimal path is severed.
        let src = mesh.node_at_coords(&[1, 2]);
        let dst = mesh.node_at_coords(&[6, 2]);
        let id = sim.inject_packet(src, dst, 10);
        let drained = sim.run_until_idle(4_000);
        let p = sim.packets()[id.index()];
        match p.delivered {
            Some(cycle) => println!(
                "{label}: delivered at cycle {cycle} in {} hops ({} misroutes)",
                p.hops, p.misroutes
            ),
            None => println!("{label}: NOT delivered (drained={drained})"),
        }
    }

    println!();
    println!("Both deliver by the same detour: north along column 3, east on");
    println!("the one intact row, then south. The nonminimal router plans the");
    println!("misroute itself — its offered set includes unproductive turns —");
    println!("while minimal west-first offers only the broken eastward channel");
    println!("and is rescued by the arbitration's misroute-around-fault");
    println!("fallback, which may take any healthy direction west-first's turn");
    println!("set allows. That turn-set filter is also why the rescue is safe:");
    println!("the live channel dependency graph stays a subgraph of the acyclic");
    println!("fault-free one. The paper's point survives in stronger form: the");
    println!("fault tolerance it credits nonminimal routing with is exactly the");
    println!("freedom the fallback borrows — without those turn-legal");
    println!("unproductive hops, the minimal packet would sit on the broken");
    println!("column until its lifetime expired.");
}
