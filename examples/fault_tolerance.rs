//! Fault tolerance through nonminimal adaptive routing.
//!
//! The paper argues nonminimal routing "provides better fault tolerance":
//! a packet can route *around* a broken channel that minimal routing must
//! cross. This example breaks channels in an 8x8 mesh and compares
//! minimal and nonminimal west-first.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{OutputPolicy, Sim, SimConfig};
use turnroute::topology::{Direction, Mesh, Topology};
use turnroute::traffic::Uniform;

fn main() {
    let mesh = Mesh::new_2d(8, 8);
    let pattern = Uniform::new();

    // Break the whole eastward column between x=3 and x=4 except one row:
    // packets crossing west-to-east must detour through row 7.
    let faults: Vec<_> = (0..7u16)
        .map(|y| (mesh.node_at_coords(&[3, y]), Direction::EAST))
        .collect();

    for (label, mode, budget) in [
        ("minimal west-first", RoutingMode::Minimal, 0u32),
        (
            "nonminimal west-first (8 misroutes)",
            RoutingMode::Nonminimal,
            8,
        ),
    ] {
        let routing = mesh2d::west_first(mode);
        // HighestDim makes the misrouting packet climb north toward the
        // one intact row rather than descending into the dead southwest
        // corner (column 3's eastward channels are broken for rows 0-6).
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .misroute_budget(budget)
            .output_policy(OutputPolicy::HighestDim)
            .deadlock_threshold(2_000)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        for (node, dir) in &faults {
            sim.set_fault(*node, *dir);
        }
        // A packet that must cross the broken column on a row where the
        // minimal path is severed.
        let src = mesh.node_at_coords(&[1, 2]);
        let dst = mesh.node_at_coords(&[6, 2]);
        let id = sim.inject_packet(src, dst, 10);
        let drained = sim.run_until_idle(4_000);
        let p = sim.packets()[id.index()];
        match p.delivered {
            Some(cycle) => println!(
                "{label}: delivered at cycle {cycle} in {} hops ({} misroutes)",
                p.hops, p.misroutes
            ),
            None => println!(
                "{label}: NOT delivered (drained={drained}) — minimal routing cannot avoid the fault"
            ),
        }
    }

    println!();
    println!("The minimal router is stuck: west-first minimal offers only the");
    println!("eastward channel on the packet's row, and that channel is broken.");
    println!("The nonminimal router misroutes north, crosses on row 7, and");
    println!("returns south — exactly the fault tolerance the paper credits");
    println!("nonminimal turn-model routing with.");
}
