//! Virtual channels: from partial to full adaptiveness.
//!
//! The paper improves routing *without* extra channels and points to a
//! companion paper for the with-channels story. This example walks that
//! pointer: doubling the vertical channels of a 2D mesh and re-applying
//! the turn model yields a **fully adaptive** deadlock-free algorithm.
//!
//! ```text
//! cargo run --release --example virtual_channels
//! ```

use turnroute::model::adaptiveness::s_fully_adaptive;
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{Sim, SimConfig};
use turnroute::topology::{Mesh, Topology};
use turnroute::traffic::Uniform;
use turnroute::vc::{count_paths, DoubleYAdaptive, VcCdg, VcSim};

fn main() {
    let mesh = Mesh::new_2d(8, 8);

    // 1. Deadlock freedom, mechanically, over *virtual* channels.
    let cdg = VcCdg::from_routing(&mesh, &DoubleYAdaptive::new());
    println!(
        "double-y dependency graph: {} virtual channels, {} edges, acyclic = {}",
        cdg.channels().len(),
        cdg.num_edges(),
        cdg.is_acyclic()
    );

    // 2. Full adaptiveness: S = S_f on every pair.
    let src = mesh.node_at_coords(&[1, 1]);
    let dst = mesh.node_at_coords(&[6, 5]);
    let paths = count_paths(&mesh, src, dst);
    let full = s_fully_adaptive(&mesh.coord_of(src), &mesh.coord_of(dst));
    println!(
        "paths {} -> {}: double-y allows {paths}, fully adaptive bound {full} \
         (west-first would allow {full}, negative-first 1 here)",
        mesh.coord_of(src),
        mesh.coord_of(dst),
    );
    assert_eq!(paths, full);

    // 3. The price: one extra buffered virtual channel per vertical link,
    //    sharing the physical bandwidth. Compare simulated latency with
    //    plain west-first on uniform traffic.
    let cfg = SimConfig::builder()
        .injection_rate(0.10)
        .warmup_cycles(2_000)
        .measure_cycles(8_000)
        .drain_cycles(8_000)
        .seed(5)
        .build();
    let dy = VcSim::new(&mesh, &DoubleYAdaptive::new(), &Uniform::new(), cfg.clone()).run();
    let wf_alg = mesh2d::west_first(RoutingMode::Minimal);
    let wf = Sim::new(&mesh, &wf_alg, &Uniform::new(), cfg).run();
    println!("\nuniform traffic at 0.10 flits/node/cycle on the 8x8 mesh:");
    println!("  double-y (2 VCs): {dy}");
    println!("  west-first (none): {wf}");
    println!("\nFull adaptiveness costs buffers and control logic; whether it pays");
    println!("depends on the workload — exactly the paper's Section 7 trade-off.");
}
