//! Degree-of-adaptiveness tables: Sections 3.4 and 5 reproduced.
//!
//! ```text
//! cargo run --release --example adaptiveness_table
//! ```

use turnroute::experiments::{adaptiveness_exp, pcube_table};
use turnroute::model::adaptiveness::{count_minimal_paths, s_fully_adaptive};
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::topology::{Mesh, Topology};

fn main() {
    // Section 3.4 aggregate table (exhaustive over all pairs of an 8x8
    // mesh; use the `exp adaptiveness-2d` subcommand for the 16x16 run).
    println!("{}", adaptiveness_exp::render(8));

    // A few concrete pairs, counted exhaustively.
    let mesh = Mesh::new_2d(8, 8);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    println!("\nConcrete west-first path counts on the 8x8 mesh:");
    for (s, d) in [
        ([1u16, 1u16], [6u16, 6u16]),
        ([6, 1], [1, 6]),
        ([4, 4], [4, 7]),
    ] {
        let (src, dst) = (mesh.node_at_coords(&s), mesh.node_at_coords(&d));
        let sp = count_minimal_paths(&mesh, &wf, src, dst);
        let sf = s_fully_adaptive(&mesh.coord_of(src), &mesh.coord_of(dst));
        println!(
            "  ({},{}) -> ({},{}): S_wf = {sp:>4}, S_f = {sf:>4}, ratio {:.3}",
            s[0],
            s[1],
            d[0],
            d[1],
            sp as f64 / sf as f64
        );
    }

    // Section 5: the 10-cube p-cube table.
    println!("\n{}", pcube_table::render());
}
