//! The turn model on a hexagonal mesh — the paper's Section 7 future
//! work, realized.
//!
//! ```text
//! cargo run --release --example hexagonal
//! ```

use turnroute::model::verifier::verify;
use turnroute::model::{Cdg, RoutingFunction};
use turnroute::routing::hex::negative_first_hex;
use turnroute::routing::{FullyAdaptive, RoutingMode};
use turnroute::sim::{Sim, SimConfig};
use turnroute::topology::{HexMesh, Topology};
use turnroute::traffic::Uniform;

fn main() {
    // A 8x8 rhombus of hexagonally connected nodes: three axes, six
    // directions, 60- and 120-degree turns, three-turn minimal cycles.
    let hex = HexMesh::new(8, 8);
    println!(
        "hexagonal mesh: {} nodes, {} unidirectional channels",
        hex.num_nodes(),
        hex.channels().len()
    );

    // Unrestricted adaptivity deadlocks on hexagons too.
    let fa = FullyAdaptive::new();
    let cyclic = Cdg::from_routing(&hex, &fa).find_cycle().is_some();
    println!("fully adaptive dependency graph cyclic: {cyclic}");

    // Negative-first, generalized over the three hex axes, passes every
    // check: the turn model transfers exactly as the paper predicted.
    let nf = negative_first_hex(RoutingMode::Minimal);
    print!("{}", verify(&hex, &nf));

    // Routing uses the diagonal axis: mixed offsets resolve in fewer
    // hops than on a square mesh.
    let src = hex.node_at_axial(0, 5);
    let dst = hex.node_at_axial(4, 0);
    println!(
        "\n(0,5) -> (4,0): hex distance {} (a 2D mesh would need {})",
        hex.min_hops(src, dst),
        4 + 5
    );
    let dirs = nf.route(&hex, src, dst, None);
    println!("first-hop options: {dirs}");

    // And it simulates: uniform traffic, no deadlock, full delivery.
    let cfg = SimConfig::builder()
        .injection_rate(0.08)
        .warmup_cycles(2_000)
        .measure_cycles(8_000)
        .drain_cycles(8_000)
        .seed(13)
        .build();
    let report = Sim::new(&hex, &nf, &Uniform::new(), cfg).run();
    println!("\nuniform traffic at 0.08 flits/node/cycle: {report}");
    assert!(!report.deadlocked);
}
