//! Quickstart: verify a routing algorithm is deadlock free, trace a
//! route, and simulate some traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use turnroute::model::{numbering, Cdg, RoutingFunction};
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::{Sim, SimConfig};
use turnroute::topology::{Mesh, Topology};
use turnroute::traffic::Uniform;

fn main() {
    // 1. A 16x16 mesh, as in the paper's evaluation.
    let mesh = Mesh::new_2d(16, 16);
    println!(
        "topology: 16x16 mesh, {} nodes, {} unidirectional channels",
        mesh.num_nodes(),
        mesh.channels().len()
    );

    // 2. West-first routing, and a mechanical proof it cannot deadlock:
    //    its channel dependency graph is acyclic, so a strictly monotonic
    //    channel numbering exists (Dally & Seitz).
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let cdg = Cdg::from_routing(&mesh, &wf);
    assert!(cdg.is_acyclic());
    let numbers = numbering::numbering_from_cdg(&cdg).expect("acyclic CDG");
    println!(
        "west-first: CDG acyclic ({} dependencies), numbering witness over {} channels",
        cdg.num_edges(),
        numbers.len()
    );

    // 3. Trace the adaptive options of one packet.
    let src = mesh.node_at_coords(&[12, 3]);
    let dst = mesh.node_at_coords(&[2, 9]);
    let first = wf.route(&mesh, src, dst, None);
    println!(
        "routing {} -> {}: first-hop options {first} (west must come first)",
        mesh.coord_of(src),
        mesh.coord_of(dst)
    );

    // 4. Simulate uniform traffic at a moderate load.
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.10)
        .warmup_cycles(2_000)
        .measure_cycles(8_000)
        .drain_cycles(8_000)
        .seed(7)
        .build();
    let report = Sim::new(&mesh, &wf, &pattern, cfg).run();
    println!("simulation: {report}");
    assert!(!report.deadlocked);
}
