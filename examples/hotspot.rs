//! Hotspot traffic: adaptive routing spreads around contended regions.
//!
//! The paper motivates adaptiveness with "alternative paths for packets
//! that encounter continuously blocked channels ... or hot spots in
//! traffic patterns". This example sends 20% of all traffic at one node
//! of a 16x16 mesh and compares xy with the partially adaptive
//! algorithms.
//!
//! ```text
//! cargo run --release --example hotspot
//! ```

use turnroute::model::RoutingFunction;
use turnroute::routing::{mesh2d, RoutingMode};
use turnroute::sim::obs::{ChannelHeatmap, ChannelLayout};
use turnroute::sim::{Sim, SimConfig};
use turnroute::topology::{Mesh, Topology};
use turnroute::traffic::Hotspot;

fn main() {
    let mesh = Mesh::new_2d(16, 16);
    // 10% of traffic aims at the hotspot. At 0.03 flits/node/cycle this
    // puts the hotspot ejection channel near 77% utilization — congested
    // but not oversaturated (its hard capacity is 1 flit/cycle).
    let hotspot = Hotspot::new(mesh.node_at_coords(&[8, 8]), 0.10);

    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ];

    println!("hotspot at (8,8), 10% of traffic; 16x16 mesh; load 0.03 flits/node/cycle\n");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "algorithm", "latency(us)", "p99(us)", "delivered"
    );
    for alg in &algorithms {
        let cfg = SimConfig::builder()
            .injection_rate(0.03)
            .warmup_cycles(3_000)
            .measure_cycles(12_000)
            .drain_cycles(12_000)
            .seed(11)
            .build();
        let report = Sim::new(&mesh, alg, &hotspot, cfg).run();
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>9.1}%",
            alg.name(),
            report.avg_latency_us(),
            report.p99_latency_cycles / turnroute::sim::CYCLES_PER_MICROSEC,
            report.delivered_fraction() * 100.0
        );
    }
    println!("\nNote: the ejection channel at the hotspot is the ultimate bottleneck");
    println!("for traffic *to* the hotspot; adaptivity helps the background traffic");
    println!("route around the congested region instead of queueing behind it.");

    // --- Channel heatmaps: where the load actually lands --------------
    // Re-run the two extremes with a ChannelHeatmap observer attached and
    // render per-node load as an ASCII grid (darker = more flit-moves).
    for alg in [&algorithms[0], &algorithms[3]] {
        let cfg = SimConfig::builder()
            .injection_rate(0.03)
            .warmup_cycles(3_000)
            .measure_cycles(12_000)
            .drain_cycles(12_000)
            .seed(11)
            .build();
        let heatmap = ChannelHeatmap::new(ChannelLayout::for_topology(&mesh));
        let mut sim = Sim::with_observer(&mesh, alg, &hotspot, cfg, heatmap);
        sim.run();
        let heatmap = sim.into_observer();
        println!(
            "\nchannel load heatmap, {} (total {} flit-moves, {} stall-cycles):",
            alg.name(),
            heatmap.total_load(),
            heatmap.total_stall_cycles()
        );
        println!(
            "{}",
            heatmap.render_grid(16, 16, |x, y| mesh.node_at_coords(&[x, y]))
        );
        let layout = heatmap.layout();
        for (slot, load, stall) in heatmap.hottest_channels(3) {
            println!(
                "  hot: {:<28} load {:>6}  stalls {:>6}",
                layout.describe(slot),
                load,
                stall
            );
        }
    }
}
