//! *n*-dimensional mesh topology.

use crate::{mesh_productive_dirs, Coord, DirSet, Direction, NodeId, Sign, Topology};

/// An *n*-dimensional mesh with `k_0 × k_1 × … × k_{n-1}` nodes and no
/// wraparound channels.
///
/// Two nodes are neighbors iff their coordinates agree in all dimensions
/// except one, where they differ by exactly 1. Interior nodes have `2n`
/// neighbors; corner nodes have `n`.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Mesh, Topology, Direction};
///
/// let mesh = Mesh::new_2d(8, 8); // the paper's example meshes
/// assert_eq!(mesh.num_nodes(), 64);
/// let corner = mesh.node_at_coords(&[0, 0]);
/// assert!(mesh.neighbor(corner, Direction::WEST).is_none());
/// assert!(mesh.neighbor(corner, Direction::EAST).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mesh {
    radices: Vec<u16>,
    /// strides[i] = product of radices[0..i]; node id = Σ x_i * strides[i].
    strides: Vec<usize>,
    num_nodes: usize,
}

impl Mesh {
    /// Create an *n*-dimensional mesh with the given per-dimension radices.
    ///
    /// # Panics
    ///
    /// Panics if `radices` is empty, any radix is `< 2` (the paper requires
    /// `k_i ≥ 2`), there are more than 16 dimensions, or the node count
    /// overflows `u32`.
    pub fn new(radices: Vec<u16>) -> Mesh {
        assert!(!radices.is_empty(), "mesh needs at least one dimension");
        assert!(radices.len() <= 16, "at most 16 dimensions supported");
        assert!(
            radices.iter().all(|&k| k >= 2),
            "every mesh dimension must have radix >= 2"
        );
        let mut strides = Vec::with_capacity(radices.len());
        let mut acc: usize = 1;
        for &k in &radices {
            strides.push(acc);
            acc = acc
                .checked_mul(usize::from(k))
                .expect("node count overflow");
        }
        assert!(acc <= u32::MAX as usize, "node count must fit in u32");
        Mesh {
            radices,
            strides,
            num_nodes: acc,
        }
    }

    /// Create a 2D `m × n` mesh (`m` columns along x, `n` rows along y).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `n < 2`.
    pub fn new_2d(m: u16, n: u16) -> Mesh {
        Mesh::new(vec![m, n])
    }

    /// Create a cubic mesh: `n` dimensions of radix `k` each.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Mesh::new`].
    pub fn new_cubic(k: u16, n: usize) -> Mesh {
        Mesh::new(vec![k; n])
    }

    /// The per-dimension radices.
    pub fn radices(&self) -> &[u16] {
        &self.radices
    }
}

impl Topology for Mesh {
    fn num_dims(&self) -> usize {
        self.radices.len()
    }

    fn radix(&self, dim: usize) -> usize {
        usize::from(self.radices[dim])
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn has_wraparound(&self, dim: usize) -> bool {
        assert!(dim < self.radices.len(), "dimension out of range");
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes, "node {node} out of range");
        let mut rem = node.index();
        let comps = self
            .radices
            .iter()
            .map(|&k| {
                let c = (rem % usize::from(k)) as u16;
                rem /= usize::from(k);
                c
            })
            .collect();
        Coord::new(comps)
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        assert_eq!(
            coord.num_dims(),
            self.num_dims(),
            "coordinate dimensionality mismatch"
        );
        let mut id = 0usize;
        for (dim, &c) in coord.as_slice().iter().enumerate() {
            assert!(
                usize::from(c) < self.radix(dim),
                "coordinate {coord} out of range in dimension {dim}"
            );
            id += usize::from(c) * self.strides[dim];
        }
        NodeId(id as u32)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let dim = dir.dim();
        assert!(dim < self.num_dims(), "direction {dir} out of range");
        let k = usize::from(self.radices[dim]);
        let c = (node.index() / self.strides[dim]) % k;
        match dir.sign() {
            Sign::Minus if c > 0 => Some(NodeId((node.index() - self.strides[dim]) as u32)),
            Sign::Plus if c + 1 < k => Some(NodeId((node.index() + self.strides[dim]) as u32)),
            _ => None,
        }
    }

    fn is_wrap(&self, _node: NodeId, _dir: Direction) -> bool {
        false
    }

    fn min_hops(&self, a: NodeId, b: NodeId) -> usize {
        self.coord_of(a).manhattan(&self.coord_of(b))
    }

    fn productive_dirs(&self, from: NodeId, to: NodeId) -> DirSet {
        mesh_productive_dirs(&self.coord_of(from), &self.coord_of(to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_round_trip_4x4() {
        let mesh = Mesh::new_2d(4, 4);
        for id in 0..mesh.num_nodes() {
            let node = NodeId(id as u32);
            let c = mesh.coord_of(node);
            assert_eq!(mesh.node_at(&c), node);
        }
    }

    #[test]
    fn linearization_dimension_zero_fastest() {
        let mesh = Mesh::new_2d(4, 3);
        assert_eq!(mesh.node_at_coords(&[1, 0]), NodeId(1));
        assert_eq!(mesh.node_at_coords(&[0, 1]), NodeId(4));
        assert_eq!(mesh.node_at_coords(&[3, 2]), NodeId(11));
    }

    #[test]
    fn boundary_nodes_lack_channels() {
        let mesh = Mesh::new_2d(4, 4);
        let sw = mesh.node_at_coords(&[0, 0]);
        let ne = mesh.node_at_coords(&[3, 3]);
        assert!(mesh.neighbor(sw, Direction::WEST).is_none());
        assert!(mesh.neighbor(sw, Direction::SOUTH).is_none());
        assert!(mesh.neighbor(ne, Direction::EAST).is_none());
        assert!(mesh.neighbor(ne, Direction::NORTH).is_none());
        assert_eq!(
            mesh.neighbor(sw, Direction::EAST),
            Some(mesh.node_at_coords(&[1, 0]))
        );
        assert_eq!(
            mesh.neighbor(sw, Direction::NORTH),
            Some(mesh.node_at_coords(&[0, 1]))
        );
    }

    #[test]
    fn channel_count_2d() {
        // A m x n mesh has 2*( (m-1)*n + (n-1)*m ) unidirectional channels.
        let mesh = Mesh::new_2d(16, 16);
        assert_eq!(mesh.channels().len(), 2 * (15 * 16 + 15 * 16));
    }

    #[test]
    fn channel_count_3d() {
        let mesh = Mesh::new(vec![3, 4, 5]);
        let expected = 2 * (2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
        assert_eq!(mesh.channels().len(), expected);
    }

    #[test]
    fn channels_have_stable_dense_ids() {
        let mesh = Mesh::new_2d(3, 3);
        for (i, ch) in mesh.channels().iter().enumerate() {
            assert_eq!(ch.id().index(), i);
            assert!(!ch.is_wrap());
            assert_eq!(mesh.neighbor(ch.src(), ch.dir()), Some(ch.dst()));
        }
    }

    #[test]
    fn min_hops_is_manhattan() {
        let mesh = Mesh::new_2d(8, 8);
        let a = mesh.node_at_coords(&[1, 2]);
        let b = mesh.node_at_coords(&[6, 0]);
        assert_eq!(mesh.min_hops(a, b), 7);
    }

    #[test]
    fn productive_dirs_quadrants() {
        let mesh = Mesh::new_2d(8, 8);
        let c = mesh.node_at_coords(&[4, 4]);
        let ne = mesh.node_at_coords(&[6, 6]);
        let dirs = mesh.productive_dirs(c, ne);
        assert!(dirs.contains(Direction::EAST) && dirs.contains(Direction::NORTH));
        assert_eq!(dirs.len(), 2);
        let w = mesh.node_at_coords(&[0, 4]);
        assert_eq!(mesh.productive_dirs(c, w), DirSet::single(Direction::WEST));
        assert!(mesh.productive_dirs(c, c).is_empty());
    }

    #[test]
    #[should_panic(expected = "radix >= 2")]
    fn rejects_radix_one() {
        let _ = Mesh::new(vec![4, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_at_rejects_out_of_range() {
        let mesh = Mesh::new_2d(4, 4);
        let _ = mesh.node_at(&Coord::new(vec![4, 0]));
    }

    #[test]
    fn cubic_constructor() {
        let mesh = Mesh::new_cubic(4, 3);
        assert_eq!(mesh.num_dims(), 3);
        assert_eq!(mesh.num_nodes(), 64);
        assert_eq!(mesh.radices(), &[4, 4, 4]);
        assert!(!mesh.has_wraparound(2));
    }
}
