//! Binary hypercube topology.

use crate::{Coord, DirSet, Direction, NodeId, Sign, Topology};

/// A binary *n*-cube (hypercube): `2^n` nodes, each identified by an *n*-bit
/// address; two nodes are neighbors iff their addresses differ in exactly
/// one bit.
///
/// The hypercube is both an *n*-dimensional mesh with every `k_i = 2` and a
/// 2-ary *n*-cube; here it follows the mesh view (no wraparound channels):
/// moving along dimension `i` flips bit `i`, and the legal direction in a
/// dimension depends on the current bit value, so every node has exactly `n`
/// neighbors.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Hypercube, Topology, NodeId};
///
/// let cube = Hypercube::new(8); // the paper's binary 8-cube, 256 nodes
/// assert_eq!(cube.num_nodes(), 256);
/// // Hamming distance = minimal hop count.
/// assert_eq!(cube.min_hops(NodeId(0b1011_0101), NodeId(0b0010_1100)), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hypercube {
    n: usize,
}

impl Hypercube {
    /// Create a binary `n`-cube.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 16`.
    pub fn new(n: usize) -> Hypercube {
        assert!(n >= 1, "hypercube needs at least one dimension");
        assert!(n <= 16, "at most 16 dimensions supported");
        Hypercube { n }
    }

    /// The `n`-bit binary address of `node` (identical to its id).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn address(&self, node: NodeId) -> u32 {
        assert!(node.index() < self.num_nodes(), "node {node} out of range");
        node.0
    }

    /// The node with the given `n`-bit binary address.
    ///
    /// # Panics
    ///
    /// Panics if `address >= 2^n`.
    pub fn node_with_address(&self, address: u32) -> NodeId {
        assert!(
            (address as usize) < self.num_nodes(),
            "address {address:#b} out of range"
        );
        NodeId(address)
    }

    /// Hamming distance between two nodes (the paper's `h`).
    pub fn hamming(&self, a: NodeId, b: NodeId) -> usize {
        (self.address(a) ^ self.address(b)).count_ones() as usize
    }

    /// The dimensions in which `a` and `b` differ, lowest first.
    pub fn differing_dims(&self, a: NodeId, b: NodeId) -> Vec<usize> {
        let mut x = self.address(a) ^ self.address(b);
        let mut dims = Vec::with_capacity(x.count_ones() as usize);
        while x != 0 {
            dims.push(x.trailing_zeros() as usize);
            x &= x - 1;
        }
        dims
    }
}

impl Topology for Hypercube {
    fn num_dims(&self) -> usize {
        self.n
    }

    fn radix(&self, dim: usize) -> usize {
        assert!(dim < self.n, "dimension out of range");
        2
    }

    fn num_nodes(&self) -> usize {
        1 << self.n
    }

    fn has_wraparound(&self, dim: usize) -> bool {
        assert!(dim < self.n, "dimension out of range");
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        let addr = self.address(node);
        (0..self.n).map(|i| ((addr >> i) & 1) as u16).collect()
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        assert_eq!(
            coord.num_dims(),
            self.n,
            "coordinate dimensionality mismatch"
        );
        let mut addr = 0u32;
        for (dim, &c) in coord.as_slice().iter().enumerate() {
            assert!(c < 2, "coordinate {coord} out of range in dimension {dim}");
            addr |= u32::from(c) << dim;
        }
        NodeId(addr)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let dim = dir.dim();
        assert!(dim < self.n, "direction {dir} out of range");
        let addr = self.address(node);
        let bit = (addr >> dim) & 1;
        match (dir.sign(), bit) {
            (Sign::Minus, 1) => Some(NodeId(addr & !(1 << dim))),
            (Sign::Plus, 0) => Some(NodeId(addr | (1 << dim))),
            _ => None,
        }
    }

    fn is_wrap(&self, _node: NodeId, _dir: Direction) -> bool {
        false
    }

    fn min_hops(&self, a: NodeId, b: NodeId) -> usize {
        self.hamming(a, b)
    }

    fn productive_dirs(&self, from: NodeId, to: NodeId) -> DirSet {
        let (fa, ta) = (self.address(from), self.address(to));
        let mut set = DirSet::empty();
        let mut diff = fa ^ ta;
        while diff != 0 {
            let dim = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            let sign = if (fa >> dim) & 1 == 1 {
                Sign::Minus
            } else {
                Sign::Plus
            };
            set.insert(Direction::new(dim, sign));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_and_neighbors() {
        let cube = Hypercube::new(3);
        assert_eq!(cube.num_nodes(), 8);
        // Every node has exactly n neighbors.
        for id in 0..8u32 {
            let node = NodeId(id);
            let count = Direction::all(3)
                .filter(|&d| cube.neighbor(node, d).is_some())
                .count();
            assert_eq!(count, 3);
        }
    }

    #[test]
    fn neighbor_flips_one_bit() {
        let cube = Hypercube::new(4);
        let node = NodeId(0b0101);
        assert_eq!(
            cube.neighbor(node, Direction::new(0, Sign::Minus)),
            Some(NodeId(0b0100))
        );
        assert_eq!(cube.neighbor(node, Direction::new(0, Sign::Plus)), None);
        assert_eq!(
            cube.neighbor(node, Direction::new(1, Sign::Plus)),
            Some(NodeId(0b0111))
        );
        assert_eq!(cube.neighbor(node, Direction::new(1, Sign::Minus)), None);
    }

    #[test]
    fn coord_round_trip() {
        let cube = Hypercube::new(5);
        for id in 0..cube.num_nodes() {
            let node = NodeId(id as u32);
            assert_eq!(cube.node_at(&cube.coord_of(node)), node);
        }
    }

    #[test]
    fn hamming_and_differing_dims() {
        let cube = Hypercube::new(10);
        // The paper's Section 5 example.
        let s = cube.node_with_address(0b1011010100);
        let d = cube.node_with_address(0b0010111001);
        assert_eq!(cube.hamming(s, d), 6);
        assert_eq!(cube.differing_dims(s, d), vec![0, 2, 3, 5, 6, 9]);
    }

    #[test]
    fn productive_dirs_match_bits() {
        let cube = Hypercube::new(4);
        let s = NodeId(0b1010);
        let d = NodeId(0b0110);
        let dirs = cube.productive_dirs(s, d);
        // Must clear bit 3 (travel Minus in dim 3) and set bit 2 (Plus in dim 2).
        assert_eq!(dirs.len(), 2);
        assert!(dirs.contains(Direction::new(3, Sign::Minus)));
        assert!(dirs.contains(Direction::new(2, Sign::Plus)));
    }

    #[test]
    fn channel_count_is_n_times_nodes() {
        // n * 2^n unidirectional channels (each node has n outgoing).
        let cube = Hypercube::new(8);
        assert_eq!(cube.channels().len(), 8 * 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn address_checks_range() {
        let cube = Hypercube::new(3);
        let _ = cube.address(NodeId(8));
    }
}
