//! Per-dimension node coordinates.

/// The coordinates of a node: one component per dimension, with component
/// `i` in `0..k_i`.
///
/// A `Coord` is an inexpensive, plain value. Components are `u16`, which is
/// ample for any network this crate targets (radix up to 65 535).
///
/// # Example
///
/// ```
/// use turnroute_topology::Coord;
///
/// let c = Coord::new(vec![3, 1]);
/// assert_eq!(c.num_dims(), 2);
/// assert_eq!(c.get(0), 3);
/// assert_eq!(c.to_string(), "(3, 1)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    comps: Vec<u16>,
}

impl Coord {
    /// Create a coordinate from its components.
    pub fn new(comps: Vec<u16>) -> Self {
        Coord { comps }
    }

    /// A coordinate of `n` zeros (the origin of an `n`-dimensional network).
    pub fn origin(n: usize) -> Self {
        Coord { comps: vec![0; n] }
    }

    /// Number of dimensions.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.comps.len()
    }

    /// Component along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[inline]
    pub fn get(&self, dim: usize) -> u16 {
        self.comps[dim]
    }

    /// Set the component along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[inline]
    pub fn set(&mut self, dim: usize, value: u16) {
        self.comps[dim] = value;
    }

    /// View the components as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u16] {
        &self.comps
    }

    /// Consume the coordinate, returning its components.
    pub fn into_components(self) -> Vec<u16> {
        self.comps
    }

    /// Iterate over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, u16> {
        self.comps.iter()
    }

    /// The sum of the components (the paper's `X = Σ x_i`, used by the
    /// negative-first channel numbering of Theorem 5).
    pub fn component_sum(&self) -> u32 {
        self.comps.iter().map(|&c| u32::from(c)).sum()
    }

    /// Manhattan distance to `other` (minimal hop count on a mesh).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn manhattan(&self, other: &Coord) -> usize {
        assert_eq!(
            self.num_dims(),
            other.num_dims(),
            "coordinate dimensionality mismatch"
        );
        self.comps
            .iter()
            .zip(&other.comps)
            .map(|(&a, &b)| usize::from(a.abs_diff(b)))
            .sum()
    }

    /// Per-dimension absolute offsets `|other_i - self_i|` (the paper's
    /// `Δx`, `Δy` generalized).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn deltas(&self, other: &Coord) -> Vec<u16> {
        assert_eq!(
            self.num_dims(),
            other.num_dims(),
            "coordinate dimensionality mismatch"
        );
        self.comps
            .iter()
            .zip(&other.comps)
            .map(|(&a, &b)| a.abs_diff(b))
            .collect()
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.comps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u16>> for Coord {
    fn from(comps: Vec<u16>) -> Self {
        Coord::new(comps)
    }
}

impl AsRef<[u16]> for Coord {
    fn as_ref(&self) -> &[u16] {
        &self.comps
    }
}

impl FromIterator<u16> for Coord {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        Coord::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_all_zero() {
        let c = Coord::origin(3);
        assert_eq!(c.as_slice(), &[0, 0, 0]);
        assert_eq!(c.component_sum(), 0);
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(vec![0, 0]);
        let b = Coord::new(vec![3, 4]);
        assert_eq!(a.manhattan(&b), 7);
        assert_eq!(b.manhattan(&a), 7);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn deltas_are_absolute() {
        let a = Coord::new(vec![5, 1]);
        let b = Coord::new(vec![2, 4]);
        assert_eq!(a.deltas(&b), vec![3, 3]);
        assert_eq!(b.deltas(&a), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn manhattan_rejects_mismatched_dims() {
        let a = Coord::new(vec![0, 0]);
        let b = Coord::new(vec![0, 0, 0]);
        let _ = a.manhattan(&b);
    }

    #[test]
    fn display_and_conversions() {
        let c: Coord = vec![1u16, 2, 3].into();
        assert_eq!(c.to_string(), "(1, 2, 3)");
        let back: Vec<u16> = c.clone().into_components();
        assert_eq!(back, vec![1, 2, 3]);
        let collected: Coord = back.into_iter().collect();
        assert_eq!(collected, c);
        assert_eq!(c.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn set_and_get() {
        let mut c = Coord::origin(2);
        c.set(1, 9);
        assert_eq!(c.get(1), 9);
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), vec![0, 9]);
    }
}
