//! Unidirectional network channels.

use crate::{Direction, NodeId};

/// Identifier of a unidirectional channel, dense in `0..num_channels` for a
/// given topology, in the stable order produced by
/// [`Topology::channels`](crate::Topology::channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The dense index of this channel, for per-channel tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A unidirectional channel from one router to a neighboring router.
///
/// Wormhole routing acquires and releases channels, so channels — not nodes —
/// are the resource vertices of deadlock analysis (the channel dependency
/// graph of Dally & Seitz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    id: ChannelId,
    src: NodeId,
    dst: NodeId,
    dir: Direction,
    wrap: bool,
}

impl Channel {
    /// Create a channel description.
    pub fn new(id: ChannelId, src: NodeId, dst: NodeId, dir: Direction, wrap: bool) -> Channel {
        Channel {
            id,
            src,
            dst,
            dir,
            wrap,
        }
    }

    /// The channel's identifier.
    #[inline]
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The router the channel leaves.
    #[inline]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The router the channel enters.
    #[inline]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The physical direction the channel routes packets in.
    #[inline]
    pub fn dir(&self) -> Direction {
        self.dir
    }

    /// Whether this is a wraparound channel of a torus.
    #[inline]
    pub fn is_wrap(&self) -> bool {
        self.wrap
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} -> {} ({}{})",
            self.id,
            self.src,
            self.dst,
            self.dir,
            if self.wrap { ", wrap" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sign;

    #[test]
    fn channel_accessors() {
        let c = Channel::new(
            ChannelId(3),
            NodeId(0),
            NodeId(1),
            Direction::new(0, Sign::Plus),
            false,
        );
        assert_eq!(c.id(), ChannelId(3));
        assert_eq!(c.src(), NodeId(0));
        assert_eq!(c.dst(), NodeId(1));
        assert_eq!(c.dir(), Direction::EAST);
        assert!(!c.is_wrap());
        assert_eq!(c.to_string(), "c3 n0 -> n1 (east)");
    }

    #[test]
    fn wrap_channel_display() {
        let c = Channel::new(ChannelId(0), NodeId(3), NodeId(0), Direction::EAST, true);
        assert_eq!(c.to_string(), "c0 n3 -> n0 (east, wrap)");
        assert_eq!(c.id().index(), 0);
    }
}
