//! Direct-network topologies for wormhole routing.
//!
//! This crate models the interconnection-network substrate of the turn-model
//! paper (Glass & Ni): *n*-dimensional meshes, *k*-ary *n*-cubes (tori), and
//! hypercubes, together with the vocabulary shared by every other crate in
//! the workspace — node identifiers, per-dimension coordinates, directions
//! (a dimension plus a sign), and unidirectional channels.
//!
//! # Example
//!
//! ```
//! use turnroute_topology::{Mesh, Topology, Direction, Sign};
//!
//! let mesh = Mesh::new_2d(4, 4);
//! let origin = mesh.node_at_coords(&[0, 0]);
//! let east = Direction::new(0, Sign::Plus);
//! let next = mesh.neighbor(origin, east).expect("(1,0) exists");
//! assert_eq!(mesh.coord_of(next).as_slice(), &[1, 0]);
//! assert_eq!(mesh.min_hops(origin, mesh.node_at_coords(&[3, 3])), 6);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod channel;
mod coord;
mod direction;
mod fault;
mod hex;
mod hypercube;
mod mesh;
mod torus;

pub use channel::{Channel, ChannelId};
pub use coord::Coord;
pub use direction::{DirSet, Direction, Sign};
pub use fault::FaultSet;
pub use hex::HexMesh;
pub use hypercube::Hypercube;
pub use mesh::Mesh;
pub use torus::Torus;

/// Identifier of a node (router + local processor) in a topology.
///
/// Node ids are dense: `0..topology.num_nodes()`. They linearize the node
/// coordinate with dimension 0 varying fastest, matching the paper's
/// `(x_0, x_1, …, x_{n-1})` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// A direct-network topology: a set of nodes on an *n*-dimensional grid and
/// the unidirectional channels connecting neighboring nodes.
///
/// All three concrete topologies ([`Mesh`], [`Torus`], [`Hypercube`]) share
/// this interface, which is object-safe so that simulators and analyses can
/// hold a `&dyn Topology`.
pub trait Topology {
    /// Number of dimensions *n*.
    fn num_dims(&self) -> usize;

    /// Number of nodes along dimension `dim` (the paper's `k_i`).
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.num_dims()`.
    fn radix(&self, dim: usize) -> usize;

    /// Total number of nodes.
    fn num_nodes(&self) -> usize;

    /// Whether the topology has wraparound channels in `dim`.
    fn has_wraparound(&self, dim: usize) -> bool;

    /// The coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn coord_of(&self, node: NodeId) -> Coord;

    /// The node at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` has the wrong dimensionality or any component is
    /// out of range.
    fn node_at(&self, coord: &Coord) -> NodeId;

    /// The neighbor of `node` in direction `dir`, or `None` if the channel
    /// does not exist (mesh boundary).
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// Whether the channel leaving `node` in direction `dir` is a wraparound
    /// channel. `false` whenever [`Topology::neighbor`] is `None`.
    fn is_wrap(&self, node: NodeId, dir: Direction) -> bool;

    /// Minimum number of hops between two nodes.
    fn min_hops(&self, a: NodeId, b: NodeId) -> usize;

    /// The set of directions whose channels lie on some shortest path from
    /// `from` to `to` (the *productive* directions). Empty iff `from == to`.
    fn productive_dirs(&self, from: NodeId, to: NodeId) -> DirSet;

    /// Convenience: the node at the given coordinate components.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::node_at`].
    fn node_at_coords(&self, comps: &[u16]) -> NodeId
    where
        Self: Sized,
    {
        self.node_at(&Coord::new(comps.to_vec()))
    }

    /// Enumerate every unidirectional network channel, in a stable order
    /// (by source node index, then direction index).
    fn channels(&self) -> Vec<Channel> {
        let n = self.num_dims();
        let mut out = Vec::new();
        for node in 0..self.num_nodes() {
            let node = NodeId(node as u32);
            for d in Direction::all(n) {
                if let Some(dst) = self.neighbor(node, d) {
                    out.push(Channel::new(
                        ChannelId(out.len() as u32),
                        node,
                        dst,
                        d,
                        self.is_wrap(node, d),
                    ));
                }
            }
        }
        out
    }

    /// A dense upper bound on channel slot indices used by
    /// [`Topology::channel_slot`]: `num_nodes * 2 * num_dims`.
    fn channel_slot_count(&self) -> usize {
        self.num_nodes() * 2 * self.num_dims()
    }

    /// A dense per-(node, direction) slot index for the output channel of
    /// `node` in `dir`, valid whether or not the channel exists. Useful for
    /// flat per-channel tables; slots of nonexistent channels stay unused.
    fn channel_slot(&self, node: NodeId, dir: Direction) -> usize {
        node.index() * 2 * self.num_dims() + dir.index()
    }
}

/// Shared helper: productive directions on a pure mesh (no wraparound).
pub(crate) fn mesh_productive_dirs(from: &Coord, to: &Coord) -> DirSet {
    let mut set = DirSet::empty();
    for dim in 0..from.num_dims() {
        let (f, t) = (from.get(dim), to.get(dim));
        if t > f {
            set.insert(Direction::new(dim, Sign::Plus));
        } else if t < f {
            set.insert(Direction::new(dim, Sign::Minus));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let node = NodeId(7);
        assert_eq!(node.to_string(), "n7");
        assert_eq!(node.index(), 7);
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn channel_slots_are_dense_and_unique() {
        let mesh = Mesh::new_2d(3, 3);
        let mut seen = vec![false; mesh.channel_slot_count()];
        for node in 0..mesh.num_nodes() {
            for dir in Direction::all(2) {
                let slot = mesh.channel_slot(NodeId(node as u32), dir);
                assert!(!seen[slot], "slot {slot} reused");
                seen[slot] = true;
            }
        }
    }

    #[test]
    fn mesh_productive_dirs_empty_for_same_node() {
        let a = Coord::new(vec![1, 1]);
        assert!(mesh_productive_dirs(&a, &a).is_empty());
    }
}
