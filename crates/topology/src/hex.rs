//! Hexagonal mesh topology — the paper's Section 7 extension target.
//!
//! A hexagonal mesh gives every interior node six neighbors along three
//! axes. We use axial coordinates `(q, r)` over a `Q × R` rhombus; the
//! three axes are exposed as the three "dimensions" of the
//! [`Topology`](crate::Topology) interface:
//!
//! | dimension | `+` direction | axial move |
//! |---|---|---|
//! | 0 (A) | east       | `(q+1, r)` |
//! | 1 (B) | south-east | `(q, r+1)` |
//! | 2 (C) | north-east | `(q+1, r-1)` |
//!
//! A node's [`Coord`] is `(q, r, q+r)` — the third component is the
//! derived diagonal index, so every move changes exactly the components
//! of its axis pair and coordinates stay non-negative. Distances use the
//! standard hex metric `(|dq| + |dr| + |dq+dr|) / 2`.

use crate::{Coord, DirSet, Direction, NodeId, Sign, Topology};

/// A `Q × R` rhombus of hexagonally connected nodes.
///
/// # Example
///
/// ```
/// use turnroute_topology::{HexMesh, Topology};
///
/// let hex = HexMesh::new(4, 4);
/// assert_eq!(hex.num_nodes(), 16);
/// // Interior nodes have six neighbors.
/// let center = hex.node_at_axial(1, 1);
/// let degree = turnroute_topology::Direction::all(3)
///     .filter(|&d| hex.neighbor(center, d).is_some())
///     .count();
/// assert_eq!(degree, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HexMesh {
    q: u16,
    r: u16,
}

impl HexMesh {
    /// Create a `Q × R` hexagonal rhombus.
    ///
    /// # Panics
    ///
    /// Panics if either extent is `< 2`.
    pub fn new(q: u16, r: u16) -> HexMesh {
        assert!(q >= 2 && r >= 2, "hex mesh needs extent >= 2 on both axes");
        HexMesh { q, r }
    }

    /// The node at axial coordinates `(q, r)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at_axial(&self, q: u16, r: u16) -> NodeId {
        assert!(q < self.q && r < self.r, "axial ({q}, {r}) out of range");
        NodeId(u32::from(r) * u32::from(self.q) + u32::from(q))
    }

    /// The axial coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn axial_of(&self, node: NodeId) -> (u16, u16) {
        assert!(node.index() < self.num_nodes(), "node {node} out of range");
        (
            (node.index() % usize::from(self.q)) as u16,
            (node.index() / usize::from(self.q)) as u16,
        )
    }

    /// Hexagonal distance between axial offsets.
    fn hex_distance(dq: i32, dr: i32) -> usize {
        ((dq.abs() + dr.abs() + (dq + dr).abs()) / 2) as usize
    }

    /// The axial move of a direction: `(dq, dr)`.
    fn delta(dir: Direction) -> (i32, i32) {
        let (dq, dr) = match dir.dim() {
            0 => (1, 0),  // A: east
            1 => (0, 1),  // B: south-east
            2 => (1, -1), // C: north-east
            _ => panic!("hex mesh has three axes"),
        };
        match dir.sign() {
            Sign::Plus => (dq, dr),
            Sign::Minus => (-dq, -dr),
        }
    }
}

impl Topology for HexMesh {
    fn num_dims(&self) -> usize {
        3
    }

    fn radix(&self, dim: usize) -> usize {
        match dim {
            0 => usize::from(self.q),
            1 => usize::from(self.r),
            // The derived diagonal spans q + r - 1 distinct values.
            2 => usize::from(self.q) + usize::from(self.r) - 1,
            _ => panic!("hex mesh has three axes"),
        }
    }

    fn num_nodes(&self) -> usize {
        usize::from(self.q) * usize::from(self.r)
    }

    fn has_wraparound(&self, dim: usize) -> bool {
        assert!(dim < 3, "hex mesh has three axes");
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        let (q, r) = self.axial_of(node);
        Coord::new(vec![q, r, q + r])
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        assert_eq!(coord.num_dims(), 3, "hex coordinates have three components");
        let (q, r) = (coord.get(0), coord.get(1));
        assert_eq!(coord.get(2), q + r, "third hex component must equal q + r");
        self.node_at_axial(q, r)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (q, r) = self.axial_of(node);
        let (dq, dr) = Self::delta(dir);
        let nq = i32::from(q) + dq;
        let nr = i32::from(r) + dr;
        if nq < 0 || nr < 0 || nq >= i32::from(self.q) || nr >= i32::from(self.r) {
            return None;
        }
        Some(self.node_at_axial(nq as u16, nr as u16))
    }

    fn is_wrap(&self, _node: NodeId, _dir: Direction) -> bool {
        false
    }

    fn min_hops(&self, a: NodeId, b: NodeId) -> usize {
        let (qa, ra) = self.axial_of(a);
        let (qb, rb) = self.axial_of(b);
        Self::hex_distance(i32::from(qb) - i32::from(qa), i32::from(rb) - i32::from(ra))
    }

    fn productive_dirs(&self, from: NodeId, to: NodeId) -> DirSet {
        let here = self.min_hops(from, to);
        let mut set = DirSet::empty();
        if here == 0 {
            return set;
        }
        for dir in Direction::all(3) {
            if let Some(next) = self.neighbor(from, dir) {
                if self.min_hops(next, to) < here {
                    set.insert(dir);
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axial_round_trip() {
        let hex = HexMesh::new(5, 4);
        for id in 0..hex.num_nodes() {
            let node = NodeId(id as u32);
            let (q, r) = hex.axial_of(node);
            assert_eq!(hex.node_at_axial(q, r), node);
            assert_eq!(hex.node_at(&hex.coord_of(node)), node);
        }
    }

    #[test]
    fn interior_nodes_have_six_neighbors_corners_fewer() {
        let hex = HexMesh::new(4, 4);
        let degree = |node: NodeId| {
            Direction::all(3)
                .filter(|&d| hex.neighbor(node, d).is_some())
                .count()
        };
        assert_eq!(degree(hex.node_at_axial(1, 1)), 6);
        // The (0,0) corner: +A, +B exist; -A, -B out of range; +C needs
        // r-1 (no), -C needs q-1 (no).
        assert_eq!(degree(hex.node_at_axial(0, 0)), 2);
        // The (Q-1, 0) corner: -A, +B, -C=(q-1, r+1) exist.
        assert_eq!(degree(hex.node_at_axial(3, 0)), 3);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let hex = HexMesh::new(4, 5);
        for id in 0..hex.num_nodes() {
            let node = NodeId(id as u32);
            for dir in Direction::all(3) {
                if let Some(next) = hex.neighbor(node, dir) {
                    assert_eq!(hex.neighbor(next, dir.opposite()), Some(node));
                    assert_eq!(hex.min_hops(node, next), 1);
                }
            }
        }
    }

    #[test]
    fn hex_distance_uses_diagonal_moves() {
        let hex = HexMesh::new(6, 6);
        let a = hex.node_at_axial(0, 3);
        let b = hex.node_at_axial(2, 0);
        // dq = +2, dr = -3: two +C moves and one -B move = 3 hops.
        assert_eq!(hex.min_hops(a, b), 3);
        // Same-direction offsets do not shortcut: dq = 2, dr = 2 -> 4.
        let c = hex.node_at_axial(2, 5);
        assert_eq!(hex.min_hops(a, c), 4);
    }

    #[test]
    fn productive_dirs_reduce_distance() {
        let hex = HexMesh::new(6, 6);
        for a in 0..hex.num_nodes() {
            let a = NodeId(a as u32);
            for b in 0..hex.num_nodes() {
                let b = NodeId(b as u32);
                let dist = hex.min_hops(a, b);
                let dirs = hex.productive_dirs(a, b);
                assert_eq!(dirs.is_empty(), a == b);
                for dir in dirs.iter() {
                    let next = hex.neighbor(a, dir).unwrap();
                    assert_eq!(hex.min_hops(next, b), dist - 1);
                }
            }
        }
    }

    #[test]
    fn channel_count() {
        // Q x R rhombus: A channels: (Q-1)*R pairs; B: Q*(R-1);
        // C: (Q-1)*(R-1); two unidirectional channels per pair.
        let hex = HexMesh::new(4, 5);
        let expected = 2 * (3 * 5 + 4 * 4 + 3 * 4);
        assert_eq!(hex.channels().len(), expected);
    }

    #[test]
    #[should_panic(expected = "third hex component")]
    fn node_at_rejects_inconsistent_coord() {
        let hex = HexMesh::new(4, 4);
        let _ = hex.node_at(&Coord::new(vec![1, 1, 3]));
    }
}
