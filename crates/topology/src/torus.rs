//! *k*-ary *n*-cube (torus) topology.

use crate::{Coord, DirSet, Direction, NodeId, Sign, Topology};

/// A *k*-ary *n*-cube: `k^n` nodes with modular (wraparound) neighbor
/// arithmetic in every dimension, giving the topology edge symmetry.
///
/// Requires `k ≥ 3`; for `k = 2` the two directions of a dimension would
/// denote the same physical channel pair — use
/// [`Hypercube`](crate::Hypercube) for that case, as the paper does.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Torus, Topology, Direction};
///
/// let torus = Torus::new(4, 2); // 4-ary 2-cube
/// let east_edge = torus.node_at_coords(&[3, 0]);
/// // Wraparound: east of (3,0) is (0,0).
/// assert_eq!(torus.neighbor(east_edge, Direction::EAST),
///            Some(torus.node_at_coords(&[0, 0])));
/// assert!(torus.is_wrap(east_edge, Direction::EAST));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Torus {
    k: u16,
    n: usize,
    strides: Vec<usize>,
    num_nodes: usize,
}

impl Torus {
    /// Create a *k*-ary *n*-cube.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3`, `n == 0`, `n > 16`, or the node count overflows
    /// `u32`.
    pub fn new(k: u16, n: usize) -> Torus {
        assert!(k >= 3, "torus radix must be >= 3 (use Hypercube for k = 2)");
        assert!(n >= 1, "torus needs at least one dimension");
        assert!(n <= 16, "at most 16 dimensions supported");
        let mut strides = Vec::with_capacity(n);
        let mut acc: usize = 1;
        for _ in 0..n {
            strides.push(acc);
            acc = acc
                .checked_mul(usize::from(k))
                .expect("node count overflow");
        }
        assert!(acc <= u32::MAX as usize, "node count must fit in u32");
        Torus {
            k,
            n,
            strides,
            num_nodes: acc,
        }
    }

    /// The radix `k` shared by every dimension.
    pub fn k(&self) -> usize {
        usize::from(self.k)
    }
}

impl Topology for Torus {
    fn num_dims(&self) -> usize {
        self.n
    }

    fn radix(&self, dim: usize) -> usize {
        assert!(dim < self.n, "dimension out of range");
        usize::from(self.k)
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn has_wraparound(&self, dim: usize) -> bool {
        assert!(dim < self.n, "dimension out of range");
        true
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        assert!(node.index() < self.num_nodes, "node {node} out of range");
        let k = usize::from(self.k);
        let mut rem = node.index();
        let comps = (0..self.n)
            .map(|_| {
                let c = (rem % k) as u16;
                rem /= k;
                c
            })
            .collect();
        Coord::new(comps)
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        assert_eq!(
            coord.num_dims(),
            self.n,
            "coordinate dimensionality mismatch"
        );
        let mut id = 0usize;
        for (dim, &c) in coord.as_slice().iter().enumerate() {
            assert!(
                c < self.k,
                "coordinate {coord} out of range in dimension {dim}"
            );
            id += usize::from(c) * self.strides[dim];
        }
        NodeId(id as u32)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let dim = dir.dim();
        assert!(dim < self.n, "direction {dir} out of range");
        let k = usize::from(self.k);
        let c = (node.index() / self.strides[dim]) % k;
        let next = match dir.sign() {
            Sign::Minus => (c + k - 1) % k,
            Sign::Plus => (c + 1) % k,
        };
        let base = node.index() - c * self.strides[dim];
        Some(NodeId((base + next * self.strides[dim]) as u32))
    }

    fn is_wrap(&self, node: NodeId, dir: Direction) -> bool {
        let dim = dir.dim();
        assert!(dim < self.n, "direction {dir} out of range");
        let k = usize::from(self.k);
        let c = (node.index() / self.strides[dim]) % k;
        match dir.sign() {
            Sign::Minus => c == 0,
            Sign::Plus => c == k - 1,
        }
    }

    fn min_hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ca, cb) = (self.coord_of(a), self.coord_of(b));
        let k = usize::from(self.k);
        (0..self.n)
            .map(|d| {
                let delta = usize::from(ca.get(d).abs_diff(cb.get(d)));
                delta.min(k - delta)
            })
            .sum()
    }

    fn productive_dirs(&self, from: NodeId, to: NodeId) -> DirSet {
        let (cf, ct) = (self.coord_of(from), self.coord_of(to));
        let k = usize::from(self.k);
        let mut set = DirSet::empty();
        for dim in 0..self.n {
            let f = usize::from(cf.get(dim));
            let t = usize::from(ct.get(dim));
            if f == t {
                continue;
            }
            let forward = (t + k - f) % k; // hops travelling Plus
            let backward = k - forward; // hops travelling Minus
            if forward <= backward {
                set.insert(Direction::new(dim, Sign::Plus));
            }
            if backward <= forward {
                set.insert(Direction::new(dim, Sign::Minus));
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_has_2n_channels() {
        let torus = Torus::new(4, 2);
        assert_eq!(torus.channels().len(), torus.num_nodes() * 4);
        for node in 0..torus.num_nodes() {
            for dir in Direction::all(2) {
                assert!(torus.neighbor(NodeId(node as u32), dir).is_some());
            }
        }
    }

    #[test]
    fn coord_round_trip() {
        let torus = Torus::new(5, 3);
        for id in 0..torus.num_nodes() {
            let node = NodeId(id as u32);
            assert_eq!(torus.node_at(&torus.coord_of(node)), node);
        }
    }

    #[test]
    fn wraparound_neighbors() {
        let torus = Torus::new(4, 2);
        let west_edge = torus.node_at_coords(&[0, 2]);
        assert_eq!(
            torus.neighbor(west_edge, Direction::WEST),
            Some(torus.node_at_coords(&[3, 2]))
        );
        assert!(torus.is_wrap(west_edge, Direction::WEST));
        assert!(!torus.is_wrap(west_edge, Direction::EAST));
        assert!(torus.has_wraparound(0));
    }

    #[test]
    fn min_hops_uses_wraparound() {
        let torus = Torus::new(8, 1);
        let a = torus.node_at_coords(&[0]);
        let b = torus.node_at_coords(&[6]);
        assert_eq!(torus.min_hops(a, b), 2); // wrap westwards: 0 -> 7 -> 6
    }

    #[test]
    fn productive_dirs_tie_allows_both() {
        let torus = Torus::new(4, 1);
        let a = torus.node_at_coords(&[0]);
        let b = torus.node_at_coords(&[2]); // distance 2 both ways
        let dirs = torus.productive_dirs(a, b);
        assert_eq!(dirs.len(), 2);
    }

    #[test]
    fn productive_dirs_prefers_short_way() {
        let torus = Torus::new(8, 2);
        let a = torus.node_at_coords(&[1, 0]);
        let b = torus.node_at_coords(&[7, 0]); // 2 hops west (wrap), 6 east
        assert_eq!(torus.productive_dirs(a, b), DirSet::single(Direction::WEST));
    }

    #[test]
    fn wrap_channel_flagged_in_enumeration() {
        let torus = Torus::new(4, 2);
        let wraps = torus.channels().iter().filter(|c| c.is_wrap()).count();
        // Per dimension: one wrap channel per row per direction = 4 rows * 2 dirs * 2 dims.
        assert_eq!(wraps, 16);
    }

    #[test]
    #[should_panic(expected = "use Hypercube")]
    fn rejects_k2() {
        let _ = Torus::new(2, 3);
    }
}
