//! Static fault patterns over a topology's links and nodes.
//!
//! A [`FaultSet`] is a snapshot of which unidirectional channels and which
//! nodes are out of service. It is the vocabulary shared by the fault-aware
//! routing adapters (which filter their offered directions against it), the
//! model-layer verifier (which checks that the surviving turn set stays
//! deadlock free), and the simulator's fault-injection schedules (which
//! produce one effective `FaultSet` per cycle).
//!
//! Failing a node fails every channel touching it: all channels leaving it,
//! all channels entering it from neighbors, and implicitly its local
//! injection/ejection service (the simulator handles the latter).

use crate::{Direction, NodeId, Topology};

/// A set of failed unidirectional links and failed nodes, indexed by the
/// topology's dense [`Topology::channel_slot`] numbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSet {
    num_dims: usize,
    /// Per-channel-slot failure flags (`channel_slot_count` entries).
    links: Vec<bool>,
    /// Per-node failure flags.
    nodes: Vec<bool>,
    failed_links: usize,
}

impl FaultSet {
    /// An all-healthy fault set sized for `topo`.
    pub fn new(topo: &dyn Topology) -> FaultSet {
        FaultSet {
            num_dims: topo.num_dims(),
            links: vec![false; topo.channel_slot_count()],
            nodes: vec![false; topo.num_nodes()],
            failed_links: 0,
        }
    }

    /// Mark the channel leaving `node` in `dir` as failed.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist in `topo`.
    pub fn fail_link(&mut self, topo: &dyn Topology, node: NodeId, dir: Direction) {
        assert!(
            topo.neighbor(node, dir).is_some(),
            "no channel at {node} {dir}"
        );
        let slot = topo.channel_slot(node, dir);
        if !self.links[slot] {
            self.links[slot] = true;
            self.failed_links += 1;
        }
    }

    /// Restore the channel leaving `node` in `dir`.
    pub fn heal_link(&mut self, topo: &dyn Topology, node: NodeId, dir: Direction) {
        let slot = topo.channel_slot(node, dir);
        if self.links[slot] {
            self.links[slot] = false;
            self.failed_links -= 1;
        }
    }

    /// Mark `node` as failed, failing every channel leaving or entering it.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for `topo`.
    pub fn fail_node(&mut self, topo: &dyn Topology, node: NodeId) {
        assert!(node.index() < self.nodes.len(), "no node {node}");
        self.nodes[node.index()] = true;
        for dir in Direction::all(self.num_dims) {
            if topo.neighbor(node, dir).is_some() {
                self.fail_link(topo, node, dir);
            }
            // The neighbor's channel *into* this node.
            if let Some(prev) = topo.neighbor(node, dir.opposite()) {
                self.fail_link(topo, prev, dir);
            }
        }
    }

    /// Whether the channel at `slot` (per [`Topology::channel_slot`]) is
    /// failed.
    #[inline]
    pub fn link_failed(&self, slot: usize) -> bool {
        self.links[slot]
    }

    /// Whether the channel leaving `node` in `dir` is failed.
    pub fn link_failed_at(&self, topo: &dyn Topology, node: NodeId, dir: Direction) -> bool {
        self.links[topo.channel_slot(node, dir)]
    }

    /// Whether `node` is failed.
    #[inline]
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.nodes[node.index()]
    }

    /// Whether nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.failed_links == 0 && !self.nodes.iter().any(|&n| n)
    }

    /// Number of failed channels (node failures count their incident
    /// channels).
    pub fn failed_link_count(&self) -> usize {
        self.failed_links
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.nodes.iter().filter(|&&n| n).count()
    }

    /// Channel slots currently failed, in increasing slot order.
    pub fn failed_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(slot, &f)| f.then_some(slot))
    }

    /// The channels of `topo` that survive this fault pattern — the
    /// vertices of the fault-degraded channel graph. A channel survives if
    /// its own slot is healthy and neither endpoint node is failed.
    pub fn surviving_channels(&self, topo: &dyn Topology) -> Vec<crate::Channel> {
        topo.channels()
            .into_iter()
            .filter(|ch| {
                !self.link_failed(topo.channel_slot(ch.src(), ch.dir()))
                    && !self.node_failed(ch.src())
                    && !self.node_failed(ch.dst())
            })
            .collect()
    }
}

impl std::fmt::Display for FaultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FaultSet({} links, {} nodes failed)",
            self.failed_links,
            self.failed_node_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mesh;

    #[test]
    fn starts_healthy() {
        let mesh = Mesh::new_2d(4, 4);
        let faults = FaultSet::new(&mesh);
        assert!(faults.is_empty());
        assert_eq!(faults.failed_link_count(), 0);
        assert_eq!(faults.failed_node_count(), 0);
        assert_eq!(faults.failed_slots().count(), 0);
    }

    #[test]
    fn fail_and_heal_link_round_trip() {
        let mesh = Mesh::new_2d(4, 4);
        let mut faults = FaultSet::new(&mesh);
        let node = mesh.node_at_coords(&[1, 1]);
        faults.fail_link(&mesh, node, Direction::EAST);
        assert!(faults.link_failed_at(&mesh, node, Direction::EAST));
        assert!(faults.link_failed(mesh.channel_slot(node, Direction::EAST)));
        assert_eq!(faults.failed_link_count(), 1);
        // Failing twice does not double count.
        faults.fail_link(&mesh, node, Direction::EAST);
        assert_eq!(faults.failed_link_count(), 1);
        faults.heal_link(&mesh, node, Direction::EAST);
        assert!(faults.is_empty());
    }

    #[test]
    fn node_failure_takes_out_incident_channels() {
        let mesh = Mesh::new_2d(4, 4);
        let mut faults = FaultSet::new(&mesh);
        let node = mesh.node_at_coords(&[1, 1]);
        faults.fail_node(&mesh, node);
        assert!(faults.node_failed(node));
        assert_eq!(faults.failed_node_count(), 1);
        // Interior node: 4 outgoing + 4 incoming channels.
        assert_eq!(faults.failed_link_count(), 8);
        for dir in Direction::all(2) {
            assert!(faults.link_failed_at(&mesh, node, dir));
            let prev = mesh.neighbor(node, dir.opposite()).unwrap();
            assert!(faults.link_failed_at(&mesh, prev, dir));
        }
        assert!(faults.to_string().contains("8 links, 1 nodes"));
    }

    #[test]
    fn corner_node_failure_counts_existing_channels_only() {
        let mesh = Mesh::new_2d(4, 4);
        let mut faults = FaultSet::new(&mesh);
        faults.fail_node(&mesh, mesh.node_at_coords(&[0, 0]));
        // Corner: 2 outgoing + 2 incoming.
        assert_eq!(faults.failed_link_count(), 4);
    }

    #[test]
    #[should_panic(expected = "no channel")]
    fn failing_nonexistent_link_panics() {
        let mesh = Mesh::new_2d(4, 4);
        let mut faults = FaultSet::new(&mesh);
        faults.fail_link(&mesh, mesh.node_at_coords(&[0, 0]), Direction::WEST);
    }
}
