//! Directions (a dimension plus a sign) and compact direction sets.

/// The sign of a direction along a dimension.
///
/// In the paper's 2D terminology, `Minus` along dimension 0 is *west* and
/// `Plus` along dimension 1 is *north*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    /// The negative direction (decreasing coordinate).
    Minus,
    /// The positive direction (increasing coordinate).
    Plus,
}

impl Sign {
    /// The opposite sign.
    #[inline]
    pub fn opposite(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Plus => Sign::Minus,
        }
    }

    /// `0` for `Minus`, `1` for `Plus` — used in direction indexing.
    #[inline]
    pub fn bit(self) -> usize {
        match self {
            Sign::Minus => 0,
            Sign::Plus => 1,
        }
    }
}

impl std::fmt::Display for Sign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sign::Minus => write!(f, "-"),
            Sign::Plus => write!(f, "+"),
        }
    }
}

/// A physical direction in an *n*-dimensional network: a dimension and a
/// sign. An *n*-dimensional node has up to `2n` outgoing directions.
///
/// Directions have a dense index `2 * dim + sign_bit` in `0..2n`, used for
/// [`DirSet`] membership and per-port tables.
///
/// # Example
///
/// ```
/// use turnroute_topology::{Direction, Sign};
///
/// let west = Direction::new(0, Sign::Minus);
/// assert_eq!(west, Direction::WEST);
/// assert_eq!(west.opposite(), Direction::EAST);
/// assert_eq!(west.index(), 0);
/// assert_eq!(Direction::from_index(1), Direction::EAST);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Direction {
    dim: u8,
    sign: Sign,
}

impl Direction {
    /// West: `-x`, the negative direction of dimension 0.
    pub const WEST: Direction = Direction {
        dim: 0,
        sign: Sign::Minus,
    };
    /// East: `+x`, the positive direction of dimension 0.
    pub const EAST: Direction = Direction {
        dim: 0,
        sign: Sign::Plus,
    };
    /// South: `-y`, the negative direction of dimension 1.
    pub const SOUTH: Direction = Direction {
        dim: 1,
        sign: Sign::Minus,
    };
    /// North: `+y`, the positive direction of dimension 1.
    pub const NORTH: Direction = Direction {
        dim: 1,
        sign: Sign::Plus,
    };

    /// Create a direction along `dim` with the given sign.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= 128` (direction indices are packed into a `u8`).
    pub fn new(dim: usize, sign: Sign) -> Direction {
        assert!(dim < 128, "dimension {dim} too large for Direction");
        Direction {
            dim: dim as u8,
            sign,
        }
    }

    /// The dimension this direction travels along.
    #[inline]
    pub fn dim(self) -> usize {
        usize::from(self.dim)
    }

    /// The sign of travel along the dimension.
    #[inline]
    pub fn sign(self) -> Sign {
        self.sign
    }

    /// The opposite direction (a 180-degree turn).
    #[inline]
    pub fn opposite(self) -> Direction {
        Direction {
            dim: self.dim,
            sign: self.sign.opposite(),
        }
    }

    /// The dense index `2 * dim + sign_bit` of this direction.
    #[inline]
    pub fn index(self) -> usize {
        2 * usize::from(self.dim) + self.sign.bit()
    }

    /// The direction with the given dense index.
    pub fn from_index(index: usize) -> Direction {
        let sign = if index.is_multiple_of(2) {
            Sign::Minus
        } else {
            Sign::Plus
        };
        Direction::new(index / 2, sign)
    }

    /// Iterate over all `2n` directions of an `n`-dimensional network, in
    /// index order.
    pub fn all(num_dims: usize) -> impl Iterator<Item = Direction> {
        (0..2 * num_dims).map(Direction::from_index)
    }

    /// The 2D compass name of this direction, if it has one.
    pub fn compass(self) -> Option<&'static str> {
        match (self.dim, self.sign) {
            (0, Sign::Minus) => Some("west"),
            (0, Sign::Plus) => Some("east"),
            (1, Sign::Minus) => Some("south"),
            (1, Sign::Plus) => Some("north"),
            _ => None,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.compass() {
            Some(name) => write!(f, "{name}"),
            None => write!(f, "{}d{}", self.sign, self.dim),
        }
    }
}

/// A compact set of [`Direction`]s, stored as a bitmask over direction
/// indices. Supports networks of up to 16 dimensions (32 directions).
///
/// # Example
///
/// ```
/// use turnroute_topology::{DirSet, Direction};
///
/// let mut set = DirSet::empty();
/// set.insert(Direction::EAST);
/// set.insert(Direction::NORTH);
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(Direction::EAST));
/// assert!(!set.contains(Direction::WEST));
/// let dirs: Vec<_> = set.iter().collect();
/// assert_eq!(dirs, vec![Direction::EAST, Direction::NORTH]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DirSet(u32);

impl DirSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> DirSet {
        DirSet(0)
    }

    /// The set of all `2n` directions of an `n`-dimensional network.
    ///
    /// # Panics
    ///
    /// Panics if `num_dims > 16`.
    pub fn all(num_dims: usize) -> DirSet {
        assert!(num_dims <= 16, "DirSet supports at most 16 dimensions");
        if num_dims == 16 {
            DirSet(u32::MAX)
        } else {
            DirSet((1u32 << (2 * num_dims)) - 1)
        }
    }

    /// A set containing a single direction.
    #[inline]
    pub fn single(dir: Direction) -> DirSet {
        DirSet(1 << dir.index())
    }

    /// Insert a direction.
    #[inline]
    pub fn insert(&mut self, dir: Direction) {
        self.0 |= 1 << dir.index();
    }

    /// Remove a direction.
    #[inline]
    pub fn remove(&mut self, dir: Direction) {
        self.0 &= !(1 << dir.index());
    }

    /// Whether the set contains `dir`.
    #[inline]
    pub fn contains(self, dir: Direction) -> bool {
        self.0 & (1 << dir.index()) != 0
    }

    /// Number of directions in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: DirSet) -> DirSet {
        DirSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: DirSet) -> DirSet {
        DirSet(self.0 & other.0)
    }

    /// Directions in `self` but not `other`.
    #[inline]
    pub fn difference(self, other: DirSet) -> DirSet {
        DirSet(self.0 & !other.0)
    }

    /// Whether every direction in `self` is also in `other`.
    #[inline]
    pub fn is_subset_of(self, other: DirSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over the directions in the set, in index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The raw bitmask (bit `i` set iff the direction with index `i` is in
    /// the set).
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl FromIterator<Direction> for DirSet {
    fn from_iter<I: IntoIterator<Item = Direction>>(iter: I) -> Self {
        let mut set = DirSet::empty();
        for d in iter {
            set.insert(d);
        }
        set
    }
}

impl IntoIterator for DirSet {
    type Item = Direction;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl Extend<Direction> for DirSet {
    fn extend<I: IntoIterator<Item = Direction>>(&mut self, iter: I) {
        for d in iter {
            self.insert(d);
        }
    }
}

impl std::fmt::Display for DirSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the directions of a [`DirSet`], produced by
/// [`DirSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter(u32);

impl Iterator for Iter {
    type Item = Direction;

    fn next(&mut self) -> Option<Direction> {
        if self.0 == 0 {
            return None;
        }
        let index = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(Direction::from_index(index))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compass_constants() {
        assert_eq!(Direction::WEST.to_string(), "west");
        assert_eq!(Direction::EAST.to_string(), "east");
        assert_eq!(Direction::SOUTH.to_string(), "south");
        assert_eq!(Direction::NORTH.to_string(), "north");
        assert_eq!(Direction::new(2, Sign::Plus).to_string(), "+d2");
    }

    #[test]
    fn index_round_trip() {
        for n in 1..=5 {
            for d in Direction::all(n) {
                assert_eq!(Direction::from_index(d.index()), d);
            }
        }
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::all(4) {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
            assert_eq!(d.opposite().dim(), d.dim());
        }
    }

    #[test]
    fn dirset_all_has_2n_members() {
        for n in 1..=16 {
            assert_eq!(DirSet::all(n).len(), 2 * n);
        }
    }

    #[test]
    fn dirset_operations() {
        let a: DirSet = [Direction::WEST, Direction::NORTH].into_iter().collect();
        let b: DirSet = [Direction::NORTH, Direction::EAST].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), DirSet::single(Direction::NORTH));
        assert_eq!(a.difference(b), DirSet::single(Direction::WEST));
        assert!(DirSet::single(Direction::NORTH).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn dirset_insert_remove() {
        let mut s = DirSet::empty();
        assert!(s.is_empty());
        s.insert(Direction::SOUTH);
        assert!(s.contains(Direction::SOUTH));
        s.remove(Direction::SOUTH);
        assert!(s.is_empty());
        // Removing an absent member is a no-op.
        s.remove(Direction::EAST);
        assert!(s.is_empty());
    }

    #[test]
    fn dirset_iter_is_sorted_and_exact() {
        let s = DirSet::all(3);
        let v: Vec<usize> = s.iter().map(Direction::index).collect();
        assert_eq!(v, (0..6).collect::<Vec<_>>());
        assert_eq!(s.iter().len(), 6);
    }

    #[test]
    fn dirset_display() {
        let s: DirSet = [Direction::WEST, Direction::EAST].into_iter().collect();
        assert_eq!(s.to_string(), "{west, east}");
        assert_eq!(DirSet::empty().to_string(), "{}");
    }

    #[test]
    fn dirset_extend() {
        let mut s = DirSet::empty();
        s.extend(Direction::all(2));
        assert_eq!(s, DirSet::all(2));
    }
}
