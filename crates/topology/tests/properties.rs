//! Randomized tests for topology invariants (seeded, deterministic).

use turnroute_rng::{Rng, SeedableRng, StdRng};
use turnroute_topology::{Coord, Direction, HexMesh, Hypercube, Mesh, NodeId, Topology, Torus};

const CASES: usize = 128;

fn random_mesh(rng: &mut StdRng) -> Mesh {
    let ndims = rng.gen_range(1usize..4);
    Mesh::new(
        (0..ndims)
            .map(|_| rng.gen_range(2u16..8))
            .collect::<Vec<_>>(),
    )
}

fn random_torus(rng: &mut StdRng) -> Torus {
    Torus::new(rng.gen_range(3u16..8), rng.gen_range(1usize..4))
}

fn random_node(rng: &mut StdRng, topo: &dyn Topology) -> NodeId {
    NodeId(rng.gen_range(0u32..topo.num_nodes() as u32))
}

#[test]
fn mesh_coord_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x701);
    for _ in 0..CASES {
        let mesh = random_mesh(&mut rng);
        let node = random_node(&mut rng, &mesh);
        assert_eq!(mesh.node_at(&mesh.coord_of(node)), node);
    }
}

#[test]
fn torus_coord_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x702);
    for _ in 0..CASES {
        let torus = random_torus(&mut rng);
        let node = random_node(&mut rng, &torus);
        assert_eq!(torus.node_at(&torus.coord_of(node)), node);
    }
}

#[test]
fn mesh_neighbor_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x703);
    for _ in 0..CASES {
        let mesh = random_mesh(&mut rng);
        let node = random_node(&mut rng, &mesh);
        for dir in Direction::all(mesh.num_dims()) {
            if let Some(next) = mesh.neighbor(node, dir) {
                assert_eq!(mesh.neighbor(next, dir.opposite()), Some(node));
                assert_eq!(mesh.min_hops(node, next), 1);
            }
        }
    }
}

#[test]
fn torus_neighbor_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x704);
    for _ in 0..CASES {
        let torus = random_torus(&mut rng);
        let node = random_node(&mut rng, &torus);
        for dir in Direction::all(torus.num_dims()) {
            let next = torus
                .neighbor(node, dir)
                .expect("torus channels always exist");
            assert_eq!(torus.neighbor(next, dir.opposite()), Some(node));
        }
    }
}

#[test]
fn productive_dirs_reduce_distance() {
    let mut rng = StdRng::seed_from_u64(0x705);
    for _ in 0..CASES {
        let mesh = random_mesh(&mut rng);
        let from = random_node(&mut rng, &mesh);
        let to = random_node(&mut rng, &mesh);
        let dist = mesh.min_hops(from, to);
        for dir in mesh.productive_dirs(from, to).iter() {
            let next = mesh.neighbor(from, dir).expect("productive channel exists");
            assert_eq!(mesh.min_hops(next, to), dist - 1);
        }
        // Unproductive existing channels do not reduce distance.
        for dir in Direction::all(mesh.num_dims()) {
            if !mesh.productive_dirs(from, to).contains(dir) {
                if let Some(next) = mesh.neighbor(from, dir) {
                    assert!(mesh.min_hops(next, to) >= dist);
                }
            }
        }
    }
}

#[test]
fn torus_productive_dirs_reduce_distance() {
    let mut rng = StdRng::seed_from_u64(0x706);
    for _ in 0..CASES {
        let torus = random_torus(&mut rng);
        let from = random_node(&mut rng, &torus);
        let to = random_node(&mut rng, &torus);
        let dist = torus.min_hops(from, to);
        for dir in torus.productive_dirs(from, to).iter() {
            let next = torus
                .neighbor(from, dir)
                .expect("torus channels always exist");
            assert_eq!(torus.min_hops(next, to), dist - 1);
        }
    }
}

#[test]
fn hypercube_matches_k2_mesh_distances() {
    let mut rng = StdRng::seed_from_u64(0x707);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..8);
        let cube = Hypercube::new(n);
        let mesh = Mesh::new_cubic(2, n);
        let x = random_node(&mut rng, &cube);
        let y = random_node(&mut rng, &cube);
        assert_eq!(cube.min_hops(x, y), mesh.min_hops(x, y));
        assert_eq!(cube.coord_of(x), mesh.coord_of(x));
        for dir in Direction::all(n) {
            assert_eq!(cube.neighbor(x, dir), mesh.neighbor(x, dir));
        }
    }
}

#[test]
fn manhattan_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0x708);
    for _ in 0..CASES {
        let ndims = rng.gen_range(1usize..4);
        let mesh = Mesh::new(
            (0..ndims)
                .map(|_| rng.gen_range(2u16..6))
                .collect::<Vec<_>>(),
        );
        let x = random_node(&mut rng, &mesh);
        let y = random_node(&mut rng, &mesh);
        let z = random_node(&mut rng, &mesh);
        assert!(mesh.min_hops(x, z) <= mesh.min_hops(x, y) + mesh.min_hops(y, z));
    }
}

#[test]
fn hex_mesh_invariants() {
    let mut rng = StdRng::seed_from_u64(0x709);
    for _ in 0..CASES {
        let hex = HexMesh::new(rng.gen_range(2u16..8), rng.gen_range(2u16..8));
        let x = random_node(&mut rng, &hex);
        let y = random_node(&mut rng, &hex);
        // Distance is a metric: symmetric, zero iff equal.
        assert_eq!(hex.min_hops(x, y), hex.min_hops(y, x));
        assert_eq!(hex.min_hops(x, y) == 0, x == y);
        // Neighbors are mutual and at distance 1.
        for dir in Direction::all(3) {
            if let Some(next) = hex.neighbor(x, dir) {
                assert_eq!(hex.neighbor(next, dir.opposite()), Some(x));
                assert_eq!(hex.min_hops(x, next), 1);
            }
        }
        // Productive moves reduce distance by exactly one.
        let dist = hex.min_hops(x, y);
        for dir in hex.productive_dirs(x, y).iter() {
            let next = hex.neighbor(x, dir).expect("productive channel exists");
            assert_eq!(hex.min_hops(next, y), dist - 1);
        }
        // Coordinate round trip.
        assert_eq!(hex.node_at(&hex.coord_of(x)), x);
    }
}

#[test]
fn hex_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0x70A);
    for _ in 0..CASES {
        let hex = HexMesh::new(rng.gen_range(2u16..7), rng.gen_range(2u16..7));
        let x = random_node(&mut rng, &hex);
        let y = random_node(&mut rng, &hex);
        let z = random_node(&mut rng, &hex);
        assert!(hex.min_hops(x, z) <= hex.min_hops(x, y) + hex.min_hops(y, z));
    }
}

#[test]
fn coord_manhattan_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x70B);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..5);
        let a: Vec<u16> = (0..len).map(|_| rng.gen_range(0u16..16)).collect();
        let b: Vec<u16> = (0..len).map(|_| rng.gen_range(0u16..16)).collect();
        let ca = Coord::new(a);
        let cb = Coord::new(b);
        assert_eq!(ca.manhattan(&cb), cb.manhattan(&ca));
    }
}
