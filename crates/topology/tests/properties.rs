//! Property-based tests for topology invariants.

use proptest::prelude::*;
use turnroute_topology::{Coord, Direction, HexMesh, Hypercube, Mesh, NodeId, Topology, Torus};

fn arb_mesh() -> impl Strategy<Value = Mesh> {
    proptest::collection::vec(2u16..8, 1..4).prop_map(Mesh::new)
}

fn arb_torus() -> impl Strategy<Value = Torus> {
    (3u16..8, 1usize..4).prop_map(|(k, n)| Torus::new(k, n))
}

proptest! {
    #[test]
    fn mesh_coord_round_trip(mesh in arb_mesh(), seed in any::<u32>()) {
        let node = NodeId(seed % mesh.num_nodes() as u32);
        prop_assert_eq!(mesh.node_at(&mesh.coord_of(node)), node);
    }

    #[test]
    fn torus_coord_round_trip(torus in arb_torus(), seed in any::<u32>()) {
        let node = NodeId(seed % torus.num_nodes() as u32);
        prop_assert_eq!(torus.node_at(&torus.coord_of(node)), node);
    }

    #[test]
    fn mesh_neighbor_is_symmetric(mesh in arb_mesh(), seed in any::<u32>()) {
        let node = NodeId(seed % mesh.num_nodes() as u32);
        for dir in Direction::all(mesh.num_dims()) {
            if let Some(next) = mesh.neighbor(node, dir) {
                prop_assert_eq!(mesh.neighbor(next, dir.opposite()), Some(node));
                prop_assert_eq!(mesh.min_hops(node, next), 1);
            }
        }
    }

    #[test]
    fn torus_neighbor_is_symmetric(torus in arb_torus(), seed in any::<u32>()) {
        let node = NodeId(seed % torus.num_nodes() as u32);
        for dir in Direction::all(torus.num_dims()) {
            let next = torus.neighbor(node, dir).expect("torus channels always exist");
            prop_assert_eq!(torus.neighbor(next, dir.opposite()), Some(node));
        }
    }

    #[test]
    fn productive_dirs_reduce_distance(mesh in arb_mesh(), a in any::<u32>(), b in any::<u32>()) {
        let from = NodeId(a % mesh.num_nodes() as u32);
        let to = NodeId(b % mesh.num_nodes() as u32);
        let dist = mesh.min_hops(from, to);
        for dir in mesh.productive_dirs(from, to).iter() {
            let next = mesh.neighbor(from, dir).expect("productive channel exists");
            prop_assert_eq!(mesh.min_hops(next, to), dist - 1);
        }
        // Unproductive existing channels do not reduce distance.
        for dir in Direction::all(mesh.num_dims()) {
            if !mesh.productive_dirs(from, to).contains(dir) {
                if let Some(next) = mesh.neighbor(from, dir) {
                    prop_assert!(mesh.min_hops(next, to) >= dist);
                }
            }
        }
    }

    #[test]
    fn torus_productive_dirs_reduce_distance(torus in arb_torus(), a in any::<u32>(), b in any::<u32>()) {
        let from = NodeId(a % torus.num_nodes() as u32);
        let to = NodeId(b % torus.num_nodes() as u32);
        let dist = torus.min_hops(from, to);
        for dir in torus.productive_dirs(from, to).iter() {
            let next = torus.neighbor(from, dir).expect("torus channels always exist");
            prop_assert_eq!(torus.min_hops(next, to), dist - 1);
        }
    }

    #[test]
    fn hypercube_matches_k2_mesh_distances(n in 1usize..8, a in any::<u32>(), b in any::<u32>()) {
        let cube = Hypercube::new(n);
        let mesh = Mesh::new_cubic(2, n);
        let x = NodeId(a % cube.num_nodes() as u32);
        let y = NodeId(b % cube.num_nodes() as u32);
        prop_assert_eq!(cube.min_hops(x, y), mesh.min_hops(x, y));
        prop_assert_eq!(cube.coord_of(x), mesh.coord_of(x));
        for dir in Direction::all(n) {
            prop_assert_eq!(cube.neighbor(x, dir), mesh.neighbor(x, dir));
        }
    }

    #[test]
    fn manhattan_triangle_inequality(
        dims in proptest::collection::vec(2u16..6, 1..4),
        a in any::<u32>(), b in any::<u32>(), c in any::<u32>()
    ) {
        let mesh = Mesh::new(dims);
        let total = mesh.num_nodes() as u32;
        let (x, y, z) = (NodeId(a % total), NodeId(b % total), NodeId(c % total));
        prop_assert!(mesh.min_hops(x, z) <= mesh.min_hops(x, y) + mesh.min_hops(y, z));
    }

    #[test]
    fn hex_mesh_invariants(q in 2u16..8, r in 2u16..8, a in any::<u32>(), b in any::<u32>()) {
        let hex = HexMesh::new(q, r);
        let total = hex.num_nodes() as u32;
        let (x, y) = (NodeId(a % total), NodeId(b % total));
        // Distance is a metric: symmetric, zero iff equal.
        prop_assert_eq!(hex.min_hops(x, y), hex.min_hops(y, x));
        prop_assert_eq!(hex.min_hops(x, y) == 0, x == y);
        // Neighbors are mutual and at distance 1.
        for dir in Direction::all(3) {
            if let Some(next) = hex.neighbor(x, dir) {
                prop_assert_eq!(hex.neighbor(next, dir.opposite()), Some(x));
                prop_assert_eq!(hex.min_hops(x, next), 1);
            }
        }
        // Productive moves reduce distance by exactly one.
        let dist = hex.min_hops(x, y);
        for dir in hex.productive_dirs(x, y).iter() {
            let next = hex.neighbor(x, dir).expect("productive channel exists");
            prop_assert_eq!(hex.min_hops(next, y), dist - 1);
        }
        // Coordinate round trip.
        prop_assert_eq!(hex.node_at(&hex.coord_of(x)), x);
    }

    #[test]
    fn hex_triangle_inequality(q in 2u16..7, r in 2u16..7, a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        let hex = HexMesh::new(q, r);
        let total = hex.num_nodes() as u32;
        let (x, y, z) = (NodeId(a % total), NodeId(b % total), NodeId(c % total));
        prop_assert!(hex.min_hops(x, z) <= hex.min_hops(x, y) + hex.min_hops(y, z));
    }

    #[test]
    fn coord_manhattan_symmetric(
        a in proptest::collection::vec(0u16..16, 1..5),
        b in proptest::collection::vec(0u16..16, 1..5)
    ) {
        prop_assume!(a.len() == b.len());
        let ca = Coord::new(a);
        let cb = Coord::new(b);
        prop_assert_eq!(ca.manhattan(&cb), cb.manhattan(&ca));
    }
}
