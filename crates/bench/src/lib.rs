//! Benchmark crate: all content lives in `benches/` (one criterion target
//! per paper figure/table plus microbenchmarks). This library only hosts
//! small shared helpers for the bench targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use turnroute_experiments::Scale;

/// The scale bench targets run simulations at — small enough that a full
/// `cargo bench` finishes in minutes.
pub const BENCH_SCALE: Scale = Scale::Quick;

/// A single mid-range offered load (flits/node/cycle) used by the
/// per-figure bench targets so they measure one representative run, not a
/// whole sweep.
pub const BENCH_RATE: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_quick() {
        assert_eq!(BENCH_SCALE, Scale::Quick);
        assert!(BENCH_RATE.is_sign_positive() && BENCH_RATE.is_finite());
    }
}
