//! Benchmark crate: all content lives in `benches/` (one target per paper
//! figure/table plus microbenchmarks). This library hosts shared
//! constants and [`harness`], a small self-contained timing harness with
//! a criterion-shaped API so the bench targets build fully offline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use turnroute_experiments::Scale;

/// The scale bench targets run simulations at — small enough that a full
/// `cargo bench` finishes in minutes.
pub const BENCH_SCALE: Scale = Scale::Quick;

/// A single mid-range offered load (flits/node/cycle) used by the
/// per-figure bench targets so they measure one representative run, not a
/// whole sweep.
pub const BENCH_RATE: f64 = 0.10;

/// Minimal timing harness exposing the slice of the criterion API the
/// bench targets use: [`harness::Criterion`], benchmark groups,
/// [`harness::black_box`], plus the [`criterion_group!`] and
/// [`criterion_main!`] macros at the crate root. Each benchmark prints a
/// median and minimum ns/iter; pass a substring argument to run a subset
/// (`cargo bench -p turnroute-bench --bench sim_core -- heavy`).
pub mod harness {
    use std::time::{Duration, Instant};

    /// Opaque value barrier preventing the optimizer from deleting the
    /// measured computation.
    pub fn black_box<T>(x: T) -> T {
        std::hint::black_box(x)
    }

    /// Throughput annotation for a benchmark group.
    #[derive(Debug, Clone, Copy)]
    pub enum Throughput {
        /// The measured function processes this many logical elements per
        /// iteration; results additionally print elements/second.
        Elements(u64),
    }

    /// Top-level benchmark driver; times functions and prints results.
    pub struct Criterion {
        filter: Option<String>,
        sample_size: usize,
    }

    impl Default for Criterion {
        fn default() -> Criterion {
            // `cargo bench` passes `--bench`; the first non-flag argument
            // is treated as a benchmark-name substring filter.
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            Criterion {
                filter,
                sample_size: 15,
            }
        }
    }

    impl Criterion {
        /// Benchmark a single function under `name`.
        pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
            run_one(self, name, None, self.sample_size, f);
            self
        }

        /// Start a named group of related benchmarks.
        pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
            BenchmarkGroup {
                name: name.to_string(),
                throughput: None,
                sample_size: None,
                c: self,
            }
        }
    }

    /// A set of benchmarks sharing a name prefix and settings.
    pub struct BenchmarkGroup<'a> {
        c: &'a mut Criterion,
        name: String,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
    }

    impl BenchmarkGroup<'_> {
        /// Use `n` timing samples for benchmarks in this group.
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.sample_size = Some(n.max(3));
            self
        }

        /// Annotate per-iteration throughput.
        pub fn throughput(&mut self, t: Throughput) -> &mut Self {
            self.throughput = Some(t);
            self
        }

        /// Benchmark one function within the group.
        pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
            let full = format!("{}/{}", self.name, name);
            let samples = self.sample_size.unwrap_or(self.c.sample_size);
            run_one(self.c, &full, self.throughput, samples, f);
            self
        }

        /// End the group (kept for criterion API parity; prints nothing).
        pub fn finish(self) {}
    }

    /// Passed to the measured closure; call [`Bencher::iter`] with the
    /// code under test.
    pub struct Bencher {
        iters: u64,
        elapsed: Duration,
    }

    impl Bencher {
        /// Time `f` over this sample's iteration budget.
        pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            self.elapsed = start.elapsed();
        }
    }

    fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.elapsed
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        c: &Criterion,
        name: &str,
        throughput: Option<Throughput>,
        samples: usize,
        mut f: F,
    ) {
        if let Some(filter) = &c.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup doubles as calibration: grow the batch until one batch
        // runs >= 2 ms, keeping per-sample timer noise under ~0.1%.
        let mut iters = 1u64;
        loop {
            let d = time_batch(&mut f, iters);
            if d >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| time_batch(&mut f, iters).as_secs_f64() * 1e9 / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let extra = match throughput {
            // median is ns/iter, so elements per second = n / median * 1e9.
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / median * 1e3)
            }
            None => String::new(),
        };
        println!(
            "{name:<55} {:>13} ns/iter (min {:>13}){extra}",
            group_digits(median.round() as u64),
            group_digits(min.round() as u64),
        );
    }

    fn group_digits(v: u64) -> String {
        let s = v.to_string();
        let mut out = String::with_capacity(s.len() + s.len() / 3);
        for (i, ch) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(ch);
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn digit_grouping() {
            assert_eq!(group_digits(0), "0");
            assert_eq!(group_digits(999), "999");
            assert_eq!(group_digits(1_000), "1,000");
            assert_eq!(group_digits(1_234_567), "1,234,567");
        }

        #[test]
        fn bencher_runs_requested_iterations() {
            let mut b = Bencher {
                iters: 10,
                elapsed: Duration::ZERO,
            };
            let mut n = 0u64;
            b.iter(|| {
                n += 1;
                n
            });
            assert_eq!(n, 10);
        }
    }
}

/// Define a function running several benchmark targets in order
/// (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running the given groups (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_quick() {
        assert_eq!(BENCH_SCALE, Scale::Quick);
        assert!(BENCH_RATE.is_sign_positive() && BENCH_RATE.is_finite());
    }
}
