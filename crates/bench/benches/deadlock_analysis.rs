//! Benchmarks for the deadlock-analysis machinery: Figures 2–4 census
//! (`fig02_04_turn_census`), Theorems 1 & 6 counting (`thm1_6_counts`),
//! Figures 6–8 numbering verification (`fig06_08_numbering`), and CDG
//! construction/cycle search at paper scale.

use turnroute_bench::harness::{black_box, Criterion};
use turnroute_bench::{criterion_group, criterion_main};
use turnroute_experiments::theorems;
use turnroute_model::cycle::two_turn_census;
use turnroute_model::numbering::{
    negative_first_numbering, verify_monotonic, west_first_numbering, Monotonic,
};
use turnroute_model::{presets, Cdg, TurnSet};
use turnroute_routing::{mesh2d, ndmesh, RoutingMode};
use turnroute_topology::Mesh;

fn fig02_04_turn_census(c: &mut Criterion) {
    let mesh = Mesh::new_2d(8, 8);
    c.bench_function("fig02_04_turn_census/8x8", |b| {
        b.iter(|| {
            let census = two_turn_census(black_box(&mesh));
            assert_eq!(census.deadlock_free(), 12);
            black_box(census.total())
        })
    });
}

fn thm1_6_counts(c: &mut Criterion) {
    c.bench_function("thm1_6_counts/n2..5", |b| {
        b.iter(|| {
            let rows = theorems::verify(black_box(5));
            assert!(rows.iter().all(|r| r.sufficient && r.necessary));
            black_box(rows.len())
        })
    });
}

fn fig06_08_numbering(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let numbers = west_first_numbering(&mesh);
    c.bench_function("fig06_08_numbering/west_first_16x16", |b| {
        b.iter(|| {
            verify_monotonic(&mesh, &wf, black_box(&numbers), Monotonic::Decreasing)
                .expect("Theorem 2")
        })
    });
    let nf = ndmesh::negative_first(2, RoutingMode::Minimal);
    let numbers = negative_first_numbering(&mesh);
    c.bench_function("fig06_08_numbering/negative_first_16x16", |b| {
        b.iter(|| {
            verify_monotonic(&mesh, &nf, black_box(&numbers), Monotonic::Increasing)
                .expect("Theorem 5")
        })
    });
}

fn cdg_construction(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    c.bench_function("cdg/from_turn_set/16x16", |b| {
        b.iter(|| {
            let cdg = Cdg::from_turn_set(&mesh, &presets::west_first_turns());
            assert!(cdg.is_acyclic());
            black_box(cdg.num_edges())
        })
    });
    c.bench_function("cdg/find_cycle_cyclic/16x16", |b| {
        let cdg = Cdg::from_turn_set(&mesh, &TurnSet::all_ninety(2));
        b.iter(|| black_box(cdg.find_cycle()).is_some())
    });
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    c.bench_function("cdg/from_routing/16x16", |b| {
        b.iter(|| {
            let cdg = Cdg::from_routing(&mesh, &wf);
            assert!(cdg.is_acyclic());
            black_box(cdg.num_edges())
        })
    });
}

criterion_group!(
    benches,
    fig02_04_turn_census,
    thm1_6_counts,
    fig06_08_numbering,
    cdg_construction
);
criterion_main!(benches);
