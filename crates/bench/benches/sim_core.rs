//! Simulator-core benchmarks: cycles per second of the wormhole engine
//! under light and heavy load, and injection/arbitration overhead.

use turnroute_bench::harness::{black_box, Criterion, Throughput};
use turnroute_bench::{criterion_group, criterion_main};
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::{Sim, SimConfig};
use turnroute_topology::Mesh;
use turnroute_traffic::Uniform;

fn engine_cycles(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("sim_core/cycles");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    for (label, rate) in [("light_load", 0.02), ("heavy_load", 0.30)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::builder().injection_rate(rate).seed(1).build();
                let mut sim = Sim::new(&mesh, &wf, &pattern, cfg);
                for _ in 0..CYCLES {
                    sim.step();
                }
                black_box(sim.now())
            })
        });
    }
    group.finish();
}

/// An enabled observer with every hook left as the trait's empty
/// default: the price of *attaching anything* — hook dispatch plus the
/// argument plumbing the `NoopObserver` path compiles away — with zero
/// collector work on top. This is the floor the `heavy_load_frames`
/// delta is measured against.
struct ArmedNoop;

impl turnroute_sim::SimObserver for ArmedNoop {}

/// Same heavy-load loop with the armed-but-empty observer attached.
fn engine_cycles_armed_noop(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("sim_core/cycles");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("heavy_load_armed_noop", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder().injection_rate(0.30).seed(1).build();
            let mut sim = Sim::with_observer(&mesh, &wf, &pattern, cfg, ArmedNoop);
            for _ in 0..CYCLES {
                sim.step();
            }
            black_box(sim.now())
        })
    });
    group.finish();
}

/// Same heavy-load loop with a [`turnroute_sim::FrameCollector`] sealing
/// telemetry frames at a 1k-cycle cadence: the streaming-observability
/// overhead `turnscope` adds when frames are on. The windowed counters
/// are O(1) per hook and seals are rare, so the delta over
/// `heavy_load_armed_noop` — the collector's own work — is the number to
/// watch (see `ci/bench_note.md`); the armed floor itself is the
/// pre-existing price of attaching any observer.
fn engine_cycles_frames(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("sim_core/cycles");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("heavy_load_frames", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder().injection_rate(0.30).seed(1).build();
            let layout = turnroute_sim::obs::ChannelLayout::for_topology(&mesh);
            let obs = turnroute_sim::FrameCollector::new(layout.num_channels, 1_000);
            let mut sim = Sim::with_observer(&mesh, &wf, &pattern, cfg, obs);
            for _ in 0..CYCLES {
                sim.step();
            }
            assert_eq!(sim.observer().frames().len(), 2);
            black_box(sim.now())
        })
    });
    group.finish();
}

/// Same heavy-load loop with the invariant sanitizer attached: the price
/// of the full shadow model (per-flit conservation, buffer accounting,
/// bandwidth checks), paid only when an observer is explicitly supplied.
fn engine_cycles_sanitized(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("sim_core/cycles");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("heavy_load_sanitized", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder().injection_rate(0.30).seed(1).build();
            let obs = turnroute_sim::InvariantObserver::new(
                turnroute_sim::obs::ChannelLayout::for_topology(&mesh),
                cfg.buffer_depth,
            );
            let mut sim = Sim::with_observer(&mesh, &wf, &pattern, cfg, obs);
            for _ in 0..CYCLES {
                sim.step();
            }
            assert!(sim.observer().is_clean());
            black_box(sim.now())
        })
    });
    group.finish();
}

/// Same heavy-load window driven through the online healing engine with
/// an *empty* storm: the price of having turnheal attached when nothing
/// fails — the baseline epoch-0 proof plus the per-step transition scan.
fn engine_cycles_healing(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("sim_core/cycles");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("heavy_load_healing_idle", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder()
                .injection_rate(0.30)
                .seed(1)
                .warmup_cycles(0)
                .measure_cycles(CYCLES)
                .drain_cycles(0)
                .build();
            let (heal, _) = turnroute_analysis::heal::run_healing(
                &mesh,
                &wf,
                &pattern,
                cfg,
                turnroute_sim::NoopObserver,
                &turnroute_analysis::heal::HealOptions::default(),
            );
            assert!(heal.certified());
            black_box(heal.epochs.len())
        })
    });
    group.finish();
}

fn single_packet_flight(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    c.bench_function("sim_core/single_packet_corner_to_corner", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder().injection_rate(0.0).build();
            let mut sim = Sim::new(&mesh, &wf, &pattern, cfg);
            let src = turnroute_topology::NodeId(0);
            let dst = turnroute_topology::NodeId(255);
            sim.inject_packet(src, dst, 200);
            assert!(sim.run_until_idle(2_000));
            black_box(sim.now())
        })
    });
}

fn vc_engine_cycles(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let alg = turnroute_vc::DoubleYAdaptive::new();
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("sim_core/vc_cycles");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("double_y_heavy_load", |b| {
        b.iter(|| {
            let cfg = SimConfig::builder().injection_rate(0.30).seed(1).build();
            let mut sim = turnroute_vc::VcSim::new(&mesh, &alg, &pattern, cfg);
            for _ in 0..CYCLES {
                sim.step();
            }
            black_box(sim.now())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    engine_cycles,
    engine_cycles_armed_noop,
    engine_cycles_frames,
    engine_cycles_sanitized,
    engine_cycles_healing,
    single_packet_flight,
    vc_engine_cycles
);
criterion_main!(benches);
