//! Benchmarks for the analytical tables: Figure 1 scenario
//! (`fig01_deadlock`), example paths (`fig05_09_10_paths`), Section 3.4
//! adaptiveness (`sec34_adaptiveness`), the Section 5 p-cube table
//! (`sec5_pcube_table`), and the Section 6 path-length claims
//! (`sec6_claims`).

use turnroute_bench::harness::{black_box, Criterion};
use turnroute_bench::{criterion_group, criterion_main};
use turnroute_experiments::claims::average_path_length;
use turnroute_experiments::fig1::{self, TurnLeft};
use turnroute_experiments::{adaptiveness_exp, paths, pcube_table};
use turnroute_topology::{Hypercube, Mesh};
use turnroute_traffic::{MeshTranspose, ReverseFlip, Uniform};

fn fig01_deadlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_deadlock");
    group.sample_size(20);
    group.bench_function("four_packet_scenario", |b| {
        b.iter(|| {
            let report = fig1::run_scenario(&TurnLeft::new());
            assert!(report.deadlocked);
            black_box(report.end_cycle)
        })
    });
    group.finish();
}

fn fig05_09_10_paths(c: &mut Criterion) {
    c.bench_function("fig05_09_10_paths/render", |b| {
        b.iter(|| black_box(paths::render()).len())
    });
}

fn sec34_adaptiveness(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec34_adaptiveness");
    group.sample_size(10);
    group.bench_function("analyze_8x8", |b| {
        b.iter(|| {
            let rows = adaptiveness_exp::analyze(black_box(8));
            assert!(rows.iter().all(|r| r.formula_verified));
            black_box(rows.len())
        })
    });
    group.finish();
}

fn sec5_pcube_table(c: &mut Criterion) {
    c.bench_function("sec5_pcube_table/table", |b| {
        b.iter(|| black_box(pcube_table::table()).len())
    });
    c.bench_function("sec5_pcube_table/render_with_path_count", |b| {
        b.iter(|| black_box(pcube_table::render()).len())
    });
}

fn sec6_claims(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let cube = Hypercube::new(8);
    c.bench_function("sec6_claims/path_lengths", |b| {
        b.iter(|| {
            let mu = average_path_length(&mesh, &Uniform::new(), 1);
            let mt = average_path_length(&mesh, &MeshTranspose::new(), 1);
            let cu = average_path_length(&cube, &Uniform::new(), 1);
            let cr = average_path_length(&cube, &ReverseFlip::new(), 1);
            black_box((mu, mt, cu, cr))
        })
    });
}

criterion_group!(
    benches,
    fig01_deadlock,
    fig05_09_10_paths,
    sec34_adaptiveness,
    sec5_pcube_table,
    sec6_claims
);
criterion_main!(benches);
