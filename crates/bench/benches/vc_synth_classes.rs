//! Benchmarks pinning the cost of the N-class virtual-channel
//! generalization and the synthesizer:
//!
//! * `vc_synth_classes/double_y_direct` — the wormhole VC engine running
//!   the hand-coded double-y function through the generalized N-class
//!   slot arithmetic (the hot path the two-class code used to hard-code);
//! * `vc_synth_classes/double_y_tabulated` — the same workload through a
//!   [`TableVcRouting`] snapshot, the form synthesized escape/adaptive
//!   assignments arrive in;
//! * `vc_synth_classes/synthesize_mesh4x4` — a full synthesis +
//!   re-prove + independent check of the unrestricted 4x4 mesh.

use turnroute_analysis::extract;
use turnroute_analysis::synth::synthesize;
use turnroute_bench::harness::{black_box, Criterion};
use turnroute_bench::{criterion_group, criterion_main};
use turnroute_model::TurnSet;
use turnroute_sim::harness::saturating_config;
use turnroute_topology::Mesh;
use turnroute_traffic::Uniform;
use turnroute_vc::{DoubleYAdaptive, TableVcRouting, VcSim};

fn vc_synth_classes(c: &mut Criterion) {
    let mesh = Mesh::new_2d(8, 8);
    let dy = DoubleYAdaptive::new();
    let table = TableVcRouting::from_function(&mesh, &dy);
    let pattern = Uniform::new();
    let mut group = c.benchmark_group("vc_synth_classes");
    group.sample_size(10);
    group.bench_function("double_y_direct", |b| {
        b.iter(|| {
            let cfg = saturating_config(0xD0, 2_000, 1_000);
            let report = VcSim::new(&mesh, &dy, &pattern, cfg).run();
            assert!(!report.deadlocked);
            black_box(report.delivered_packets)
        })
    });
    group.bench_function("double_y_tabulated", |b| {
        b.iter(|| {
            let cfg = saturating_config(0xD0, 2_000, 1_000);
            let report = VcSim::new(&mesh, &table, &pattern, cfg).run();
            assert!(!report.deadlocked);
            black_box(report.delivered_packets)
        })
    });
    let mesh4 = Mesh::new_2d(4, 4);
    let input = extract::from_turn_set("bench", &mesh4, &TurnSet::all_ninety(2));
    group.bench_function("synthesize_mesh4x4", |b| {
        b.iter(|| {
            let result = synthesize(black_box(&input)).expect("synthesizes");
            let cert = turnroute_analysis::prove::prove(&result.spec);
            turnroute_analysis::check::check(&result.spec, &cert).expect("checker");
            black_box(result.spec.deps.len())
        })
    });
    group.finish();
}

criterion_group!(benches, vc_synth_classes);
criterion_main!(benches);
