//! One benchmark per Section 6 figure: a representative mid-load run of
//! each figure's (topology, pattern, algorithm-set) combination at quick
//! scale. Full curves come from `cargo run --release --bin exp -- figN`.

use turnroute_bench::harness::{black_box, Criterion};
use turnroute_bench::{criterion_group, criterion_main, BENCH_RATE, BENCH_SCALE};
use turnroute_model::RoutingFunction;
use turnroute_routing::{hypercube, mesh2d, ndmesh, RoutingMode};
use turnroute_sim::{Sim, SimConfig};
use turnroute_topology::{Hypercube, Mesh, Topology};
use turnroute_traffic::{HypercubeTranspose, MeshTranspose, ReverseFlip, TrafficPattern, Uniform};

fn run_once(topo: &dyn Topology, alg: &dyn RoutingFunction, pattern: &dyn TrafficPattern) -> f64 {
    let (warmup, measure, drain) = BENCH_SCALE.cycles();
    let cfg = SimConfig::builder()
        .injection_rate(BENCH_RATE)
        .warmup_cycles(warmup)
        .measure_cycles(measure / 2)
        .drain_cycles(drain / 2)
        .seed(3)
        .build();
    let report = Sim::new(topo, alg, pattern, cfg).run();
    assert!(!report.deadlocked);
    report.throughput_flits_per_us()
}

fn bench_figure(
    c: &mut Criterion,
    name: &str,
    topo: &dyn Topology,
    algorithms: &[Box<dyn RoutingFunction>],
    pattern: &dyn TrafficPattern,
) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for alg in algorithms {
        group.bench_function(alg.name(), |b| {
            b.iter(|| black_box(run_once(topo, alg, pattern)))
        });
    }
    group.finish();
}

fn mesh_algorithms() -> Vec<Box<dyn RoutingFunction>> {
    vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
    ]
}

fn cube_algorithms() -> Vec<Box<dyn RoutingFunction>> {
    vec![
        Box::new(hypercube::e_cube(8)),
        Box::new(hypercube::p_cube(8, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_negative_first(8, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_positive_last(8, RoutingMode::Minimal)),
    ]
}

fn fig13_mesh_uniform(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    bench_figure(
        c,
        "fig13_mesh_uniform",
        &mesh,
        &mesh_algorithms(),
        &Uniform::new(),
    );
}

fn fig14_mesh_transpose(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    bench_figure(
        c,
        "fig14_mesh_transpose",
        &mesh,
        &mesh_algorithms(),
        &MeshTranspose::new(),
    );
}

fn fig15_cube_transpose(c: &mut Criterion) {
    let cube = Hypercube::new(8);
    bench_figure(
        c,
        "fig15_cube_transpose",
        &cube,
        &cube_algorithms(),
        &HypercubeTranspose::new(),
    );
}

fn fig16_cube_reverseflip(c: &mut Criterion) {
    let cube = Hypercube::new(8);
    bench_figure(
        c,
        "fig16_cube_reverseflip",
        &cube,
        &cube_algorithms(),
        &ReverseFlip::new(),
    );
}

criterion_group!(
    benches,
    fig13_mesh_uniform,
    fig14_mesh_transpose,
    fig15_cube_transpose,
    fig16_cube_reverseflip
);
criterion_main!(benches);
