//! Benchmark for the turncheck explorer: one exhaustive certification of
//! a census-safe two-turn set on the 2×2 wormhole engine — canonical
//! encoding, symmetry reduction, full injection-subset and arbitration
//! branching included. This is the unit of work the `turncheck` matrix
//! repeats 12 (quick) or 24 (full) times, so its throughput bounds the
//! CI gate's latency.

use turnroute_analysis::mc::certify_set;
use turnroute_bench::harness::{black_box, Criterion};
use turnroute_bench::{criterion_group, criterion_main};
use turnroute_model::presets;

fn mc_small_mesh(c: &mut Criterion) {
    // West-first: a safe set, so the run is a complete walk of the
    // reachable state space.
    let set = presets::west_first_turns();
    c.bench_function("mc_small_mesh/certify_west_first_2x2", |b| {
        b.iter(|| {
            let entry = certify_set(2, black_box(&set));
            assert!(entry.complete && !entry.deadlock);
            black_box(entry.states)
        })
    });
}

criterion_group!(benches, mc_small_mesh);
criterion_main!(benches);
