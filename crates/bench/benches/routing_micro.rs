//! Microbenchmarks: per-hop routing-decision cost of each algorithm —
//! the "more complex control logic" overhead the paper's Section 7
//! discusses as the price of adaptivity.

use turnroute_bench::harness::{black_box, Criterion};
use turnroute_bench::{criterion_group, criterion_main};
use turnroute_model::RoutingFunction;
use turnroute_routing::torus::NegativeFirstTorus;
use turnroute_routing::{hypercube, mesh2d, ndmesh, RoutingMode};
use turnroute_topology::{Hypercube, Mesh, NodeId, Torus};

fn route_all_pairs(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let mut group = c.benchmark_group("route_decision/mesh16x16");
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(mesh2d::xy()),
        Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
        Box::new(mesh2d::negative_first(RoutingMode::Nonminimal)),
    ];
    for alg in &algorithms {
        let label = if alg.is_minimal() {
            alg.name().to_string()
        } else {
            format!("{}-nonminimal", alg.name())
        };
        group.bench_function(&label, |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for s in (0..256u32).step_by(17) {
                    for d in (0..256u32).step_by(13) {
                        if s == d {
                            continue;
                        }
                        acc ^= alg.route(&mesh, NodeId(s), NodeId(d), None).bits();
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    let cube = Hypercube::new(8);
    let mut group = c.benchmark_group("route_decision/cube8");
    let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
        Box::new(hypercube::e_cube(8)),
        Box::new(hypercube::p_cube(8, RoutingMode::Minimal)),
        Box::new(ndmesh::all_but_one_negative_first(8, RoutingMode::Minimal)),
    ];
    for alg in &algorithms {
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for s in (0..256u32).step_by(17) {
                    for d in (0..256u32).step_by(13) {
                        if s == d {
                            continue;
                        }
                        acc ^= alg.route(&cube, NodeId(s), NodeId(d), None).bits();
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    let torus = Torus::new(8, 2);
    let nf = NegativeFirstTorus::new(2);
    c.bench_function("route_decision/torus8x8/negative-first-torus", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for s in (0..64u32).step_by(7) {
                for d in (0..64u32).step_by(5) {
                    if s == d {
                        continue;
                    }
                    acc ^= nf.route(&torus, NodeId(s), NodeId(d), None).bits();
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, route_all_pairs);
criterion_main!(benches);
