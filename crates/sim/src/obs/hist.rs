//! Log-bucketed streaming histogram for latency quantiles.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// at `2^-SUB_BITS` (~3%).
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// A fixed-memory histogram with HDR-style log2 buckets: exact for values
/// below 32, and within ~3% relative error above, regardless of how many
/// samples are recorded. Replaces store-and-sort quantile math.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> StreamingHistogram {
        StreamingHistogram::new()
    }
}

/// Bucket index of `v`: identity below `SUB_BUCKETS`, then
/// `(octave, top SUB_BITS mantissa bits)`.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let offset = (v >> (octave - SUB_BITS)) - SUB_BUCKETS; // 0..SUB_BUCKETS
    (((octave - SUB_BITS + 1) as u64 * SUB_BUCKETS) + offset) as usize
}

/// Smallest value mapping to `bucket` (inverse of [`bucket_of`]).
fn bucket_lower(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < SUB_BUCKETS {
        return b;
    }
    let octave = (b / SUB_BUCKETS - 1) + SUB_BITS as u64;
    let offset = b % SUB_BUCKETS;
    (SUB_BUCKETS + offset) << (octave - SUB_BITS as u64)
}

/// Largest value mapping to `bucket`.
fn bucket_upper(bucket: usize) -> u64 {
    if (bucket as u64) < SUB_BUCKETS {
        return bucket as u64;
    }
    bucket_lower(bucket + 1) - 1
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> StreamingHistogram {
        StreamingHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the
    /// bucket holding the q-th sample, so within one bucket width (~3%)
    /// of the exact order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, matching
        // `sorted[ceil(q * n) - 1]` nearest-rank semantics.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`StreamingHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`StreamingHistogram::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`StreamingHistogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as raw `(bucket index, count)` pairs — the exact
    /// internal representation, for codecs that must round-trip the
    /// histogram bit-identically (see [`StreamingHistogram::from_raw`]).
    pub fn raw_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (b as u64, c))
    }

    /// Rebuild a histogram from its exact parts: `sum`, `min`, `max`, and
    /// the non-empty raw `(bucket index, count)` pairs, as produced by
    /// [`StreamingHistogram::sum`]/[`StreamingHistogram::min`]/
    /// [`StreamingHistogram::max`]/[`StreamingHistogram::raw_buckets`].
    /// The result compares equal to the original. Empty pairs rebuild the
    /// empty histogram regardless of the scalar arguments.
    pub fn from_raw(sum: u64, min: u64, max: u64, pairs: &[(u64, u64)]) -> StreamingHistogram {
        let mut h = StreamingHistogram::new();
        for &(b, c) in pairs {
            let b = b as usize;
            if b >= h.counts.len() {
                h.counts.resize(b + 1, 0);
            }
            h.counts[b] += c;
            h.count += c;
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// Non-empty buckets as `(lower, upper, count)` triples.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_lower(b), bucket_upper(b), c))
    }

    /// JSON object with summary stats and the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, (lo, hi, c)) in self.buckets().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{lo},{hi},{c}]"));
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p99(),
            buckets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn buckets_are_a_partition() {
        // Consecutive buckets tile the integers with no gaps or overlaps.
        let mut expected_lower = 0u64;
        for b in 0..500 {
            assert_eq!(bucket_lower(b), expected_lower, "bucket {b}");
            assert!(bucket_upper(b) >= bucket_lower(b));
            expected_lower = bucket_upper(b) + 1;
        }
        // And bucket_of maps boundaries back to their own bucket.
        for b in 0..500 {
            assert_eq!(bucket_of(bucket_lower(b)), b);
            assert_eq!(bucket_of(bucket_upper(b)), b);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            // Quantile hitting each sample returns it exactly.
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn zero_latency_sits_on_the_first_bucket_boundary() {
        // A zero-cycle delivery (value 0) is a legal sample and must land
        // in the very first bucket, not underflow or vanish.
        let mut h = StreamingHistogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
        let buckets: Vec<(u64, u64, u64)> = h.buckets().collect();
        assert_eq!(buckets.len(), 1);
        let (lower, upper, count) = buckets[0];
        assert_eq!((lower, count), (0, 10));
        assert!(upper >= lower);
        // One non-zero sample shifts only the top quantile.
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 1);
        assert_eq!(h.max(), 1);
        assert!(crate::obs::json::validate(&h.to_json()));
    }

    #[test]
    fn quantiles_match_exact_within_bucket_error() {
        // Streaming quantiles vs exact sorted order statistics across
        // several random distributions: relative error bounded by the
        // sub-bucket width (2^-5), plus exact min/max/mean/count.
        let mut rng = StdRng::seed_from_u64(0x4157);
        for case in 0..20 {
            let n = 1_000 + case * 137;
            let mut h = StreamingHistogram::new();
            let mut exact: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                // Skewed latency-like distribution over ~4 decades.
                let base = rng.gen_range(1u64..100);
                let scale = 10u64.pow(rng.gen_range(0u32..4));
                let v = base * scale;
                h.record(v);
                exact.push(v);
            }
            exact.sort_unstable();
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.min(), exact[0]);
            assert_eq!(h.max(), *exact.last().unwrap());
            assert_eq!(h.sum(), exact.iter().sum::<u64>());
            for &q in &[0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).max(1) - 1;
                let truth = exact[rank];
                let est = h.quantile(q);
                // Upper bound of the bucket holding the true sample.
                assert!(est >= truth, "q={q}: est {est} < truth {truth}");
                let bound = truth + truth / 32 + 1;
                assert!(
                    est <= bound,
                    "q={q}: est {est} > bound {bound} (truth {truth})"
                );
            }
        }
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut all = StreamingHistogram::new();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..500u64 {
            let v = rng.gen_range(0u64..100_000);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn raw_buckets_round_trip_exactly() {
        let mut h = StreamingHistogram::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..2_000 {
            h.record(rng.gen_range(0u64..1_000_000));
        }
        let pairs: Vec<(u64, u64)> = h.raw_buckets().collect();
        let back = StreamingHistogram::from_raw(h.sum(), h.min(), h.max(), &pairs);
        assert_eq!(back, h);
        assert_eq!(back.p90(), h.p90());
        // Empty round trip: no pairs rebuilds the pristine empty state.
        let empty = StreamingHistogram::from_raw(0, 0, 0, &[]);
        assert_eq!(empty, StreamingHistogram::new());
    }

    #[test]
    fn p90_sits_between_p50_and_p99() {
        let mut h = StreamingHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        // Nearest-rank p90 of 1..=1000 is 900; bucketed answer is the
        // holding bucket's upper bound, within ~3%.
        assert!(h.p90() >= 900 && h.p90() <= 930, "p90={}", h.p90());
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = StreamingHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains("\"count\":0"));
    }

    #[test]
    fn json_is_valid() {
        let mut h = StreamingHistogram::new();
        for v in [1u64, 5, 700, 700, 12_345] {
            h.record(v);
        }
        let j = h.to_json();
        assert!(crate::obs::json::validate(&j), "{j}");
    }
}
