//! Flit-level telemetry: observer hooks and composable collectors.
//!
//! The engine is generic over a [`SimObserver`]; the default
//! [`NoopObserver`] has `ENABLED = false`, so every hook call sits behind
//! an `if O::ENABLED` the compiler folds away — an uninstrumented
//! simulation pays nothing. Collectors in this module implement the trait
//! and can be composed with tuples (`(A, B)`) or via the all-in-one
//! [`Telemetry`] bundle:
//!
//! ```
//! use turnroute_sim::obs::Telemetry;
//! use turnroute_sim::{Sim, SimConfig};
//! use turnroute_routing::{mesh2d, RoutingMode};
//! use turnroute_topology::Mesh;
//! use turnroute_traffic::Uniform;
//!
//! let mesh = Mesh::new_2d(4, 4);
//! let routing = mesh2d::west_first(RoutingMode::Minimal);
//! let pattern = Uniform::new();
//! let cfg = SimConfig::builder().injection_rate(0.05).seed(7).build();
//! let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, Telemetry::new(&mesh));
//! for _ in 0..500 {
//!     sim.step();
//! }
//! let telemetry = sim.observer();
//! assert!(telemetry.census.total() > 0 || telemetry.heatmap.total_load() > 0);
//! ```

mod census;
mod detect;
mod frame;
mod heatmap;
mod hist;
mod invariant;
pub mod json;
mod trace;

pub use census::TurnCensus;
pub use detect::{Alert, AlertKind, DetectorBank, DetectorConfig};
pub use frame::{ChannelWindow, FrameCollector, TelemetryFrame};
pub use heatmap::ChannelHeatmap;
pub use hist::StreamingHistogram;
pub use invariant::{InvariantObserver, InvariantSummary};
pub use trace::{RingTrace, TraceEvent};

use crate::PacketId;
use turnroute_model::Turn;
use turnroute_topology::{Direction, NodeId, Topology};

/// Why an occupied channel failed to advance a flit this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The buffered head flit has no output channel yet (all candidates
    /// busy, faulty, or the header is still in its routing delay).
    NotRouted,
    /// An output is assigned but the downstream buffer never vacated
    /// (includes flits caught in a dependency cycle).
    Backpressure,
}

/// One transition of the online reconfiguration protocol (`turnheal`).
///
/// The engine itself never emits these — the healing driver
/// (`turnroute-analysis`'s `heal` module) fires them through
/// [`SimObserver::on_heal`] on the simulation's observer so every
/// reconfiguration decision lands in the same event stream as the flit
/// traffic it reacts to, in deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealEvent {
    /// A fault transition opened reconfiguration epoch `epoch`;
    /// `transitions` counts the channel up/down edges folded into it.
    EpochOpen {
        /// Epoch index (0 is the initial fault-free epoch).
        epoch: u32,
        /// Fault transitions that triggered the epoch.
        transitions: u32,
    },
    /// The re-proof of the epoch's masked channel graph finished.
    Proof {
        /// Epoch the proof belongs to.
        epoch: u32,
        /// Simulated proof latency in cycles (a deterministic function
        /// of the proof work, so same-seed logs stay byte-identical).
        latency: u64,
        /// Whether the incremental numbering repair sufficed (`false`
        /// means the full prover ran).
        incremental: bool,
        /// The verdict: acyclic (safe to swap) or cyclic (quarantine).
        acyclic: bool,
    },
    /// The independent checker validated the epoch's certificate.
    Certificate {
        /// Epoch the certificate covers.
        epoch: u32,
        /// FNV-1a-64 hash of the canonical certificate rendering.
        hash: u64,
    },
    /// Routing switched to the epoch's newly certified masked relation.
    TableSwap {
        /// Epoch whose relation is now live.
        epoch: u32,
    },
    /// A channel entered or left quarantine (escape-path-only mode).
    Quarantine {
        /// Epoch that changed the channel's status.
        epoch: u32,
        /// The quarantined channel slot.
        slot: u32,
        /// `true` = quarantined, `false` = released.
        on: bool,
    },
}

/// Where one delivered packet's latency went, cycle by cycle.
///
/// The engine maintains the decomposition so the four components sum to
/// the packet's total latency *exactly* — an identity the sanitizer
/// ([`InvariantObserver`]) re-derives from the raw hook stream and
/// asserts on every delivery:
///
/// * `queue_cycles` — creation to injection start: time spent waiting in
///   the source processor's queue (retried attempts fold in here, since a
///   retry re-queues the packet).
/// * `blocked_cycles` — network cycles in which *no* flit of the packet
///   moved: the worm was stalled behind busy channels or credit
///   starvation.
/// * `service_cycles` — network cycles in which at least one flit moved
///   along a productive reservation: the useful pipeline transfer time.
/// * `misroute_cycles` — network cycles in which the header advanced
///   through a channel granted *non-productively* (a misroute): the
///   detour penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketBlame {
    /// Creation to injection start (source-queue wait).
    pub queue_cycles: u64,
    /// In-network cycles where no flit of the packet moved.
    pub blocked_cycles: u64,
    /// In-network cycles with productive flit movement.
    pub service_cycles: u64,
    /// In-network cycles whose header movement was a misroute detour.
    pub misroute_cycles: u64,
}

impl PacketBlame {
    /// The components' sum — by the blame identity, the packet's total
    /// latency (creation to tail consumption) in cycles.
    pub fn total(&self) -> u64 {
        self.queue_cycles + self.blocked_cycles + self.service_cycles + self.misroute_cycles
    }
}

/// Hooks the engine fires at each interesting simulation event.
///
/// Every method has an empty default body, so collectors implement only
/// what they need. `ENABLED` gates the call sites: when `false` (the
/// [`NoopObserver`]) the instrumentation compiles away entirely.
pub trait SimObserver {
    /// Whether the engine should fire hooks at all.
    const ENABLED: bool = true;

    /// A packet started streaming into its source's injection buffer.
    fn on_inject(&mut self, _now: u64, _packet: PacketId, _src: NodeId, _dst: NodeId, _len: u32) {}

    /// A flit moved from channel `from` into channel `to`'s buffer
    /// (`None` = consumed at its destination's ejection buffer).
    fn on_flit_advance(
        &mut self,
        _now: u64,
        _from: usize,
        _to: Option<usize>,
        _packet: PacketId,
        _is_tail: bool,
    ) {
    }

    /// A header reserved an output channel, turning from its arrival
    /// direction. Not fired for injections (no arrival direction).
    fn on_turn(&mut self, _now: u64, _packet: PacketId, _at: NodeId, _turn: Turn) {}

    /// A header reserved an unproductive (nonminimal) output channel.
    fn on_misroute(&mut self, _now: u64, _packet: PacketId, _at: NodeId, _dir: Direction) {}

    /// An occupied channel advanced nothing this cycle.
    fn on_stall(&mut self, _now: u64, _slot: usize, _packet: PacketId, _reason: StallReason) {}

    /// A packet's tail flit was consumed at its destination.
    fn on_deliver(&mut self, _now: u64, _packet: PacketId, _latency: u64, _hops: u32) {}

    /// Deadlock detection tripped; `snapshot` holds the frozen waits-for
    /// graph and channel occupancy.
    fn on_deadlock(&mut self, _now: u64, _snapshot: &DeadlockSnapshot) {}

    /// A scheduled fault changed a channel's state: `active` means the
    /// channel at `slot` just failed, `!active` that it healed. Fired once
    /// per affected channel slot (a node fault fires for every incident
    /// channel).
    fn on_fault(&mut self, _now: u64, _slot: usize, _active: bool) {}

    /// A packet was purged after exhausting its lifetime and retries.
    /// `unroutable` means delivery was impossible (its source or
    /// destination router was down); otherwise it timed out while
    /// routable.
    fn on_drop(&mut self, _now: u64, _packet: PacketId, _unroutable: bool) {}

    /// A flit entered the network from the processor side: it was pushed
    /// into injection buffer `slot`. Fired once per flit (unlike
    /// [`SimObserver::on_inject`], which fires once per packet), so a
    /// collector that counts these sees every flit the engine ever owns.
    fn on_flit_source(&mut self, _now: u64, _slot: usize, _packet: PacketId, _is_tail: bool) {}

    /// Every flit of `packet` was just removed from the network (lifetime
    /// expiry). Fired for both retried and dropped packets, *before* the
    /// corresponding [`SimObserver::on_drop`] if the packet is dropped —
    /// conservation-checking collectors reconcile their shadow state here.
    fn on_purge(&mut self, _now: u64, _packet: PacketId) {}

    /// The engine finished every phase of cycle `now`. Collectors that
    /// maintain per-cycle invariants (conservation, occupancy) audit them
    /// here, when the network state is quiescent.
    fn on_cycle_end(&mut self, _now: u64) {}

    /// The online reconfiguration engine made a protocol transition
    /// (epoch open, proof, certificate, table swap, quarantine). Fired by
    /// the healing driver, not the engine itself — see [`HealEvent`].
    fn on_heal(&mut self, _now: u64, _ev: HealEvent) {}

    /// A delivered packet's latency decomposition. Fired immediately
    /// after the packet's [`SimObserver::on_deliver`], with the same
    /// `now`; `blame.total()` equals that delivery's latency.
    fn on_blame(&mut self, _now: u64, _packet: PacketId, _blame: PacketBlame) {}

    /// A windowed telemetry frame was sealed. Fired by frame-aware
    /// drivers (the obslog recorder's embedded [`FrameCollector`], or
    /// replay re-dispatching recorded frames) — the engine itself never
    /// fires it.
    fn on_frame(&mut self, _now: u64, _frame: &TelemetryFrame) {}

    /// An early-warning detector tripped over the frame stream. Fired by
    /// the same drivers as [`SimObserver::on_frame`].
    fn on_alert(&mut self, _now: u64, _alert: &Alert) {}
}

/// The default do-nothing observer; `ENABLED = false` removes every hook
/// call from the compiled engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// Two observers side by side, both receiving every event.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_inject(&mut self, now: u64, packet: PacketId, src: NodeId, dst: NodeId, len: u32) {
        self.0.on_inject(now, packet, src, dst, len);
        self.1.on_inject(now, packet, src, dst, len);
    }

    fn on_flit_advance(
        &mut self,
        now: u64,
        from: usize,
        to: Option<usize>,
        packet: PacketId,
        is_tail: bool,
    ) {
        self.0.on_flit_advance(now, from, to, packet, is_tail);
        self.1.on_flit_advance(now, from, to, packet, is_tail);
    }

    fn on_turn(&mut self, now: u64, packet: PacketId, at: NodeId, turn: Turn) {
        self.0.on_turn(now, packet, at, turn);
        self.1.on_turn(now, packet, at, turn);
    }

    fn on_misroute(&mut self, now: u64, packet: PacketId, at: NodeId, dir: Direction) {
        self.0.on_misroute(now, packet, at, dir);
        self.1.on_misroute(now, packet, at, dir);
    }

    fn on_stall(&mut self, now: u64, slot: usize, packet: PacketId, reason: StallReason) {
        self.0.on_stall(now, slot, packet, reason);
        self.1.on_stall(now, slot, packet, reason);
    }

    fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, hops: u32) {
        self.0.on_deliver(now, packet, latency, hops);
        self.1.on_deliver(now, packet, latency, hops);
    }

    fn on_deadlock(&mut self, now: u64, snapshot: &DeadlockSnapshot) {
        self.0.on_deadlock(now, snapshot);
        self.1.on_deadlock(now, snapshot);
    }

    fn on_fault(&mut self, now: u64, slot: usize, active: bool) {
        self.0.on_fault(now, slot, active);
        self.1.on_fault(now, slot, active);
    }

    fn on_drop(&mut self, now: u64, packet: PacketId, unroutable: bool) {
        self.0.on_drop(now, packet, unroutable);
        self.1.on_drop(now, packet, unroutable);
    }

    fn on_flit_source(&mut self, now: u64, slot: usize, packet: PacketId, is_tail: bool) {
        self.0.on_flit_source(now, slot, packet, is_tail);
        self.1.on_flit_source(now, slot, packet, is_tail);
    }

    fn on_purge(&mut self, now: u64, packet: PacketId) {
        self.0.on_purge(now, packet);
        self.1.on_purge(now, packet);
    }

    fn on_cycle_end(&mut self, now: u64) {
        self.0.on_cycle_end(now);
        self.1.on_cycle_end(now);
    }

    fn on_heal(&mut self, now: u64, ev: HealEvent) {
        self.0.on_heal(now, ev);
        self.1.on_heal(now, ev);
    }

    fn on_blame(&mut self, now: u64, packet: PacketId, blame: PacketBlame) {
        self.0.on_blame(now, packet, blame);
        self.1.on_blame(now, packet, blame);
    }

    fn on_frame(&mut self, now: u64, frame: &TelemetryFrame) {
        self.0.on_frame(now, frame);
        self.1.on_frame(now, frame);
    }

    fn on_alert(&mut self, now: u64, alert: &Alert) {
        self.0.on_alert(now, alert);
        self.1.on_alert(now, alert);
    }
}

/// The engine's channel-slot numbering, decoupled from the engine so
/// collectors can decode slots on their own: network slots are
/// `node * 2 * num_dims + dir.index()`, then one injection slot per node,
/// then one ejection slot per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelLayout {
    /// Nodes in the topology.
    pub num_nodes: usize,
    /// Dimensions of the topology (2 directions each).
    pub num_dims: usize,
    /// First injection slot == number of network slots.
    pub inj_base: usize,
    /// First ejection slot.
    pub ej_base: usize,
    /// Total slots (network + injection + ejection).
    pub num_channels: usize,
}

impl ChannelLayout {
    /// Layout for a topology with `num_nodes` nodes and `num_dims`
    /// dimensions.
    pub fn new(num_nodes: usize, num_dims: usize) -> ChannelLayout {
        let inj_base = num_nodes * 2 * num_dims;
        let ej_base = inj_base + num_nodes;
        ChannelLayout {
            num_nodes,
            num_dims,
            inj_base,
            ej_base,
            num_channels: ej_base + num_nodes,
        }
    }

    /// Layout matching what the engine builds for `topo`.
    pub fn for_topology(topo: &dyn Topology) -> ChannelLayout {
        ChannelLayout::new(topo.num_nodes(), topo.num_dims())
    }

    /// Whether `slot` is an injection slot.
    pub fn is_injection(&self, slot: usize) -> bool {
        (self.inj_base..self.ej_base).contains(&slot)
    }

    /// Whether `slot` is an ejection slot.
    pub fn is_ejection(&self, slot: usize) -> bool {
        slot >= self.ej_base
    }

    /// The node whose router the slot belongs to: the channel's *source*
    /// node for network slots, the local node for injection/ejection.
    pub fn node_of(&self, slot: usize) -> NodeId {
        if slot >= self.inj_base {
            NodeId(((slot - self.inj_base) % self.num_nodes) as u32)
        } else {
            NodeId((slot / (2 * self.num_dims)) as u32)
        }
    }

    /// The direction of a network slot (`None` for injection/ejection).
    pub fn dir_of(&self, slot: usize) -> Option<Direction> {
        if slot >= self.inj_base {
            None
        } else {
            Some(Direction::from_index(slot % (2 * self.num_dims)))
        }
    }

    /// Human-readable slot name, e.g. `"n12>E"`, `"inj n3"`, `"ej n3"`.
    pub fn describe(&self, slot: usize) -> String {
        if self.is_ejection(slot) {
            format!("ej n{}", slot - self.ej_base)
        } else if self.is_injection(slot) {
            format!("inj n{}", slot - self.inj_base)
        } else {
            format!(
                "n{}>{}",
                self.node_of(slot).0,
                Direction::from_index(slot % (2 * self.num_dims))
            )
        }
    }
}

/// One blocked channel in a frozen deadlock: who occupies it and which
/// channel it is waiting on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The occupied channel slot.
    pub channel: usize,
    /// Packet whose flit sits at the buffer's front.
    pub packet: u32,
    /// Flits buffered in this channel.
    pub buffered: usize,
    /// Whether the front flit is an (unrouted or blocked) header.
    pub head_waiting: bool,
    /// The output channel this worm is bound to, if routed.
    pub waits_for: Option<usize>,
}

/// Frozen waits-for graph and channel occupancy, captured when deadlock
/// detection trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// Cycle at which the snapshot was taken.
    pub now: u64,
    /// Slot numbering used by `edges`.
    pub layout: ChannelLayout,
    /// One edge per occupied channel.
    pub edges: Vec<WaitEdge>,
}

impl DeadlockSnapshot {
    /// The snapshot as one JSON object (used as the last line of a
    /// postmortem dump).
    pub fn to_json(&self) -> String {
        let mut edges = String::new();
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                edges.push(',');
            }
            edges.push_str(&format!(
                "{{\"channel\":{},\"name\":{},\"packet\":{},\"buffered\":{},\"head_waiting\":{},\"waits_for\":{}}}",
                e.channel,
                json::string(&self.layout.describe(e.channel)),
                e.packet,
                e.buffered,
                e.head_waiting,
                match e.waits_for {
                    Some(w) => w.to_string(),
                    None => "null".into(),
                },
            ));
        }
        format!(
            "{{\"event\":\"deadlock_snapshot\",\"cycle\":{},\"occupied_channels\":{},\"edges\":[{}]}}",
            self.now,
            self.edges.len(),
            edges
        )
    }

    /// Channels that form circular waits (slots on some cycle of the
    /// waits-for graph) — the actual deadlocked worms, as opposed to
    /// traffic merely blocked behind them.
    pub fn cycle_channels(&self) -> Vec<usize> {
        // waits_for is a partial function: each node has at most one
        // outgoing edge, so every cycle is reachable by pointer chasing.
        let mut next = vec![usize::MAX; self.layout.num_channels];
        for e in &self.edges {
            if let Some(w) = e.waits_for {
                next[e.channel] = w;
            }
        }
        let mut on_cycle = vec![false; self.layout.num_channels];
        let mut mark = vec![0u32; self.layout.num_channels];
        let mut pass = 0u32;
        for e in &self.edges {
            pass += 1;
            let mut c = e.channel;
            // Walk until we leave the graph, hit an earlier pass, or
            // revisit this pass's own path (a new cycle).
            while c != usize::MAX && mark[c] == 0 {
                mark[c] = pass;
                c = next[c];
            }
            if c != usize::MAX && mark[c] == pass {
                // Found a fresh cycle: walk it once more to mark members.
                let start = c;
                loop {
                    on_cycle[c] = true;
                    c = next[c];
                    if c == start {
                        break;
                    }
                }
            }
        }
        (0..self.layout.num_channels)
            .filter(|&c| on_cycle[c])
            .collect()
    }
}

/// Everything-on collector bundle: per-channel heatmap, turn census, and
/// a ring-buffer event trace with deadlock postmortem.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Per-channel load and stall-attribution heatmap.
    pub heatmap: ChannelHeatmap,
    /// Counts of turns taken, by direction pair.
    pub census: TurnCensus,
    /// Bounded event trace; dumps a JSONL postmortem after deadlock.
    pub trace: RingTrace,
}

impl Telemetry {
    /// Default trace depth (events kept for the postmortem).
    pub const DEFAULT_TRACE_DEPTH: usize = 256;

    /// Collectors sized for `topo`.
    pub fn new(topo: &dyn Topology) -> Telemetry {
        let layout = ChannelLayout::for_topology(topo);
        Telemetry {
            heatmap: ChannelHeatmap::new(layout),
            census: TurnCensus::new(topo.num_dims()),
            trace: RingTrace::new(Self::DEFAULT_TRACE_DEPTH),
        }
    }

    /// The combined collector state as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"channels\":{},\"turns\":{}}}",
            self.heatmap.to_json(),
            self.census.to_json()
        )
    }
}

impl SimObserver for Telemetry {
    fn on_inject(&mut self, now: u64, packet: PacketId, src: NodeId, dst: NodeId, len: u32) {
        self.trace.on_inject(now, packet, src, dst, len);
    }

    fn on_flit_advance(
        &mut self,
        now: u64,
        from: usize,
        to: Option<usize>,
        packet: PacketId,
        is_tail: bool,
    ) {
        self.heatmap.on_flit_advance(now, from, to, packet, is_tail);
        self.trace.on_flit_advance(now, from, to, packet, is_tail);
    }

    fn on_turn(&mut self, now: u64, packet: PacketId, at: NodeId, turn: Turn) {
        self.census.on_turn(now, packet, at, turn);
        self.trace.on_turn(now, packet, at, turn);
    }

    fn on_misroute(&mut self, now: u64, packet: PacketId, at: NodeId, dir: Direction) {
        self.trace.on_misroute(now, packet, at, dir);
    }

    fn on_stall(&mut self, now: u64, slot: usize, packet: PacketId, reason: StallReason) {
        self.heatmap.on_stall(now, slot, packet, reason);
    }

    fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, hops: u32) {
        self.trace.on_deliver(now, packet, latency, hops);
    }

    fn on_deadlock(&mut self, now: u64, snapshot: &DeadlockSnapshot) {
        self.trace.on_deadlock(now, snapshot);
    }

    fn on_fault(&mut self, now: u64, slot: usize, active: bool) {
        self.trace.on_fault(now, slot, active);
    }

    fn on_drop(&mut self, now: u64, packet: PacketId, unroutable: bool) {
        self.trace.on_drop(now, packet, unroutable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_decodes_slots() {
        // 2x2 mesh: 4 nodes, 2 dims -> 16 network slots, inj 16..20,
        // ej 20..24.
        let l = ChannelLayout::new(4, 2);
        assert_eq!(l.inj_base, 16);
        assert_eq!(l.ej_base, 20);
        assert_eq!(l.num_channels, 24);
        assert_eq!(l.node_of(5), NodeId(1));
        assert_eq!(l.dir_of(5), Some(Direction::from_index(1)));
        assert!(l.is_injection(17) && !l.is_injection(21));
        assert!(l.is_ejection(21) && !l.is_ejection(17));
        assert_eq!(l.node_of(17), NodeId(1));
        assert_eq!(l.node_of(21), NodeId(1));
        assert_eq!(l.dir_of(17), None);
        assert_eq!(l.describe(17), "inj n1");
        assert_eq!(l.describe(21), "ej n1");
        assert!(l.describe(5).starts_with("n1>"));
    }

    #[test]
    fn snapshot_finds_circular_wait() {
        // 0 -> 1 -> 2 -> 0 is a cycle; 3 -> 0 is blocked traffic behind it.
        let layout = ChannelLayout::new(4, 1);
        let edge = |c: usize, w: Option<usize>| WaitEdge {
            channel: c,
            packet: c as u32,
            buffered: 1,
            head_waiting: w.is_none(),
            waits_for: w,
        };
        let snap = DeadlockSnapshot {
            now: 99,
            layout,
            edges: vec![
                edge(0, Some(1)),
                edge(1, Some(2)),
                edge(2, Some(0)),
                edge(3, Some(0)),
            ],
        };
        assert_eq!(snap.cycle_channels(), vec![0, 1, 2]);
        let j = snap.to_json();
        assert!(j.contains("\"cycle\":99"), "{j}");
        assert!(json::validate(&j), "snapshot JSON must parse: {j}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn noop_is_disabled_and_tuples_or_enabled() {
        assert!(!NoopObserver::ENABLED);
        assert!(!<(NoopObserver, NoopObserver)>::ENABLED);
        assert!(<(TurnCensus, NoopObserver)>::ENABLED);
    }
}
