//! Bounded event trace with deadlock postmortems.

use super::{DeadlockSnapshot, SimObserver};
use crate::PacketId;
use std::collections::VecDeque;
use turnroute_model::Turn;
use turnroute_topology::{Direction, NodeId};

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet started streaming into the network.
    Inject {
        /// Cycle of the event.
        now: u64,
        /// The packet.
        packet: u32,
        /// Its source node.
        src: NodeId,
        /// Its destination node.
        dst: NodeId,
        /// Its length in flits.
        len: u32,
    },
    /// A flit crossed between channel buffers (`to: None` = consumed).
    Advance {
        /// Cycle of the event.
        now: u64,
        /// Source channel slot.
        from: usize,
        /// Destination channel slot, `None` when consumed.
        to: Option<usize>,
        /// The flit's packet.
        packet: u32,
        /// Whether this was the tail flit.
        is_tail: bool,
    },
    /// A header turned at a router.
    Turn {
        /// Cycle of the event.
        now: u64,
        /// The packet.
        packet: u32,
        /// Router where the turn happened.
        at: NodeId,
        /// The turn taken.
        turn: Turn,
    },
    /// A header took an unproductive channel.
    Misroute {
        /// Cycle of the event.
        now: u64,
        /// The packet.
        packet: u32,
        /// Router where the misroute happened.
        at: NodeId,
        /// The unproductive direction taken.
        dir: Direction,
    },
    /// A packet's tail was consumed at its destination.
    Deliver {
        /// Cycle of the event.
        now: u64,
        /// The packet.
        packet: u32,
        /// Creation-to-consumption latency in cycles.
        latency: u64,
        /// Network hops taken.
        hops: u32,
    },
    /// A scheduled fault changed a channel's state.
    Fault {
        /// Cycle of the event.
        now: u64,
        /// The affected channel slot.
        slot: usize,
        /// `true` = failed, `false` = healed.
        active: bool,
    },
    /// A packet was purged after exhausting its lifetime and retries.
    Drop {
        /// Cycle of the event.
        now: u64,
        /// The packet.
        packet: u32,
        /// Whether delivery was impossible (source/destination down).
        unroutable: bool,
    },
}

impl TraceEvent {
    /// The event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::Inject { now, packet, src, dst, len } => format!(
                "{{\"event\":\"inject\",\"cycle\":{now},\"packet\":{packet},\"src\":{},\"dst\":{},\"len\":{len}}}",
                src.0, dst.0
            ),
            TraceEvent::Advance { now, from, to, packet, is_tail } => format!(
                "{{\"event\":\"advance\",\"cycle\":{now},\"packet\":{packet},\"from\":{from},\"to\":{},\"is_tail\":{is_tail}}}",
                match to {
                    Some(t) => t.to_string(),
                    None => "null".into(),
                }
            ),
            TraceEvent::Turn { now, packet, at, turn } => format!(
                "{{\"event\":\"turn\",\"cycle\":{now},\"packet\":{packet},\"at\":{},\"turn\":{}}}",
                at.0,
                super::json::string(&turn.to_string())
            ),
            TraceEvent::Misroute { now, packet, at, dir } => format!(
                "{{\"event\":\"misroute\",\"cycle\":{now},\"packet\":{packet},\"at\":{},\"dir\":{}}}",
                at.0,
                super::json::string(&dir.to_string())
            ),
            TraceEvent::Deliver { now, packet, latency, hops } => format!(
                "{{\"event\":\"deliver\",\"cycle\":{now},\"packet\":{packet},\"latency\":{latency},\"hops\":{hops}}}"
            ),
            TraceEvent::Fault { now, slot, active } => format!(
                "{{\"event\":\"fault\",\"cycle\":{now},\"slot\":{slot},\"active\":{active}}}"
            ),
            TraceEvent::Drop { now, packet, unroutable } => format!(
                "{{\"event\":\"drop\",\"cycle\":{now},\"packet\":{packet},\"unroutable\":{unroutable}}}"
            ),
        }
    }
}

/// Keeps the last `capacity` events in a ring buffer; when the engine
/// detects deadlock the snapshot is captured, and
/// [`RingTrace::postmortem_jsonl`] renders the whole story — the final
/// events leading in, then the frozen waits-for graph — as JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingTrace {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    snapshot: Option<DeadlockSnapshot>,
}

impl RingTrace {
    /// A trace keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> RingTrace {
        let capacity = capacity.max(1);
        RingTrace {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
            snapshot: None,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events that fell out of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The deadlock snapshot, if the run deadlocked.
    pub fn snapshot(&self) -> Option<&DeadlockSnapshot> {
        self.snapshot.as_ref()
    }

    /// The postmortem as JSONL: a header line, the last events oldest
    /// first, and the deadlock snapshot (when one was captured) last.
    /// Every line is one JSON object.
    pub fn postmortem_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"event\":\"trace_header\",\"events\":{},\"dropped\":{},\"deadlocked\":{}}}\n",
            self.events.len(),
            self.dropped,
            self.snapshot.is_some()
        );
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        if let Some(snap) = &self.snapshot {
            out.push_str(&snap.to_json());
            out.push('\n');
        }
        out
    }
}

impl SimObserver for RingTrace {
    fn on_inject(&mut self, now: u64, packet: PacketId, src: NodeId, dst: NodeId, len: u32) {
        self.push(TraceEvent::Inject {
            now,
            packet: packet.0,
            src,
            dst,
            len,
        });
    }

    fn on_flit_advance(
        &mut self,
        now: u64,
        from: usize,
        to: Option<usize>,
        packet: PacketId,
        is_tail: bool,
    ) {
        self.push(TraceEvent::Advance {
            now,
            from,
            to,
            packet: packet.0,
            is_tail,
        });
    }

    fn on_turn(&mut self, now: u64, packet: PacketId, at: NodeId, turn: Turn) {
        self.push(TraceEvent::Turn {
            now,
            packet: packet.0,
            at,
            turn,
        });
    }

    fn on_misroute(&mut self, now: u64, packet: PacketId, at: NodeId, dir: Direction) {
        self.push(TraceEvent::Misroute {
            now,
            packet: packet.0,
            at,
            dir,
        });
    }

    fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, hops: u32) {
        self.push(TraceEvent::Deliver {
            now,
            packet: packet.0,
            latency,
            hops,
        });
    }

    fn on_deadlock(&mut self, _now: u64, snapshot: &DeadlockSnapshot) {
        self.snapshot = Some(snapshot.clone());
    }

    fn on_fault(&mut self, now: u64, slot: usize, active: bool) {
        self.push(TraceEvent::Fault { now, slot, active });
    }

    fn on_drop(&mut self, now: u64, packet: PacketId, unroutable: bool) {
        self.push(TraceEvent::Drop {
            now,
            packet: packet.0,
            unroutable,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ChannelLayout, WaitEdge};
    use super::*;

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let mut t = RingTrace::new(3);
        for i in 0..5u64 {
            t.on_deliver(i, PacketId(i as u32), 10 + i, 2);
        }
        assert_eq!(t.events().count(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.events().next().unwrap();
        match first {
            TraceEvent::Deliver { packet, .. } => assert_eq!(*packet, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ring_at_exactly_capacity_drops_nothing() {
        let mut t = RingTrace::new(4);
        for i in 0..4u64 {
            t.on_deliver(i, PacketId(i as u32), i, 1);
        }
        // Full to the brim: nothing dropped yet, all four retained in order.
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.dropped(), 0);
        let packets: Vec<u32> = t
            .events()
            .map(|e| match e {
                TraceEvent::Deliver { packet, .. } => *packet,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(packets, [0, 1, 2, 3]);
        // One past capacity evicts exactly the oldest.
        t.on_deliver(4, PacketId(4), 4, 1);
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.dropped(), 1);
        match t.events().next().unwrap() {
            TraceEvent::Deliver { packet, .. } => assert_eq!(*packet, 1),
            other => panic!("unexpected {other:?}"),
        }
        // The postmortem header reflects the boundary crossing.
        assert!(t
            .postmortem_jsonl()
            .starts_with("{\"event\":\"trace_header\",\"events\":4,\"dropped\":1,"));
    }

    #[test]
    fn fault_and_drop_events_are_json() {
        let mut t = RingTrace::new(8);
        t.on_fault(5, 12, true);
        t.on_fault(9, 12, false);
        t.on_drop(11, PacketId(4), true);
        assert_eq!(t.events().count(), 3);
        for e in t.events() {
            let j = e.to_json();
            assert!(crate::obs::json::validate(&j), "bad JSON: {j}");
        }
    }

    #[test]
    fn postmortem_lines_are_json() {
        let mut t = RingTrace::new(16);
        t.on_inject(0, PacketId(0), NodeId(0), NodeId(3), 4);
        t.on_turn(
            2,
            PacketId(0),
            NodeId(1),
            Turn::new(Direction::EAST, Direction::NORTH),
        );
        t.on_misroute(3, PacketId(0), NodeId(1), Direction::SOUTH);
        t.on_flit_advance(3, 0, Some(4), PacketId(0), false);
        t.on_flit_advance(4, 4, None, PacketId(0), true);
        t.on_deliver(4, PacketId(0), 9, 2);
        let snap = DeadlockSnapshot {
            now: 7,
            layout: ChannelLayout::new(4, 2),
            edges: vec![WaitEdge {
                channel: 1,
                packet: 0,
                buffered: 1,
                head_waiting: true,
                waits_for: None,
            }],
        };
        t.on_deadlock(7, &snap);
        let dump = t.postmortem_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        // header + 6 events + snapshot
        assert_eq!(lines.len(), 8);
        for line in &lines {
            assert!(crate::obs::json::validate(line), "bad JSON line: {line}");
        }
        assert!(lines[0].contains("\"deadlocked\":true"));
        assert!(lines[7].contains("deadlock_snapshot"));
    }
}
