//! Windowed telemetry frames: the streaming observability unit.
//!
//! A [`FrameCollector`] rides a run (or a replay) and, every `cadence`
//! cycles, seals a [`TelemetryFrame`] — a self-contained snapshot of what
//! the window saw: per-channel utilization and blocked-cycle counts, the
//! in-flight packet census, injected/delivered/dropped deltas, a latency
//! quantile sketch, and the number of open healing epochs.
//!
//! The collector derives *everything* from observer hooks — never from
//! engine internals — so replaying a recorded log through a fresh
//! collector seals frames identical to the ones sealed live. That is the
//! byte-identity contract `turnstat frames --check` and the CI turnscope
//! gate enforce, and it is what makes frames a safe streaming contract:
//! a consumer of the frame stream (a dashboard, a detector bank, a future
//! daemon client) can be re-driven offline from the log and must land in
//! the same state.

use super::hist::StreamingHistogram;
use super::{HealEvent, SimObserver};
use crate::PacketId;
use turnroute_topology::NodeId;

/// One channel's activity inside a single frame window. Frames carry
/// only channels with non-zero activity, keyed by slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelWindow {
    /// Channel slot (engine numbering, see
    /// [`super::ChannelLayout`]).
    pub slot: usize,
    /// Flits that entered this channel's buffer during the window.
    pub util: u64,
    /// Cycles this channel was occupied but advanced nothing.
    pub blocked: u64,
}

/// A sealed telemetry window: everything one frame of the stream says.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Frame sequence number, 0-based from the start of the run.
    pub seq: u64,
    /// First cycle the window covers.
    pub window_start: u64,
    /// Last cycle the window covers (inclusive).
    pub window_end: u64,
    /// Packets that started streaming into the network this window.
    pub injected_packets: u64,
    /// Packets whose tail was consumed this window.
    pub delivered_packets: u64,
    /// Packets dropped this window (lifetime/retry exhaustion).
    pub dropped_packets: u64,
    /// Packets in flight at seal time (injected − delivered − purged,
    /// over the whole run).
    pub in_flight_packets: u64,
    /// Healing epochs open at seal time (epoch opens minus table swaps).
    pub open_heal_epochs: u64,
    /// Latency sketch of this window's deliveries.
    pub latency: StreamingHistogram,
    /// Per-channel activity, slot-ordered, non-zero entries only.
    pub channels: Vec<ChannelWindow>,
}

impl TelemetryFrame {
    /// Window length in cycles.
    pub fn window_len(&self) -> u64 {
        self.window_end - self.window_start + 1
    }

    /// Total blocked-cycle mass across all channels this window — the
    /// congestion pressure signal the slope detector watches.
    pub fn blocked_mass(&self) -> u64 {
        self.channels.iter().map(|c| c.blocked).sum()
    }

    /// Total channel-buffer entries this window.
    pub fn util_mass(&self) -> u64 {
        self.channels.iter().map(|c| c.util).sum()
    }

    /// The frame as one JSON object (used for the `turnstat frames`
    /// JSON-lines export).
    pub fn to_json(&self) -> String {
        let mut channels = String::new();
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                channels.push(',');
            }
            channels.push_str(&format!(
                "{{\"slot\":{},\"util\":{},\"blocked\":{}}}",
                c.slot, c.util, c.blocked
            ));
        }
        format!(
            "{{\"seq\":{},\"window_start\":{},\"window_end\":{},\
             \"injected_packets\":{},\"delivered_packets\":{},\
             \"dropped_packets\":{},\"in_flight_packets\":{},\
             \"open_heal_epochs\":{},\"blocked_mass\":{},\
             \"latency\":{},\"channels\":[{}]}}",
            self.seq,
            self.window_start,
            self.window_end,
            self.injected_packets,
            self.delivered_packets,
            self.dropped_packets,
            self.in_flight_packets,
            self.open_heal_epochs,
            self.blocked_mass(),
            self.latency.to_json(),
            channels
        )
    }
}

/// Observer that seals a [`TelemetryFrame`] every `cadence` cycles.
///
/// Purely hook-derived, so it can ride a live run *or* be re-driven from
/// a recorded log and seal identical frames. Sealed frames accumulate in
/// order; drain them with [`FrameCollector::take_frames`] or inspect via
/// [`FrameCollector::frames`].
#[derive(Debug, Clone)]
pub struct FrameCollector {
    cadence: u64,
    num_channels: usize,
    // Window-local state, reset at each seal.
    util: Vec<u64>,
    blocked: Vec<u64>,
    injected: u64,
    delivered: u64,
    dropped: u64,
    latency: StreamingHistogram,
    // Run-global state carried across windows.
    in_flight: u64,
    open_epochs: u64,
    seq: u64,
    window_start: u64,
    frames: Vec<TelemetryFrame>,
}

impl FrameCollector {
    /// A collector sealing one frame per `cadence` cycles over
    /// `num_channels` slots.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn new(num_channels: usize, cadence: u64) -> FrameCollector {
        assert!(cadence > 0, "frame cadence must be positive");
        FrameCollector {
            cadence,
            num_channels,
            util: vec![0; num_channels],
            blocked: vec![0; num_channels],
            injected: 0,
            delivered: 0,
            dropped: 0,
            latency: StreamingHistogram::new(),
            in_flight: 0,
            open_epochs: 0,
            seq: 0,
            window_start: 0,
            frames: Vec::new(),
        }
    }

    /// The sealing cadence in cycles.
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Frames sealed so far, in order.
    pub fn frames(&self) -> &[TelemetryFrame] {
        &self.frames
    }

    /// Drain the sealed frames, leaving the collector running.
    pub fn take_frames(&mut self) -> Vec<TelemetryFrame> {
        std::mem::take(&mut self.frames)
    }

    /// Grow to cover `slot`: engines with extra virtual-channel slots
    /// exceed the layout-derived pre-size. Kept `#[cold]` so the hot
    /// hooks stay a bounds check plus an increment; active slots are
    /// found by a full sweep at seal time, which is amortized to nothing
    /// at realistic cadences.
    #[cold]
    fn grow(&mut self, slot: usize) {
        self.num_channels = slot + 1;
        self.util.resize(self.num_channels, 0);
        self.blocked.resize(self.num_channels, 0);
    }

    fn seal(&mut self, window_end: u64) {
        let channels = (0..self.num_channels)
            .filter(|&slot| self.util[slot] != 0 || self.blocked[slot] != 0)
            .map(|slot| ChannelWindow {
                slot,
                util: self.util[slot],
                blocked: self.blocked[slot],
            })
            .collect();
        self.frames.push(TelemetryFrame {
            seq: self.seq,
            window_start: self.window_start,
            window_end,
            injected_packets: self.injected,
            delivered_packets: self.delivered,
            dropped_packets: self.dropped,
            in_flight_packets: self.in_flight,
            open_heal_epochs: self.open_epochs,
            latency: std::mem::take(&mut self.latency),
            channels,
        });
        self.util.fill(0);
        self.blocked.fill(0);
        self.injected = 0;
        self.delivered = 0;
        self.dropped = 0;
        self.seq += 1;
        self.window_start = window_end + 1;
    }
}

impl SimObserver for FrameCollector {
    fn on_inject(&mut self, _now: u64, _packet: PacketId, _src: NodeId, _dst: NodeId, _len: u32) {
        self.injected += 1;
        self.in_flight += 1;
    }

    fn on_flit_advance(
        &mut self,
        _now: u64,
        _from: usize,
        to: Option<usize>,
        _packet: PacketId,
        _is_tail: bool,
    ) {
        if let Some(to) = to {
            if to >= self.num_channels {
                self.grow(to);
            }
            self.util[to] += 1;
        }
    }

    fn on_stall(&mut self, _now: u64, slot: usize, _packet: PacketId, _reason: super::StallReason) {
        if slot >= self.num_channels {
            self.grow(slot);
        }
        self.blocked[slot] += 1;
    }

    fn on_deliver(&mut self, _now: u64, _packet: PacketId, latency: u64, _hops: u32) {
        self.delivered += 1;
        self.in_flight = self.in_flight.saturating_sub(1);
        self.latency.record(latency);
    }

    fn on_drop(&mut self, _now: u64, _packet: PacketId, _unroutable: bool) {
        self.dropped += 1;
    }

    fn on_purge(&mut self, _now: u64, _packet: PacketId) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    fn on_heal(&mut self, _now: u64, ev: HealEvent) {
        match ev {
            HealEvent::EpochOpen { .. } => self.open_epochs += 1,
            HealEvent::TableSwap { .. } => {
                self.open_epochs = self.open_epochs.saturating_sub(1);
            }
            _ => {}
        }
    }

    fn on_cycle_end(&mut self, now: u64) {
        if (now + 1).is_multiple_of(self.cadence) {
            self.seal(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;

    #[test]
    fn collector_seals_on_cadence_and_resets_window_state() {
        let mut c = FrameCollector::new(8, 10);
        // Window 0: one injection, one flit into slot 3, one stall on 5.
        c.on_inject(2, PacketId(0), NodeId(0), NodeId(1), 10);
        c.on_flit_advance(3, 0, Some(3), PacketId(0), false);
        c.on_stall(4, 5, PacketId(0), crate::obs::StallReason::Backpressure);
        for now in 0..10 {
            c.on_cycle_end(now);
        }
        // Window 1: a delivery only.
        c.on_deliver(12, PacketId(0), 10, 2);
        for now in 10..20 {
            c.on_cycle_end(now);
        }
        let frames = c.take_frames();
        assert_eq!(frames.len(), 2);
        let f0 = &frames[0];
        assert_eq!((f0.seq, f0.window_start, f0.window_end), (0, 0, 9));
        assert_eq!(f0.injected_packets, 1);
        assert_eq!(f0.in_flight_packets, 1);
        assert_eq!(f0.channels.len(), 2);
        assert_eq!(
            f0.channels[0],
            ChannelWindow {
                slot: 3,
                util: 1,
                blocked: 0
            }
        );
        assert_eq!(
            f0.channels[1],
            ChannelWindow {
                slot: 5,
                util: 0,
                blocked: 1
            }
        );
        assert_eq!(f0.blocked_mass(), 1);
        assert_eq!(f0.util_mass(), 1);
        assert_eq!(f0.window_len(), 10);
        let f1 = &frames[1];
        assert_eq!((f1.seq, f1.window_start, f1.window_end), (1, 10, 19));
        assert_eq!(f1.injected_packets, 0, "window counters reset");
        assert_eq!(f1.delivered_packets, 1);
        assert_eq!(f1.in_flight_packets, 0);
        assert!(f1.channels.is_empty());
        assert_eq!(f1.latency.count(), 1);
        assert!(json::validate(&f0.to_json()), "{}", f0.to_json());
        assert!(json::validate(&f1.to_json()), "{}", f1.to_json());
    }

    #[test]
    fn heal_epochs_track_opens_and_swaps() {
        let mut c = FrameCollector::new(4, 5);
        c.on_heal(
            0,
            HealEvent::EpochOpen {
                epoch: 1,
                transitions: 1,
            },
        );
        for now in 0..5 {
            c.on_cycle_end(now);
        }
        assert_eq!(c.frames()[0].open_heal_epochs, 1);
        c.on_heal(6, HealEvent::TableSwap { epoch: 1 });
        for now in 5..10 {
            c.on_cycle_end(now);
        }
        assert_eq!(c.frames()[1].open_heal_epochs, 0);
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_is_rejected() {
        let _ = FrameCollector::new(4, 0);
    }
}
