//! Per-channel load and stall-attribution heatmaps.

use super::{ChannelLayout, SimObserver, StallReason};
use crate::PacketId;
use turnroute_topology::NodeId;

/// Accumulates, per channel slot: flits that entered the channel's buffer
/// (load) and cycles the channel sat occupied without advancing, split by
/// [`StallReason`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelHeatmap {
    layout: ChannelLayout,
    load: Vec<u64>,
    stall_not_routed: Vec<u64>,
    stall_backpressure: Vec<u64>,
}

impl ChannelHeatmap {
    /// An empty heatmap over `layout`'s slots.
    pub fn new(layout: ChannelLayout) -> ChannelHeatmap {
        let n = layout.num_channels;
        ChannelHeatmap {
            layout,
            load: vec![0; n],
            stall_not_routed: vec![0; n],
            stall_backpressure: vec![0; n],
        }
    }

    /// The slot numbering this heatmap uses.
    pub fn layout(&self) -> ChannelLayout {
        self.layout
    }

    /// Flits that entered `slot`'s buffer.
    pub fn load(&self, slot: usize) -> u64 {
        self.load[slot]
    }

    /// Cycles `slot` sat occupied without moving a flit, for any reason.
    pub fn stall_cycles(&self, slot: usize) -> u64 {
        self.stall_not_routed[slot] + self.stall_backpressure[slot]
    }

    /// Stall cycles attributed to an unrouted header at `slot`.
    pub fn stall_not_routed(&self, slot: usize) -> u64 {
        self.stall_not_routed[slot]
    }

    /// Stall cycles attributed to downstream backpressure at `slot`.
    pub fn stall_backpressure(&self, slot: usize) -> u64 {
        self.stall_backpressure[slot]
    }

    /// Total flits recorded across all channels.
    pub fn total_load(&self) -> u64 {
        self.load.iter().sum()
    }

    /// Total stall cycles recorded across all channels.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_not_routed.iter().sum::<u64>() + self.stall_backpressure.iter().sum::<u64>()
    }

    /// The `k` busiest network channels by load, as
    /// `(slot, load, stall_cycles)`, heaviest first.
    pub fn hottest_channels(&self, k: usize) -> Vec<(usize, u64, u64)> {
        let mut v: Vec<(usize, u64, u64)> = (0..self.layout.inj_base)
            .filter(|&s| self.load[s] > 0 || self.stall_cycles(s) > 0)
            .map(|s| (s, self.load[s], self.stall_cycles(s)))
            .collect();
        v.sort_by_key(|&(s, load, stall)| (std::cmp::Reverse((load, stall)), s));
        v.truncate(k);
        v
    }

    /// The `k` channels carrying the most *blocked-cycle mass* — cycles
    /// an occupied buffer failed to advance a flit — as
    /// `(slot, stall_cycles, load)`, heaviest first. Unlike
    /// [`ChannelHeatmap::hottest_channels`] this ranks every slot
    /// (injection backpressure counts as blocked mass too) and orders by
    /// stall time rather than load: it answers *where latency blame
    /// accumulates*, not where traffic flows.
    pub fn blocked_mass_ranking(&self, k: usize) -> Vec<(usize, u64, u64)> {
        let mut v: Vec<(usize, u64, u64)> = (0..self.layout.num_channels)
            .filter(|&s| self.stall_cycles(s) > 0)
            .map(|s| (s, self.stall_cycles(s), self.load[s]))
            .collect();
        v.sort_by_key(|&(s, stall, load)| (std::cmp::Reverse((stall, load)), s));
        v.truncate(k);
        v
    }

    /// Total network-channel load leaving each node's router.
    fn node_loads(&self) -> Vec<u64> {
        let mut per_node = vec![0u64; self.layout.num_nodes];
        for slot in 0..self.layout.inj_base {
            per_node[self.layout.node_of(slot).index()] += self.load[slot];
        }
        per_node
    }

    /// ASCII heatmap of per-node outgoing network load for a 2D layout,
    /// darkest symbol = most loaded. `node_at(x, y)` maps grid position
    /// to the node id (row y printed top-down).
    pub fn render_grid(
        &self,
        width: u16,
        height: u16,
        node_at: impl Fn(u16, u16) -> NodeId,
    ) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let per_node = self.node_loads();
        let max = per_node.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for y in (0..height).rev() {
            for x in 0..width {
                let load = per_node[node_at(x, y).index()];
                let idx = (load * (RAMP.len() as u64 - 1)).div_ceil(max) as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }

    /// JSON: totals plus per-channel entries (non-idle channels only),
    /// each `{"slot", "name", "load", "stall_not_routed",
    /// "stall_backpressure"}`.
    pub fn to_json(&self) -> String {
        let mut entries = String::new();
        let mut first = true;
        for slot in 0..self.layout.num_channels {
            if self.load[slot] == 0 && self.stall_cycles(slot) == 0 {
                continue;
            }
            if !first {
                entries.push(',');
            }
            first = false;
            entries.push_str(&format!(
                "{{\"slot\":{},\"name\":{},\"load\":{},\"stall_not_routed\":{},\"stall_backpressure\":{}}}",
                slot,
                super::json::string(&self.layout.describe(slot)),
                self.load[slot],
                self.stall_not_routed[slot],
                self.stall_backpressure[slot],
            ));
        }
        format!(
            "{{\"total_load\":{},\"total_stall_cycles\":{},\"per_channel\":[{}]}}",
            self.total_load(),
            self.total_stall_cycles(),
            entries
        )
    }
}

impl SimObserver for ChannelHeatmap {
    fn on_flit_advance(
        &mut self,
        _now: u64,
        _from: usize,
        to: Option<usize>,
        _packet: PacketId,
        _is_tail: bool,
    ) {
        if let Some(to) = to {
            self.load[to] += 1;
        }
    }

    fn on_stall(&mut self, _now: u64, slot: usize, _packet: PacketId, reason: StallReason) {
        match reason {
            StallReason::NotRouted => self.stall_not_routed[slot] += 1,
            StallReason::Backpressure => self.stall_backpressure[slot] += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_load_and_stalls() {
        let layout = ChannelLayout::new(4, 2);
        let mut h = ChannelHeatmap::new(layout);
        h.on_flit_advance(1, 0, Some(5), PacketId(0), false);
        h.on_flit_advance(2, 5, Some(9), PacketId(0), true);
        h.on_flit_advance(3, 9, None, PacketId(0), true); // consumed: no load
        h.on_stall(4, 5, PacketId(1), StallReason::NotRouted);
        h.on_stall(5, 5, PacketId(1), StallReason::Backpressure);
        assert_eq!(h.load(5), 1);
        assert_eq!(h.load(9), 1);
        assert_eq!(h.total_load(), 2);
        assert_eq!(h.stall_not_routed(5), 1);
        assert_eq!(h.stall_backpressure(5), 1);
        assert_eq!(h.stall_cycles(5), 2);
        assert_eq!(h.total_stall_cycles(), 2);
        let hot = h.hottest_channels(10);
        assert_eq!(hot[0].0, 5);
        assert!(crate::obs::json::validate(&h.to_json()));
    }

    #[test]
    fn blocked_mass_ranks_by_stall_time() {
        let layout = ChannelLayout::new(4, 2);
        let mut h = ChannelHeatmap::new(layout);
        // Slot 9 carries the most traffic but slot 5 blocks the longest;
        // the blame ranking must put 5 first, the load ranking 9.
        for _ in 0..5 {
            h.on_flit_advance(0, 0, Some(9), PacketId(0), false);
        }
        for c in 0..3 {
            h.on_stall(c, 5, PacketId(1), StallReason::Backpressure);
        }
        h.on_stall(0, 9, PacketId(0), StallReason::NotRouted);
        // Injection slots participate: stalled sources are blame too.
        h.on_stall(0, layout.inj_base, PacketId(2), StallReason::Backpressure);
        let ranked = h.blocked_mass_ranking(10);
        assert_eq!(ranked[0], (5, 3, 0));
        assert_eq!(ranked[1], (9, 1, 5));
        assert_eq!(ranked[2], (layout.inj_base, 1, 0));
        assert_eq!(h.blocked_mass_ranking(1).len(), 1);
        assert_eq!(h.hottest_channels(1)[0].0, 9);
    }

    #[test]
    fn degenerate_1xn_line_mesh_heatmap_still_works() {
        use crate::{LengthDist, Sim, SimConfig};
        use turnroute_routing::DimensionOrder;
        use turnroute_topology::Mesh;
        use turnroute_traffic::Uniform;

        // The degenerate 1xN case: a one-dimensional line of 8 routers.
        // Every turn is impossible, the layout has only dim-0 channels,
        // and the grid collapses to a single row.
        let mesh = Mesh::new(vec![8]);
        let routing = DimensionOrder::new("line", vec![0]);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.1)
            .lengths(LengthDist::Fixed(4))
            .seed(3)
            .warmup_cycles(50)
            .measure_cycles(200)
            .drain_cycles(200)
            .build();
        let layout = ChannelLayout::for_topology(&mesh);
        assert_eq!(layout.inj_base, 8 * 2); // two network slots per node
        let obs = ChannelHeatmap::new(layout);
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
        let report = sim.run();
        assert!(report.delivered_packets > 0);
        let h = sim.observer();
        assert!(h.total_load() > 0);
        // Interior nodes carry load in both directions under uniform
        // traffic; the hottest channel must be a genuine network slot.
        let hot = h.hottest_channels(1);
        assert!(
            hot[0].0 < 16,
            "hot slot {} is not a network channel",
            hot[0].0
        );
        // The grid still renders: one row, eight columns, and at least
        // one cell is non-blank.
        let grid = h.render_grid(8, 1, |x, _| NodeId(u32::from(x)));
        let rows: Vec<&str> = grid.lines().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 8);
        assert!(grid.chars().any(|c| c != ' ' && c != '\n'));
        assert!(crate::obs::json::validate(&h.to_json()));
    }

    #[test]
    fn grid_renders_rows() {
        let layout = ChannelLayout::new(4, 2);
        let mut h = ChannelHeatmap::new(layout);
        // Load node 3's eastward slot heavily.
        for _ in 0..10 {
            h.on_flit_advance(0, 0, Some(3 * 4), PacketId(0), false);
        }
        let grid = h.render_grid(2, 2, |x, y| NodeId(u32::from(y * 2 + x)));
        let rows: Vec<&str> = grid.lines().collect();
        assert_eq!(rows.len(), 2);
        // Node 3 = (x=1, y=1) -> top row, right column is the hot spot.
        assert_eq!(rows[0].len(), 2);
        assert_eq!(&rows[0][1..2], "@");
        assert_eq!(&rows[1][0..1], " ");
    }
}
