//! Invariant sanitizer: a shadow model of channel occupancy that audits
//! the engine's every move.
//!
//! [`InvariantObserver`] maintains its own copy of every channel buffer,
//! fed purely by observer hooks, and cross-checks each event against it:
//!
//! * **flit conservation** — every flit that enters the network (counted
//!   per flit by [`SimObserver::on_flit_source`]) is eventually consumed
//!   at an ejection channel, purged by a timeout, or still buffered; the
//!   three-way sum is re-audited at every
//!   [`SimObserver::on_cycle_end`];
//! * **credit / buffer accounting** — no buffer ever exceeds the
//!   configured depth, and a buffer only ever holds flits of a single
//!   packet (the wormhole ownership invariant);
//! * **no teleport** — a flit can only leave the *front* of the buffer it
//!   actually occupies, in FIFO order, and each channel moves at most one
//!   flit per cycle in each direction (the unit-bandwidth invariant).
//!
//! The observer never panics; violations accumulate as human-readable
//! strings so a harness can choose between [`InvariantObserver::is_clean`]
//! for a boolean gate and [`InvariantObserver::assert_clean`] in tests.
//! Because it implements [`SimObserver`], it runs against both the
//! wormhole engine (`Sim::with_observer`) and the virtual-channel engine
//! (`VcSim::with_observer`), and composes with other collectors via the
//! tuple impl.

use std::collections::VecDeque;

use super::{ChannelLayout, SimObserver};
use crate::PacketId;

/// Cap on recorded violation messages; past this, only the count grows.
const MAX_RECORDED: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShadowFlit {
    packet: u32,
    is_tail: bool,
}

/// Counters summarizing what the sanitizer audited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantSummary {
    /// Flits that entered the network from a processor.
    pub sourced_flits: u64,
    /// Flits consumed at an ejection channel.
    pub consumed_flits: u64,
    /// Flits removed by packet purges (timeout retry or drop).
    pub purged_flits: u64,
    /// Flits currently buffered somewhere in the shadow network.
    pub in_flight_flits: u64,
    /// Cycles whose end-of-cycle conservation audit ran.
    pub audited_cycles: u64,
    /// Total violations detected (recorded messages are capped).
    pub violations: u64,
}

/// Shadow-state sanitizer for the simulation engines; see the module docs
/// for the invariants it enforces.
#[derive(Debug, Clone)]
pub struct InvariantObserver {
    layout: ChannelLayout,
    depth: usize,
    shadow: Vec<VecDeque<ShadowFlit>>,
    /// Cycle stamp of the last flit pushed into / popped from each slot
    /// (`u64::MAX` = never), for the one-flit-per-cycle check.
    last_push: Vec<u64>,
    last_pop: Vec<u64>,
    summary: InvariantSummary,
    recorded: Vec<String>,
}

impl InvariantObserver {
    /// Sanitizer for an engine with `layout`'s slot numbering and
    /// `buffer_depth`-flit channel buffers.
    ///
    /// For the wormhole engine pass [`ChannelLayout::for_topology`]; the
    /// virtual-channel engine exposes its own numbering via
    /// `VcSim::channel_layout`.
    pub fn new(layout: ChannelLayout, buffer_depth: u32) -> InvariantObserver {
        InvariantObserver {
            layout,
            depth: buffer_depth as usize,
            shadow: vec![VecDeque::new(); layout.num_channels],
            last_push: vec![u64::MAX; layout.num_channels],
            last_pop: vec![u64::MAX; layout.num_channels],
            summary: InvariantSummary::default(),
            recorded: Vec::new(),
        }
    }

    /// Whether any invariant has been violated so far.
    pub fn is_clean(&self) -> bool {
        self.summary.violations == 0
    }

    /// The recorded violation messages (capped at a fixed number; the
    /// [`InvariantSummary::violations`] counter is exact).
    pub fn violations(&self) -> &[String] {
        &self.recorded
    }

    /// Audit counters so far.
    pub fn summary(&self) -> InvariantSummary {
        self.summary
    }

    /// Panic with every recorded violation if any invariant failed — the
    /// test-suite form of the gate.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "invariant sanitizer found {} violation(s):\n{}",
            self.summary.violations,
            self.recorded.join("\n")
        );
    }

    fn record(&mut self, msg: String) {
        self.summary.violations += 1;
        if self.recorded.len() < MAX_RECORDED {
            self.recorded.push(msg);
        }
    }

    fn name(&self, slot: usize) -> String {
        self.layout.describe(slot)
    }

    /// Push a flit into `slot`'s shadow buffer, checking depth, single
    /// ownership, and the one-push-per-cycle bandwidth limit.
    fn shadow_push(&mut self, now: u64, slot: usize, flit: ShadowFlit) {
        if slot >= self.shadow.len() {
            self.record(format!("cycle {now}: flit pushed into unknown slot {slot}"));
            return;
        }
        if self.last_push[slot] == now {
            self.record(format!(
                "cycle {now}: two flits entered {} in one cycle (unit bandwidth violated)",
                self.name(slot)
            ));
        }
        self.last_push[slot] = now;
        if self.shadow[slot].len() >= self.depth {
            self.record(format!(
                "cycle {now}: buffer overflow at {}: {} flits buffered, depth {} (credit accounting violated)",
                self.name(slot),
                self.shadow[slot].len(),
                self.depth
            ));
        }
        if let Some(resident) = self.shadow[slot].front() {
            if resident.packet != flit.packet {
                self.record(format!(
                    "cycle {now}: {} holds flits of packet {} but received a flit of packet {} (wormhole ownership violated)",
                    self.name(slot),
                    resident.packet,
                    flit.packet
                ));
            }
        }
        self.shadow[slot].push_back(flit);
    }

    /// Pop the flit of `packet` from the front of `slot`'s shadow buffer,
    /// checking FIFO order and the one-pop-per-cycle bandwidth limit.
    fn shadow_pop(&mut self, now: u64, slot: usize, packet: u32, is_tail: bool) -> bool {
        if slot >= self.shadow.len() {
            self.record(format!("cycle {now}: flit left unknown slot {slot}"));
            return false;
        }
        if self.last_pop[slot] == now {
            self.record(format!(
                "cycle {now}: two flits left {} in one cycle (unit bandwidth violated)",
                self.name(slot)
            ));
        }
        self.last_pop[slot] = now;
        match self.shadow[slot].front().copied() {
            None => {
                self.record(format!(
                    "cycle {now}: flit of packet {packet} left empty buffer {} (teleport)",
                    self.name(slot)
                ));
                false
            }
            Some(front) if front.packet != packet || front.is_tail != is_tail => {
                self.record(format!(
                    "cycle {now}: {} advanced packet {packet} (tail={is_tail}) but its front flit is packet {} (tail={}) (FIFO order violated)",
                    self.name(slot),
                    front.packet,
                    front.is_tail
                ));
                false
            }
            Some(_) => {
                self.shadow[slot].pop_front();
                true
            }
        }
    }
}

impl SimObserver for InvariantObserver {
    fn on_flit_source(&mut self, now: u64, slot: usize, packet: PacketId, is_tail: bool) {
        if slot < self.shadow.len() && !self.layout.is_injection(slot) {
            self.record(format!(
                "cycle {now}: packet {} sourced a flit into non-injection slot {}",
                packet.0,
                self.name(slot)
            ));
        }
        self.shadow_push(
            now,
            slot,
            ShadowFlit {
                packet: packet.0,
                is_tail,
            },
        );
        self.summary.sourced_flits += 1;
        self.summary.in_flight_flits += 1;
    }

    fn on_flit_advance(&mut self, now: u64, from: usize, to: Option<usize>, p: PacketId, t: bool) {
        let popped = self.shadow_pop(now, from, p.0, t);
        match to {
            Some(o) => self.shadow_push(
                now,
                o,
                ShadowFlit {
                    packet: p.0,
                    is_tail: t,
                },
            ),
            None => {
                if from < self.shadow.len() && !self.layout.is_ejection(from) {
                    self.record(format!(
                        "cycle {now}: packet {} consumed from non-ejection slot {}",
                        p.0,
                        self.name(from)
                    ));
                }
                self.summary.consumed_flits += 1;
                if popped {
                    self.summary.in_flight_flits -= 1;
                }
            }
        }
    }

    fn on_purge(&mut self, now: u64, packet: PacketId) {
        let _ = now;
        let mut removed = 0u64;
        for buf in &mut self.shadow {
            let before = buf.len();
            buf.retain(|f| f.packet != packet.0);
            removed += (before - buf.len()) as u64;
        }
        self.summary.purged_flits += removed;
        self.summary.in_flight_flits -= removed.min(self.summary.in_flight_flits);
    }

    fn on_cycle_end(&mut self, now: u64) {
        self.summary.audited_cycles += 1;
        let buffered: u64 = self.shadow.iter().map(|b| b.len() as u64).sum();
        if buffered != self.summary.in_flight_flits {
            self.record(format!(
                "cycle {now}: in-flight counter {} disagrees with {} buffered shadow flits",
                self.summary.in_flight_flits, buffered
            ));
            self.summary.in_flight_flits = buffered;
        }
        let s = self.summary;
        let accounted = s.consumed_flits + s.purged_flits + s.in_flight_flits;
        if s.sourced_flits != accounted {
            self.record(format!(
                "cycle {now}: flit conservation violated: {} sourced but {} accounted \
                 ({} consumed + {} purged + {} in flight)",
                s.sourced_flits, accounted, s.consumed_flits, s.purged_flits, s.in_flight_flits
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> InvariantObserver {
        InvariantObserver::new(ChannelLayout::new(4, 2), 1)
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut o = obs();
        let l = ChannelLayout::new(4, 2);
        let (inj, ej) = (l.inj_base, l.ej_base);
        // A 2-flit packet: source both flits, advance them to ejection,
        // consume them.
        o.on_flit_source(0, inj, PacketId(7), false);
        o.on_flit_advance(1, inj, Some(ej), PacketId(7), false);
        o.on_flit_source(1, inj, PacketId(7), true);
        o.on_flit_advance(2, ej, None, PacketId(7), false);
        o.on_flit_advance(2, inj, Some(ej), PacketId(7), true);
        o.on_flit_advance(3, ej, None, PacketId(7), true);
        o.on_cycle_end(3);
        o.assert_clean();
        let s = o.summary();
        assert_eq!(s.sourced_flits, 2);
        assert_eq!(s.consumed_flits, 2);
        assert_eq!(s.in_flight_flits, 0);
    }

    #[test]
    fn teleport_is_flagged() {
        let mut o = obs();
        // Flit leaves a buffer it never entered.
        o.on_flit_advance(5, 0, Some(1), PacketId(3), false);
        assert!(!o.is_clean());
        assert!(
            o.violations()[0].contains("teleport"),
            "{:?}",
            o.violations()
        );
    }

    #[test]
    fn overflow_and_double_move_are_flagged() {
        let mut o = obs();
        let inj = ChannelLayout::new(4, 2).inj_base;
        o.on_flit_source(0, inj, PacketId(1), false);
        // Depth is 1: a second resident flit overflows.
        o.on_flit_source(1, inj, PacketId(1), false);
        assert_eq!(o.summary().violations, 1);
        assert!(o.violations()[0].contains("overflow"));
        // Two pops from one slot in the same cycle violate unit bandwidth.
        o.on_flit_advance(2, inj, Some(0), PacketId(1), false);
        o.on_flit_advance(2, inj, Some(1), PacketId(1), false);
        assert!(o.violations().iter().any(|v| v.contains("unit bandwidth")));
    }

    #[test]
    fn conservation_audit_catches_lost_flits() {
        let mut o = obs();
        let inj = ChannelLayout::new(4, 2).inj_base;
        o.on_flit_source(0, inj, PacketId(1), true);
        // Tamper with the shadow state to simulate an unobserved loss.
        o.shadow[inj].clear();
        o.on_cycle_end(0);
        assert!(!o.is_clean());
        assert!(o.violations().iter().any(|v| v.contains("conservation")));
    }

    #[test]
    fn purge_reconciles_shadow_state() {
        let mut o = obs();
        let inj = ChannelLayout::new(4, 2).inj_base;
        o.on_flit_source(0, inj, PacketId(9), false);
        o.on_purge(1, PacketId(9));
        o.on_cycle_end(1);
        o.assert_clean();
        assert_eq!(o.summary().purged_flits, 1);
        assert_eq!(o.summary().in_flight_flits, 0);
    }
}
