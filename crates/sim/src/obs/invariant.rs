//! Invariant sanitizer: a shadow model of channel occupancy that audits
//! the engine's every move.
//!
//! [`InvariantObserver`] maintains its own copy of every channel buffer,
//! fed purely by observer hooks, and cross-checks each event against it:
//!
//! * **flit conservation** — every flit that enters the network (counted
//!   per flit by [`SimObserver::on_flit_source`]) is eventually consumed
//!   at an ejection channel, purged by a timeout, or still buffered; the
//!   three-way sum is re-audited at every
//!   [`SimObserver::on_cycle_end`];
//! * **credit / buffer accounting** — no buffer ever exceeds the
//!   configured depth, and a buffer only ever holds flits of a single
//!   packet (the wormhole ownership invariant);
//! * **no teleport** — a flit can only leave the *front* of the buffer it
//!   actually occupies, in FIFO order, and each channel moves at most one
//!   flit per cycle in each direction (the unit-bandwidth invariant);
//! * **latency blame identity** — every [`SimObserver::on_blame`]
//!   decomposition must sum exactly to the delivery's latency, and each
//!   component is re-derived from the raw hook stream: the queue share
//!   from the injection stamp, the service + misroute share from distinct
//!   cycles with flit movement, the blocked share as the in-network
//!   remainder.
//!
//! The observer never panics; violations accumulate as human-readable
//! strings so a harness can choose between [`InvariantObserver::is_clean`]
//! for a boolean gate and [`InvariantObserver::assert_clean`] in tests.
//! Because it implements [`SimObserver`], it runs against both the
//! wormhole engine (`Sim::with_observer`) and the virtual-channel engine
//! (`VcSim::with_observer`), and composes with other collectors via the
//! tuple impl.

use std::collections::{HashMap, VecDeque};

use super::{ChannelLayout, PacketBlame, SimObserver};
use crate::PacketId;
use turnroute_topology::NodeId;

/// Cap on recorded violation messages; past this, only the count grows.
const MAX_RECORDED: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShadowFlit {
    packet: u32,
    is_tail: bool,
}

/// Per-packet state for re-deriving the blame decomposition from raw
/// hooks: when the packet (last) started injecting, the last cycle any of
/// its flits moved, and how many distinct movement cycles it has seen.
#[derive(Debug, Clone, Copy)]
struct BlameShadow {
    injected: u64,
    last_move: u64,
    progress: u64,
}

/// Counters summarizing what the sanitizer audited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantSummary {
    /// Flits that entered the network from a processor.
    pub sourced_flits: u64,
    /// Flits consumed at an ejection channel.
    pub consumed_flits: u64,
    /// Flits removed by packet purges (timeout retry or drop).
    pub purged_flits: u64,
    /// Flits currently buffered somewhere in the shadow network.
    pub in_flight_flits: u64,
    /// Cycles whose end-of-cycle conservation audit ran.
    pub audited_cycles: u64,
    /// Delivered-packet blame decompositions audited against the raw
    /// hook stream.
    pub blamed_packets: u64,
    /// Total violations detected (recorded messages are capped).
    pub violations: u64,
}

/// Shadow-state sanitizer for the simulation engines; see the module docs
/// for the invariants it enforces.
#[derive(Debug, Clone)]
pub struct InvariantObserver {
    layout: ChannelLayout,
    depth: usize,
    shadow: Vec<VecDeque<ShadowFlit>>,
    /// Cycle stamp of the last flit pushed into / popped from each slot
    /// (`u64::MAX` = never), for the one-flit-per-cycle check.
    last_push: Vec<u64>,
    last_pop: Vec<u64>,
    /// In-flight packets' blame shadows, keyed by packet id; entries are
    /// created at injection and retired at blame audit or purge.
    blame_shadow: HashMap<u32, BlameShadow>,
    /// The most recent delivery `(packet, cycle, latency)`, held for the
    /// immediately following blame decomposition.
    last_deliver: Option<(u32, u64, u64)>,
    summary: InvariantSummary,
    recorded: Vec<String>,
}

impl InvariantObserver {
    /// Sanitizer for an engine with `layout`'s slot numbering and
    /// `buffer_depth`-flit channel buffers.
    ///
    /// For the wormhole engine pass [`ChannelLayout::for_topology`]; the
    /// virtual-channel engine exposes its own numbering via
    /// `VcSim::channel_layout`.
    pub fn new(layout: ChannelLayout, buffer_depth: u32) -> InvariantObserver {
        InvariantObserver {
            layout,
            depth: buffer_depth as usize,
            shadow: vec![VecDeque::new(); layout.num_channels],
            last_push: vec![u64::MAX; layout.num_channels],
            last_pop: vec![u64::MAX; layout.num_channels],
            blame_shadow: HashMap::new(),
            last_deliver: None,
            summary: InvariantSummary::default(),
            recorded: Vec::new(),
        }
    }

    /// Whether any invariant has been violated so far.
    pub fn is_clean(&self) -> bool {
        self.summary.violations == 0
    }

    /// The recorded violation messages (capped at a fixed number; the
    /// [`InvariantSummary::violations`] counter is exact).
    pub fn violations(&self) -> &[String] {
        &self.recorded
    }

    /// Audit counters so far.
    pub fn summary(&self) -> InvariantSummary {
        self.summary
    }

    /// Panic with every recorded violation if any invariant failed — the
    /// test-suite form of the gate.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "invariant sanitizer found {} violation(s):\n{}",
            self.summary.violations,
            self.recorded.join("\n")
        );
    }

    fn record(&mut self, msg: String) {
        self.summary.violations += 1;
        if self.recorded.len() < MAX_RECORDED {
            self.recorded.push(msg);
        }
    }

    fn name(&self, slot: usize) -> String {
        self.layout.describe(slot)
    }

    /// Push a flit into `slot`'s shadow buffer, checking depth, single
    /// ownership, and the one-push-per-cycle bandwidth limit.
    fn shadow_push(&mut self, now: u64, slot: usize, flit: ShadowFlit) {
        if slot >= self.shadow.len() {
            self.record(format!("cycle {now}: flit pushed into unknown slot {slot}"));
            return;
        }
        if self.last_push[slot] == now {
            self.record(format!(
                "cycle {now}: two flits entered {} in one cycle (unit bandwidth violated)",
                self.name(slot)
            ));
        }
        self.last_push[slot] = now;
        if self.shadow[slot].len() >= self.depth {
            self.record(format!(
                "cycle {now}: buffer overflow at {}: {} flits buffered, depth {} (credit accounting violated)",
                self.name(slot),
                self.shadow[slot].len(),
                self.depth
            ));
        }
        if let Some(resident) = self.shadow[slot].front() {
            if resident.packet != flit.packet {
                self.record(format!(
                    "cycle {now}: {} holds flits of packet {} but received a flit of packet {} (wormhole ownership violated)",
                    self.name(slot),
                    resident.packet,
                    flit.packet
                ));
            }
        }
        self.shadow[slot].push_back(flit);
    }

    /// Pop the flit of `packet` from the front of `slot`'s shadow buffer,
    /// checking FIFO order and the one-pop-per-cycle bandwidth limit.
    fn shadow_pop(&mut self, now: u64, slot: usize, packet: u32, is_tail: bool) -> bool {
        if slot >= self.shadow.len() {
            self.record(format!("cycle {now}: flit left unknown slot {slot}"));
            return false;
        }
        if self.last_pop[slot] == now {
            self.record(format!(
                "cycle {now}: two flits left {} in one cycle (unit bandwidth violated)",
                self.name(slot)
            ));
        }
        self.last_pop[slot] = now;
        match self.shadow[slot].front().copied() {
            None => {
                self.record(format!(
                    "cycle {now}: flit of packet {packet} left empty buffer {} (teleport)",
                    self.name(slot)
                ));
                false
            }
            Some(front) if front.packet != packet || front.is_tail != is_tail => {
                self.record(format!(
                    "cycle {now}: {} advanced packet {packet} (tail={is_tail}) but its front flit is packet {} (tail={}) (FIFO order violated)",
                    self.name(slot),
                    front.packet,
                    front.is_tail
                ));
                false
            }
            Some(_) => {
                self.shadow[slot].pop_front();
                true
            }
        }
    }
}

impl SimObserver for InvariantObserver {
    fn on_inject(&mut self, now: u64, packet: PacketId, _src: NodeId, _dst: NodeId, _len: u32) {
        // A retry re-fires this hook; overwriting restarts the in-network
        // clock, matching the engine's own counter reset (the failed
        // attempt folds into the queue share).
        self.blame_shadow.insert(
            packet.0,
            BlameShadow {
                injected: now,
                last_move: u64::MAX,
                progress: 0,
            },
        );
    }

    fn on_flit_source(&mut self, now: u64, slot: usize, packet: PacketId, is_tail: bool) {
        if slot < self.shadow.len() && !self.layout.is_injection(slot) {
            self.record(format!(
                "cycle {now}: packet {} sourced a flit into non-injection slot {}",
                packet.0,
                self.name(slot)
            ));
        }
        self.shadow_push(
            now,
            slot,
            ShadowFlit {
                packet: packet.0,
                is_tail,
            },
        );
        self.summary.sourced_flits += 1;
        self.summary.in_flight_flits += 1;
    }

    fn on_flit_advance(&mut self, now: u64, from: usize, to: Option<usize>, p: PacketId, t: bool) {
        if let Some(b) = self.blame_shadow.get_mut(&p.0) {
            if b.last_move != now {
                b.last_move = now;
                b.progress += 1;
            }
        }
        let popped = self.shadow_pop(now, from, p.0, t);
        match to {
            Some(o) => self.shadow_push(
                now,
                o,
                ShadowFlit {
                    packet: p.0,
                    is_tail: t,
                },
            ),
            None => {
                if from < self.shadow.len() && !self.layout.is_ejection(from) {
                    self.record(format!(
                        "cycle {now}: packet {} consumed from non-ejection slot {}",
                        p.0,
                        self.name(from)
                    ));
                }
                self.summary.consumed_flits += 1;
                if popped {
                    self.summary.in_flight_flits -= 1;
                }
            }
        }
    }

    fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, _hops: u32) {
        self.last_deliver = Some((packet.0, now, latency));
    }

    fn on_blame(&mut self, now: u64, packet: PacketId, blame: PacketBlame) {
        self.summary.blamed_packets += 1;
        let Some((pid, dnow, latency)) = self.last_deliver.take() else {
            self.record(format!(
                "cycle {now}: blame for packet {} without a preceding delivery",
                packet.0
            ));
            return;
        };
        if pid != packet.0 || dnow != now {
            self.record(format!(
                "cycle {now}: blame for packet {} does not match the last delivery \
                 (packet {pid} at cycle {dnow})",
                packet.0
            ));
            return;
        }
        if blame.total() != latency {
            self.record(format!(
                "cycle {now}: blame identity violated for packet {}: components sum to {} \
                 but latency is {latency}",
                packet.0,
                blame.total()
            ));
        }
        // Re-derive each component from the raw hook stream. All checks
        // are phrased as additions so a corrupt decomposition cannot
        // underflow the audit itself.
        let Some(shadow) = self.blame_shadow.remove(&packet.0) else {
            self.record(format!(
                "cycle {now}: blame for packet {} which was never injected",
                packet.0
            ));
            return;
        };
        let network = now.saturating_sub(shadow.injected);
        if blame.queue_cycles + network != latency {
            self.record(format!(
                "cycle {now}: packet {}'s queue share is {} but latency {latency} minus \
                 {network} in-network cycles leaves {}",
                packet.0,
                blame.queue_cycles,
                latency.saturating_sub(network)
            ));
        }
        if blame.service_cycles + blame.misroute_cycles != shadow.progress {
            self.record(format!(
                "cycle {now}: packet {} moved flits on {} distinct cycles but blame claims \
                 {} service + {} misroute",
                packet.0, shadow.progress, blame.service_cycles, blame.misroute_cycles
            ));
        }
        if blame.blocked_cycles + shadow.progress != network {
            self.record(format!(
                "cycle {now}: packet {}'s blocked share is {} but {network} in-network cycles \
                 minus {} movement cycles leaves {}",
                packet.0,
                blame.blocked_cycles,
                shadow.progress,
                network.saturating_sub(shadow.progress)
            ));
        }
    }

    fn on_purge(&mut self, now: u64, packet: PacketId) {
        let _ = now;
        // The engine resets its per-packet blame counters on retry and
        // re-fires `on_inject` if the packet re-enters; dropping the
        // shadow here mirrors both the retry and the drop path.
        self.blame_shadow.remove(&packet.0);
        let mut removed = 0u64;
        for buf in &mut self.shadow {
            let before = buf.len();
            buf.retain(|f| f.packet != packet.0);
            removed += (before - buf.len()) as u64;
        }
        self.summary.purged_flits += removed;
        self.summary.in_flight_flits -= removed.min(self.summary.in_flight_flits);
    }

    fn on_cycle_end(&mut self, now: u64) {
        self.summary.audited_cycles += 1;
        let buffered: u64 = self.shadow.iter().map(|b| b.len() as u64).sum();
        if buffered != self.summary.in_flight_flits {
            self.record(format!(
                "cycle {now}: in-flight counter {} disagrees with {} buffered shadow flits",
                self.summary.in_flight_flits, buffered
            ));
            self.summary.in_flight_flits = buffered;
        }
        let s = self.summary;
        let accounted = s.consumed_flits + s.purged_flits + s.in_flight_flits;
        if s.sourced_flits != accounted {
            self.record(format!(
                "cycle {now}: flit conservation violated: {} sourced but {} accounted \
                 ({} consumed + {} purged + {} in flight)",
                s.sourced_flits, accounted, s.consumed_flits, s.purged_flits, s.in_flight_flits
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> InvariantObserver {
        InvariantObserver::new(ChannelLayout::new(4, 2), 1)
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut o = obs();
        let l = ChannelLayout::new(4, 2);
        let (inj, ej) = (l.inj_base, l.ej_base);
        // A 2-flit packet: source both flits, advance them to ejection,
        // consume them.
        o.on_flit_source(0, inj, PacketId(7), false);
        o.on_flit_advance(1, inj, Some(ej), PacketId(7), false);
        o.on_flit_source(1, inj, PacketId(7), true);
        o.on_flit_advance(2, ej, None, PacketId(7), false);
        o.on_flit_advance(2, inj, Some(ej), PacketId(7), true);
        o.on_flit_advance(3, ej, None, PacketId(7), true);
        o.on_cycle_end(3);
        o.assert_clean();
        let s = o.summary();
        assert_eq!(s.sourced_flits, 2);
        assert_eq!(s.consumed_flits, 2);
        assert_eq!(s.in_flight_flits, 0);
    }

    #[test]
    fn teleport_is_flagged() {
        let mut o = obs();
        // Flit leaves a buffer it never entered.
        o.on_flit_advance(5, 0, Some(1), PacketId(3), false);
        assert!(!o.is_clean());
        assert!(
            o.violations()[0].contains("teleport"),
            "{:?}",
            o.violations()
        );
    }

    #[test]
    fn overflow_and_double_move_are_flagged() {
        let mut o = obs();
        let inj = ChannelLayout::new(4, 2).inj_base;
        o.on_flit_source(0, inj, PacketId(1), false);
        // Depth is 1: a second resident flit overflows.
        o.on_flit_source(1, inj, PacketId(1), false);
        assert_eq!(o.summary().violations, 1);
        assert!(o.violations()[0].contains("overflow"));
        // Two pops from one slot in the same cycle violate unit bandwidth.
        o.on_flit_advance(2, inj, Some(0), PacketId(1), false);
        o.on_flit_advance(2, inj, Some(1), PacketId(1), false);
        assert!(o.violations().iter().any(|v| v.contains("unit bandwidth")));
    }

    #[test]
    fn conservation_audit_catches_lost_flits() {
        let mut o = obs();
        let inj = ChannelLayout::new(4, 2).inj_base;
        o.on_flit_source(0, inj, PacketId(1), true);
        // Tamper with the shadow state to simulate an unobserved loss.
        o.shadow[inj].clear();
        o.on_cycle_end(0);
        assert!(!o.is_clean());
        assert!(o.violations().iter().any(|v| v.contains("conservation")));
    }

    #[test]
    fn consistent_blame_stream_stays_clean() {
        let mut o = obs();
        let l = ChannelLayout::new(4, 2);
        let (inj, ej) = (l.inj_base, l.ej_base);
        // Packet 7, created cycle 0, injected cycle 2, single flit.
        // Moves on cycles 3 (inj -> ej) and 5 (consumed): progress 2,
        // network 3, blocked 1, queue 2, latency 5.
        o.on_inject(2, PacketId(7), NodeId(0), NodeId(1), 1);
        o.on_flit_source(2, inj, PacketId(7), true);
        o.on_flit_advance(3, inj, Some(ej), PacketId(7), true);
        o.on_flit_advance(5, ej, None, PacketId(7), true);
        o.on_deliver(5, PacketId(7), 5, 1);
        o.on_blame(
            5,
            PacketId(7),
            PacketBlame {
                queue_cycles: 2,
                blocked_cycles: 1,
                service_cycles: 2,
                misroute_cycles: 0,
            },
        );
        o.on_cycle_end(5);
        o.assert_clean();
        assert_eq!(o.summary().blamed_packets, 1);
    }

    #[test]
    fn inconsistent_blame_is_flagged() {
        let mut o = obs();
        let l = ChannelLayout::new(4, 2);
        let (inj, ej) = (l.inj_base, l.ej_base);
        o.on_inject(2, PacketId(7), NodeId(0), NodeId(1), 1);
        o.on_flit_source(2, inj, PacketId(7), true);
        o.on_flit_advance(3, inj, Some(ej), PacketId(7), true);
        o.on_flit_advance(5, ej, None, PacketId(7), true);
        o.on_deliver(5, PacketId(7), 5, 1);
        // Same totals, but a cycle of blocked time misattributed to
        // service: the movement-derived check must catch it.
        o.on_blame(
            5,
            PacketId(7),
            PacketBlame {
                queue_cycles: 2,
                blocked_cycles: 0,
                service_cycles: 3,
                misroute_cycles: 0,
            },
        );
        assert!(!o.is_clean());
        assert!(
            o.violations().iter().any(|v| v.contains("moved flits")),
            "{:?}",
            o.violations()
        );
        // And a decomposition that does not even sum to the latency.
        let mut o = obs();
        o.on_inject(0, PacketId(1), NodeId(0), NodeId(1), 1);
        o.on_deliver(4, PacketId(1), 4, 1);
        o.on_blame(4, PacketId(1), PacketBlame::default());
        assert!(o
            .violations()
            .iter()
            .any(|v| v.contains("blame identity violated")));
    }

    #[test]
    fn purge_reconciles_shadow_state() {
        let mut o = obs();
        let inj = ChannelLayout::new(4, 2).inj_base;
        o.on_flit_source(0, inj, PacketId(9), false);
        o.on_purge(1, PacketId(9));
        o.on_cycle_end(1);
        o.assert_clean();
        assert_eq!(o.summary().purged_flits, 1);
        assert_eq!(o.summary().in_flight_flits, 0);
    }
}
