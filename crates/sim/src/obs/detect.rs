//! Early-warning watermark detectors over the telemetry frame stream.
//!
//! A [`DetectorBank`] consumes sealed [`TelemetryFrame`]s in order and
//! emits [`Alert`]s when congestion signatures persist across consecutive
//! windows — *ahead* of the terminal symptoms (deadlock detection,
//! lifetime timeouts) those signatures precede. Three detectors:
//!
//! * **credit starvation** — one channel blocked for ≥ a fraction of the
//!   window, for several consecutive windows: a worm is pinned and
//!   everything behind it is accumulating.
//! * **blocked-mass growth** — the total blocked-cycle mass strictly
//!   rising across consecutive windows above a floor: the congestion
//!   tree is expanding instead of draining.
//! * **delivered-fraction sag** — deliveries per window falling under a
//!   fraction of injections while injection pressure persists: the
//!   network has stopped keeping up with offered load.
//!
//! Detectors are pure functions of the frame stream, so they replay
//! deterministically: the alerts a recorded run logged are exactly the
//! alerts a fresh bank re-derives from the replayed frames.
//!
//! # Trust boundary
//!
//! Like every replay-derived statistic, alerts are evidence about the
//! *hook stream*, not the engine: a bank re-driven from a log can only
//! be as honest as the recorder. Thresholds are tuned to stay silent on
//! clean sustainable-load runs and to fire during the approach to
//! saturation collapse; they are watermarks, not proofs — a silent bank
//! does not certify liveness (the certificate machinery does that).

use super::frame::TelemetryFrame;

/// Which detector tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// One channel spent ≥ the threshold fraction of the window blocked,
    /// for the configured number of consecutive windows.
    CreditStarvation,
    /// Total blocked-cycle mass rose strictly across the configured
    /// number of consecutive windows, ending above the floor.
    BlockedMassGrowth,
    /// Deliveries fell under the threshold fraction of injections for
    /// the configured number of consecutive windows.
    DeliveredSag,
}

impl AlertKind {
    /// Stable lowercase name (used in JSON exports and log rendering).
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::CreditStarvation => "credit_starvation",
            AlertKind::BlockedMassGrowth => "blocked_mass_growth",
            AlertKind::DeliveredSag => "delivered_sag",
        }
    }

    /// Stable wire code for the log codec.
    pub fn code(self) -> u64 {
        match self {
            AlertKind::CreditStarvation => 0,
            AlertKind::BlockedMassGrowth => 1,
            AlertKind::DeliveredSag => 2,
        }
    }

    /// Inverse of [`AlertKind::code`].
    pub fn from_code(code: u64) -> Option<AlertKind> {
        match code {
            0 => Some(AlertKind::CreditStarvation),
            1 => Some(AlertKind::BlockedMassGrowth),
            2 => Some(AlertKind::DeliveredSag),
            _ => None,
        }
    }
}

impl std::fmt::Display for AlertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One early-warning event, anchored to the frame that tripped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// The detector that fired.
    pub kind: AlertKind,
    /// Sequence number of the tripping frame.
    pub seq: u64,
    /// Last cycle of the tripping frame's window.
    pub cycle: u64,
    /// The implicated channel slot (starvation only).
    pub slot: Option<usize>,
    /// The observed metric: blocked fraction in ppm (starvation),
    /// blocked-cycle mass (growth), delivered fraction in ppm (sag).
    pub value: u64,
    /// The configured threshold the metric crossed.
    pub threshold: u64,
}

impl Alert {
    /// The alert as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"seq\":{},\"cycle\":{},\"slot\":{},\"value\":{},\"threshold\":{}}}",
            self.kind.name(),
            self.seq,
            self.cycle,
            match self.slot {
                Some(s) => s.to_string(),
                None => "null".into(),
            },
            self.value,
            self.threshold
        )
    }
}

/// Detector thresholds. The defaults are tuned to stay silent on clean
/// sustainable-load runs (delivered fraction ≈ 1) and to fire during the
/// approach to saturation collapse, well before timeout/deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Starvation: blocked fraction of the window, in ppm.
    pub starvation_ppm: u64,
    /// Starvation: consecutive qualifying windows required.
    pub starvation_windows: u32,
    /// Growth: consecutive strict increases of blocked mass required.
    pub slope_windows: u32,
    /// Growth: the final mass must also be at least this many
    /// blocked cycles (suppresses trivial 1→2→3 ramps in light runs).
    pub slope_floor: u64,
    /// Sag: delivered/injected floor, in ppm.
    pub sag_ppm: u64,
    /// Sag: consecutive qualifying windows required.
    pub sag_windows: u32,
    /// Sag: windows with fewer injections than this are ignored (drain
    /// phases and trickle loads cannot sag).
    pub sag_min_injected: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            starvation_ppm: 900_000,
            starvation_windows: 3,
            slope_windows: 3,
            slope_floor: 512,
            sag_ppm: 500_000,
            sag_windows: 3,
            sag_min_injected: 16,
        }
    }
}

impl DetectorConfig {
    /// Thresholds scaled to a network and frame cadence.
    ///
    /// The defaults suit the small canonical CI scenario. On larger
    /// meshes with long wormhole packets, healthy runs show *bursty*
    /// per-window blocked mass — one stalled multi-flit packet can hold
    /// a channel for most of a window — so the growth floor scales with
    /// total channel-cycles per window (one-eighth of them blocked) and
    /// both persistence streaks lengthen. Saturation collapse blows past
    /// these within a few windows; transient congestion does not.
    pub fn for_network(num_channels: usize, cadence: u64) -> DetectorConfig {
        DetectorConfig {
            starvation_windows: 5,
            slope_windows: 4,
            slope_floor: ((num_channels as u64) * cadence / 8).max(512),
            ..DetectorConfig::default()
        }
    }
}

/// Watermark detectors over a frame stream. Feed frames in sequence
/// order with [`DetectorBank::push`]; each call returns the alerts that
/// frame tripped (usually none). A detector that fires re-arms — its
/// streak restarts — so a long collapse produces a bounded alert train,
/// not one alert per frame.
#[derive(Debug, Clone)]
pub struct DetectorBank {
    cfg: DetectorConfig,
    starve_streak: Vec<u32>,
    blocked_scratch: Vec<u64>,
    slope_streak: u32,
    last_mass: Option<u64>,
    sag_streak: u32,
    alerts_emitted: u64,
}

impl DetectorBank {
    /// A bank with default thresholds over `num_channels` slots.
    pub fn new(num_channels: usize) -> DetectorBank {
        DetectorBank::with_config(num_channels, DetectorConfig::default())
    }

    /// A bank with explicit thresholds.
    pub fn with_config(num_channels: usize, cfg: DetectorConfig) -> DetectorBank {
        DetectorBank {
            cfg,
            starve_streak: vec![0; num_channels],
            blocked_scratch: vec![0; num_channels],
            slope_streak: 0,
            last_mass: None,
            sag_streak: 0,
            alerts_emitted: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Total alerts emitted so far.
    pub fn alerts_emitted(&self) -> u64 {
        self.alerts_emitted
    }

    /// Consume one frame; returns the alerts it tripped, starvation
    /// (slot-ascending) first, then growth, then sag — a deterministic
    /// order, so recorded and replayed alert streams compare bytewise.
    pub fn push(&mut self, frame: &TelemetryFrame) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let window = frame.window_len();

        // Credit starvation: per-channel persistence. Growth is driven by
        // the frame content itself, so a bank re-driven from a replayed
        // frame stream sizes (and therefore fires) identically.
        if let Some(max_slot) = frame.channels.iter().map(|c| c.slot).max() {
            if max_slot >= self.starve_streak.len() {
                self.starve_streak.resize(max_slot + 1, 0);
                self.blocked_scratch.resize(max_slot + 1, 0);
            }
        }
        for c in &frame.channels {
            self.blocked_scratch[c.slot] = c.blocked;
        }
        for slot in 0..self.starve_streak.len() {
            let blocked = self.blocked_scratch[slot];
            let ppm = blocked * 1_000_000 / window.max(1);
            if ppm >= self.cfg.starvation_ppm {
                self.starve_streak[slot] += 1;
                if self.starve_streak[slot] >= self.cfg.starvation_windows {
                    alerts.push(Alert {
                        kind: AlertKind::CreditStarvation,
                        seq: frame.seq,
                        cycle: frame.window_end,
                        slot: Some(slot),
                        value: ppm,
                        threshold: self.cfg.starvation_ppm,
                    });
                    self.starve_streak[slot] = 0;
                }
            } else {
                self.starve_streak[slot] = 0;
            }
        }
        for c in &frame.channels {
            self.blocked_scratch[c.slot] = 0;
        }

        // Blocked-mass growth slope.
        let mass = frame.blocked_mass();
        if let Some(last) = self.last_mass {
            if mass > last {
                self.slope_streak += 1;
                if self.slope_streak >= self.cfg.slope_windows && mass >= self.cfg.slope_floor {
                    alerts.push(Alert {
                        kind: AlertKind::BlockedMassGrowth,
                        seq: frame.seq,
                        cycle: frame.window_end,
                        slot: None,
                        value: mass,
                        threshold: self.cfg.slope_floor,
                    });
                    self.slope_streak = 0;
                }
            } else {
                self.slope_streak = 0;
            }
        }
        self.last_mass = Some(mass);

        // Delivered-fraction sag.
        if frame.injected_packets >= self.cfg.sag_min_injected {
            let ppm = frame.delivered_packets * 1_000_000 / frame.injected_packets;
            if ppm < self.cfg.sag_ppm {
                self.sag_streak += 1;
                if self.sag_streak >= self.cfg.sag_windows {
                    alerts.push(Alert {
                        kind: AlertKind::DeliveredSag,
                        seq: frame.seq,
                        cycle: frame.window_end,
                        slot: None,
                        value: ppm,
                        threshold: self.cfg.sag_ppm,
                    });
                    self.sag_streak = 0;
                }
            } else {
                self.sag_streak = 0;
            }
        } else {
            self.sag_streak = 0;
        }

        self.alerts_emitted += alerts.len() as u64;
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::frame::ChannelWindow;
    use crate::obs::StreamingHistogram;

    fn frame(seq: u64, window: u64, channels: Vec<ChannelWindow>) -> TelemetryFrame {
        TelemetryFrame {
            seq,
            window_start: seq * window,
            window_end: (seq + 1) * window - 1,
            injected_packets: 0,
            delivered_packets: 0,
            dropped_packets: 0,
            in_flight_packets: 0,
            open_heal_epochs: 0,
            latency: StreamingHistogram::new(),
            channels,
        }
    }

    #[test]
    fn starvation_requires_persistence_and_rearms() {
        let mut bank = DetectorBank::new(8);
        let stuck = |seq| {
            frame(
                seq,
                100,
                vec![ChannelWindow {
                    slot: 2,
                    util: 0,
                    blocked: 95,
                }],
            )
        };
        assert!(bank.push(&stuck(0)).is_empty());
        assert!(bank.push(&stuck(1)).is_empty());
        let alerts = bank.push(&stuck(2));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::CreditStarvation);
        assert_eq!(alerts[0].slot, Some(2));
        assert_eq!(alerts[0].value, 950_000);
        // Re-armed: the next two windows are silent again.
        assert!(bank.push(&stuck(3)).is_empty());
        assert!(bank.push(&stuck(4)).is_empty());
        assert_eq!(bank.push(&stuck(5)).len(), 1);
        // A clean window breaks the streak.
        assert!(bank.push(&frame(6, 100, vec![])).is_empty());
        assert!(bank.push(&stuck(7)).is_empty());
        assert_eq!(bank.alerts_emitted(), 2);
    }

    #[test]
    fn blocked_mass_growth_needs_slope_and_floor() {
        // 1000-cycle windows keep every per-channel blocked fraction
        // under the starvation watermark, isolating the slope detector.
        let mut bank = DetectorBank::new(8);
        let massy = |seq, blocked| {
            frame(
                seq,
                1_000,
                vec![ChannelWindow {
                    slot: 0,
                    util: 0,
                    blocked,
                }],
            )
        };
        // Strictly growing but tiny: floor suppresses it.
        for (i, m) in [1u64, 2, 3, 4, 5, 6].iter().enumerate() {
            assert!(bank.push(&massy(i as u64, *m)).is_empty(), "window {i}");
        }
        // Reset the slope, then grow past the floor.
        bank.push(&massy(6, 1));
        assert!(bank.push(&massy(7, 300)).is_empty());
        assert!(bank.push(&massy(8, 500)).is_empty());
        let alerts = bank.push(&massy(9, 800));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::BlockedMassGrowth);
        assert_eq!(alerts[0].value, 800);
    }

    #[test]
    fn sag_ignores_trickle_and_drain_windows() {
        let mut bank = DetectorBank::new(4);
        let sagging = |seq, injected, delivered| {
            let mut f = frame(seq, 100, vec![]);
            f.injected_packets = injected;
            f.delivered_packets = delivered;
            f
        };
        // Below min_injected: never counts.
        for i in 0..6 {
            assert!(bank.push(&sagging(i, 5, 0)).is_empty());
        }
        // Real pressure, real sag: fires after the streak.
        assert!(bank.push(&sagging(6, 40, 10)).is_empty());
        assert!(bank.push(&sagging(7, 40, 12)).is_empty());
        let alerts = bank.push(&sagging(8, 40, 11));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::DeliveredSag);
        assert_eq!(alerts[0].value, 275_000);
        // Healthy windows keep it silent.
        for i in 9..15 {
            assert!(bank.push(&sagging(i, 40, 40)).is_empty());
        }
    }

    #[test]
    fn alert_json_and_codes_round_trip() {
        for kind in [
            AlertKind::CreditStarvation,
            AlertKind::BlockedMassGrowth,
            AlertKind::DeliveredSag,
        ] {
            assert_eq!(AlertKind::from_code(kind.code()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(AlertKind::from_code(9), None);
        let a = Alert {
            kind: AlertKind::DeliveredSag,
            seq: 4,
            cycle: 499,
            slot: None,
            value: 100_000,
            threshold: 500_000,
        };
        assert!(crate::obs::json::validate(&a.to_json()), "{}", a.to_json());
        let b = Alert { slot: Some(7), ..a };
        assert!(crate::obs::json::validate(&b.to_json()), "{}", b.to_json());
        assert!(b.to_json().contains("\"slot\":7"));
    }
}
