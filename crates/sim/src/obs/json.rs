//! Tiny JSON helpers: string escaping for emission and a minimal
//! validator used by tests. Hand-rolled so the workspace stays
//! dependency-free.

/// `s` as a JSON string literal (quoted and escaped).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Whether `s` is one complete, well-formed JSON value. A minimal
/// recursive-descent check — enough to keep emitted metrics honest.
pub fn validate(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0;
    if !value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string_lit(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !string_lit(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string_lit(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // opening quote
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return false;
                        }
                        *pos += 5;
                    }
                    _ => return false,
                }
            }
            c if c < 0x20 => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert!(validate(&string("control \u{1} char")));
    }

    #[test]
    fn accepts_well_formed() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-12.5e3",
            "true",
            "null",
            "\"hi\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\ny\"}",
            " { \"a\" : 1 } ",
        ] {
            assert!(validate(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "{'a':1}",
            "01x",
        ] {
            assert!(!validate(bad), "{bad}");
        }
    }
}
