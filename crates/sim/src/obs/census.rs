//! Counting the turns traffic actually takes.

use super::SimObserver;
use crate::PacketId;
use turnroute_model::{Turn, TurnKind};
use turnroute_topology::{Direction, NodeId};

/// Counts every turn headers take during a run, keyed by (from, to)
/// direction pair and summarizable by [`TurnKind`] — the dynamic
/// counterpart of the paper's static turn analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurnCensus {
    num_dirs: usize,
    counts: Vec<u64>,
}

impl TurnCensus {
    /// An empty census for an `num_dims`-dimensional topology.
    pub fn new(num_dims: usize) -> TurnCensus {
        let num_dirs = 2 * num_dims;
        TurnCensus {
            num_dirs,
            counts: vec![0; num_dirs * num_dirs],
        }
    }

    /// Times the turn `from -> to` was taken.
    pub fn count(&self, from: Direction, to: Direction) -> u64 {
        self.counts[from.index() * self.num_dirs + to.index()]
    }

    /// All turns taken.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Totals by [`TurnKind`]: `(straight, ninety, one_eighty)`.
    pub fn by_kind(&self) -> (u64, u64, u64) {
        let mut straight = 0;
        let mut ninety = 0;
        let mut reversal = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let from = Direction::from_index(i / self.num_dirs);
            let to = Direction::from_index(i % self.num_dirs);
            match Turn::new(from, to).kind() {
                TurnKind::Straight => straight += c,
                TurnKind::Ninety => ninety += c,
                TurnKind::OneEighty => reversal += c,
            }
        }
        (straight, ninety, reversal)
    }

    /// Non-zero turns as `(turn, count)`, heaviest first.
    pub fn nonzero(&self) -> Vec<(Turn, u64)> {
        let mut v: Vec<(Turn, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let from = Direction::from_index(i / self.num_dirs);
                let to = Direction::from_index(i % self.num_dirs);
                (Turn::new(from, to), c)
            })
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Markdown table of the census.
    pub fn render(&self) -> String {
        let (straight, ninety, reversal) = self.by_kind();
        let mut out = format!(
            "| turn | kind | count |\n|---|---|---:|\n\
             (straight {straight}, 90-degree {ninety}, 180-degree {reversal})\n"
        );
        for (turn, count) in self.nonzero() {
            out.push_str(&format!("| {turn} | {:?} | {count} |\n", turn.kind()));
        }
        out
    }

    /// JSON object: totals by kind plus the non-zero `(from, to, count)`
    /// entries.
    pub fn to_json(&self) -> String {
        let (straight, ninety, reversal) = self.by_kind();
        let mut entries = String::new();
        for (i, (turn, count)) in self.nonzero().into_iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            entries.push_str(&format!(
                "{{\"turn\":{},\"count\":{count}}}",
                super::json::string(&turn.to_string())
            ));
        }
        format!(
            "{{\"total\":{},\"straight\":{straight},\"ninety\":{ninety},\"one_eighty\":{reversal},\"taken\":[{entries}]}}",
            self.total()
        )
    }
}

impl SimObserver for TurnCensus {
    fn on_turn(&mut self, _now: u64, _packet: PacketId, _at: NodeId, turn: Turn) {
        self.counts[turn.from_dir().index() * self.num_dirs + turn.to_dir().index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut c = TurnCensus::new(2);
        let e = Direction::EAST;
        let n = Direction::NORTH;
        let w = Direction::WEST;
        c.on_turn(0, PacketId(0), NodeId(0), Turn::new(e, e));
        c.on_turn(1, PacketId(0), NodeId(0), Turn::new(e, n));
        c.on_turn(2, PacketId(1), NodeId(0), Turn::new(e, n));
        c.on_turn(3, PacketId(2), NodeId(0), Turn::new(e, w));
        assert_eq!(c.count(e, n), 2);
        assert_eq!(c.total(), 4);
        assert_eq!(c.by_kind(), (1, 2, 1));
        assert_eq!(c.nonzero()[0].1, 2);
        assert!(c.render().contains("straight 1"));
        assert!(crate::obs::json::validate(&c.to_json()));
    }
}
