//! Simulation configuration.

use crate::{FaultPlan, InputPolicy, OutputPolicy};

/// Channel bandwidth of the paper's networks: 20 flits/µs, i.e. one
/// simulated cycle is 0.05 µs.
pub const CYCLES_PER_MICROSEC: f64 = 20.0;

/// Packet length distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthDist {
    /// Every packet has the same length.
    Fixed(u32),
    /// Each packet is `short` or `long` flits with equal probability —
    /// the paper uses 10 or 200.
    Bimodal {
        /// The short packet length in flits.
        short: u32,
        /// The long packet length in flits.
        long: u32,
    },
}

impl LengthDist {
    /// The paper's distribution: 10 or 200 flits, equally likely.
    pub fn paper() -> LengthDist {
        LengthDist::Bimodal {
            short: 10,
            long: 200,
        }
    }

    /// Mean packet length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDist::Fixed(n) => f64::from(n),
            LengthDist::Bimodal { short, long } => f64::from(short + long) / 2.0,
        }
    }
}

/// Full configuration of a simulation run. Build with
/// [`SimConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Offered load per node, in flits per cycle (a node at rate 1.0
    /// saturates its injection channel). Zero disables generation — useful
    /// with [`crate::Sim::inject_packet`].
    pub injection_rate: f64,
    /// Packet length distribution.
    pub lengths: LengthDist,
    /// Cycles to run before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles in the measurement window.
    pub measure_cycles: u64,
    /// Extra cycles after the window to let measured packets drain.
    pub drain_cycles: u64,
    /// RNG seed; identical configurations with identical seeds produce
    /// identical results.
    pub seed: u64,
    /// Input selection policy (the paper uses local FCFS).
    pub input_policy: InputPolicy,
    /// Output selection policy (the paper uses lowest-dimension, "xy").
    pub output_policy: OutputPolicy,
    /// Maximum misroutes per packet under nonminimal routing; 0 keeps
    /// routing effectively minimal.
    pub misroute_budget: u32,
    /// Declare deadlock if no flit moves for this many cycles while flits
    /// are in flight.
    pub deadlock_threshold: u64,
    /// Flit capacity of each input-channel buffer. The paper's routers
    /// buffer a single flit; deeper buffers approach virtual cut-through
    /// behavior.
    pub buffer_depth: u32,
    /// Extra cycles a header flit spends in route selection at every
    /// router before it can request an output channel. Section 7 warns
    /// that adaptive routing "can require more complex control logic for
    /// route selection ... and this may increase node delay"; setting
    /// this higher for adaptive algorithms quantifies that trade-off.
    pub routing_delay: u64,
    /// Record every packet's node path (costs memory; for analysis and
    /// tests).
    pub record_paths: bool,
    /// Scheduled link/node failures applied as simulated time passes.
    /// Empty by default; an empty plan keeps the engine's fault checks
    /// branch-predictable no-ops.
    pub fault_plan: FaultPlan,
    /// Cycles a packet may live (from creation, and again from each retry)
    /// before it is purged from the network and retried or dropped. Zero
    /// disables timeouts.
    ///
    /// Interaction with [`SimConfig::deadlock_threshold`]: a purge counts
    /// as progress, so when `packet_timeout < deadlock_threshold` a
    /// blocked network degrades gracefully — packets drop, counters
    /// accumulate, and the run completes. When
    /// `deadlock_threshold <= packet_timeout` (or timeouts are disabled),
    /// deadlock detection fires first and the run terminates with
    /// [`crate::RunTermination::Deadlock`].
    pub packet_timeout: u64,
    /// Times a timed-out packet is re-queued at its source before it is
    /// dropped for good. Zero drops on first expiry.
    pub max_retries: u32,
}

impl SimConfig {
    /// Start building a configuration from the paper's defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::builder().build()
    }
}

/// Builder for [`SimConfig`].
///
/// # Example
///
/// ```
/// use turnroute_sim::{SimConfig, LengthDist};
///
/// let cfg = SimConfig::builder()
///     .injection_rate(0.1)
///     .lengths(LengthDist::Fixed(16))
///     .seed(7)
///     .build();
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Create a builder holding the defaults.
    pub fn new() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig {
                injection_rate: 0.1,
                lengths: LengthDist::paper(),
                warmup_cycles: 5_000,
                measure_cycles: 20_000,
                drain_cycles: 10_000,
                seed: 0,
                input_policy: InputPolicy::Fcfs,
                output_policy: OutputPolicy::LowestDim,
                misroute_budget: 0,
                deadlock_threshold: 10_000,
                buffer_depth: 1,
                routing_delay: 0,
                record_paths: false,
                fault_plan: FaultPlan::default(),
                packet_timeout: 0,
                max_retries: 0,
            },
        }
    }

    /// Offered load per node in flits per cycle.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or not finite.
    pub fn injection_rate(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        self.cfg.injection_rate = rate;
        self
    }

    /// Packet length distribution.
    pub fn lengths(mut self, lengths: LengthDist) -> Self {
        self.cfg.lengths = lengths;
        self
    }

    /// Warmup cycles before measurement.
    pub fn warmup_cycles(mut self, cycles: u64) -> Self {
        self.cfg.warmup_cycles = cycles;
        self
    }

    /// Length of the measurement window in cycles.
    pub fn measure_cycles(mut self, cycles: u64) -> Self {
        self.cfg.measure_cycles = cycles;
        self
    }

    /// Drain cycles after the measurement window.
    pub fn drain_cycles(mut self, cycles: u64) -> Self {
        self.cfg.drain_cycles = cycles;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Input selection policy.
    pub fn input_policy(mut self, policy: InputPolicy) -> Self {
        self.cfg.input_policy = policy;
        self
    }

    /// Output selection policy.
    pub fn output_policy(mut self, policy: OutputPolicy) -> Self {
        self.cfg.output_policy = policy;
        self
    }

    /// Misroute budget per packet for nonminimal routing.
    pub fn misroute_budget(mut self, budget: u32) -> Self {
        self.cfg.misroute_budget = budget;
        self
    }

    /// Idle cycles before declaring deadlock.
    pub fn deadlock_threshold(mut self, cycles: u64) -> Self {
        self.cfg.deadlock_threshold = cycles;
        self
    }

    /// Flit capacity of each input-channel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn buffer_depth(mut self, depth: u32) -> Self {
        assert!(depth >= 1, "buffers hold at least one flit");
        self.cfg.buffer_depth = depth;
        self
    }

    /// Extra per-router route-selection delay in cycles (Section 7's
    /// node-delay concern).
    pub fn routing_delay(mut self, cycles: u64) -> Self {
        self.cfg.routing_delay = cycles;
        self
    }

    /// Record every packet's node path.
    pub fn record_paths(mut self, record: bool) -> Self {
        self.cfg.record_paths = record;
        self
    }

    /// Scheduled link/node failures for this run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Packet lifetime in cycles before purge-and-retry/drop (0 = off).
    pub fn packet_timeout(mut self, cycles: u64) -> Self {
        self.cfg.packet_timeout = cycles;
        self
    }

    /// Retries granted to a timed-out packet before it is dropped.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.cfg.max_retries = retries;
        self
    }

    /// Finish building.
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_length_distribution() {
        let d = LengthDist::paper();
        assert_eq!(
            d,
            LengthDist::Bimodal {
                short: 10,
                long: 200
            }
        );
        assert!((d.mean() - 105.0).abs() < 1e-9);
        assert!((LengthDist::Fixed(16).mean() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = SimConfig::builder()
            .injection_rate(0.25)
            .lengths(LengthDist::Fixed(4))
            .warmup_cycles(1)
            .measure_cycles(2)
            .drain_cycles(3)
            .seed(9)
            .input_policy(InputPolicy::PortOrder)
            .output_policy(OutputPolicy::Random)
            .misroute_budget(5)
            .deadlock_threshold(77)
            .build();
        assert_eq!(cfg.injection_rate, 0.25);
        assert_eq!(cfg.lengths, LengthDist::Fixed(4));
        assert_eq!(
            (cfg.warmup_cycles, cfg.measure_cycles, cfg.drain_cycles),
            (1, 2, 3)
        );
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.input_policy, InputPolicy::PortOrder);
        assert_eq!(cfg.output_policy, OutputPolicy::Random);
        assert_eq!(cfg.misroute_budget, 5);
        assert_eq!(cfg.deadlock_threshold, 77);
        assert_eq!(cfg.buffer_depth, 1);
    }

    #[test]
    #[should_panic(expected = "rate must be >= 0")]
    fn rejects_negative_rate() {
        let _ = SimConfig::builder().injection_rate(-1.0);
    }

    #[test]
    fn default_matches_paper_setup() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.lengths, LengthDist::paper());
        assert_eq!(cfg.input_policy, InputPolicy::Fcfs);
        assert_eq!(cfg.output_policy, OutputPolicy::LowestDim);
        assert_eq!(cfg.misroute_budget, 0);
        assert_eq!(cfg.buffer_depth, 1);
        assert_eq!(cfg.routing_delay, 0);
        assert!(!cfg.record_paths);
        assert!(cfg.fault_plan.is_empty());
        assert_eq!(cfg.packet_timeout, 0);
        assert_eq!(cfg.max_retries, 0);
    }

    #[test]
    fn fault_and_timeout_builders() {
        use turnroute_topology::{Direction, NodeId};
        let plan = FaultPlan::new().permanent_link(NodeId(3), Direction::EAST, 100);
        let cfg = SimConfig::builder()
            .fault_plan(plan.clone())
            .packet_timeout(2_000)
            .max_retries(2)
            .build();
        assert_eq!(cfg.fault_plan, plan);
        assert_eq!(cfg.packet_timeout, 2_000);
        assert_eq!(cfg.max_retries, 2);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn rejects_zero_depth_buffers() {
        let _ = SimConfig::builder().buffer_depth(0);
    }
}
