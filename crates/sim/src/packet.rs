//! Packet records.

use turnroute_topology::NodeId;

/// Identifier of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl PacketId {
    /// Dense index for per-packet tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The lifetime record of one packet (= one message; the paper's messages
/// are single packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The packet's id.
    pub id: PacketId,
    /// Generating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits (header included).
    pub len: u32,
    /// Cycle the message was generated at the source processor.
    pub created: u64,
    /// Cycle the header flit entered the injection channel, if it has.
    pub injected: Option<u64>,
    /// Cycle the tail flit was consumed at the destination, if delivered.
    pub delivered: Option<u64>,
    /// Cycle the packet was dropped after exhausting its lifetime and
    /// retries, if it was.
    pub dropped: Option<u64>,
    /// Network channels traversed by the header (reset on retry).
    pub hops: u32,
    /// Unproductive (nonminimal) hops taken (reset on retry).
    pub misroutes: u32,
}

impl Packet {
    /// Total latency in cycles (creation to tail consumption), if
    /// delivered.
    pub fn latency(&self) -> Option<u64> {
        self.delivered.map(|d| d - self.created)
    }

    /// Network-only latency in cycles (injection start to tail
    /// consumption), if delivered.
    pub fn network_latency(&self) -> Option<u64> {
        match (self.injected, self.delivered) {
            (Some(i), Some(d)) => Some(d - i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accessors() {
        let mut p = Packet {
            id: PacketId(3),
            src: NodeId(0),
            dst: NodeId(5),
            len: 10,
            created: 100,
            injected: None,
            delivered: None,
            dropped: None,
            hops: 0,
            misroutes: 0,
        };
        assert_eq!(p.latency(), None);
        p.injected = Some(110);
        p.delivered = Some(150);
        assert_eq!(p.latency(), Some(50));
        assert_eq!(p.network_latency(), Some(40));
        assert_eq!(p.id.to_string(), "p3");
        assert_eq!(p.id.index(), 3);
    }
}
