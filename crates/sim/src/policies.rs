//! Input and output selection policies (Section 6, and the policy study
//! the paper defers to its companion paper \[19\]).

/// How a router arbitrates when multiple input channels hold header flits
/// waiting for the same available output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputPolicy {
    /// Local first-come-first-served: the header that arrived at the
    /// router first wins. Fair, so it prevents indefinite postponement —
    /// the paper's choice.
    Fcfs,
    /// Fixed priority by input port index. Simple but unfair: low-index
    /// ports can indefinitely postpone high-index ones under load.
    PortOrder,
    /// Uniformly random among the waiting headers.
    Random,
}

impl std::fmt::Display for InputPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputPolicy::Fcfs => write!(f, "fcfs"),
            InputPolicy::PortOrder => write!(f, "port-order"),
            InputPolicy::Random => write!(f, "random"),
        }
    }
}

/// How a header flit chooses when the routing algorithm offers several
/// available output channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputPolicy {
    /// Prefer the output channel along the lowest dimension (the paper's
    /// "xy" output selection).
    LowestDim,
    /// Prefer the output channel along the highest dimension.
    HighestDim,
    /// Uniformly random among the available channels.
    Random,
}

impl std::fmt::Display for OutputPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputPolicy::LowestDim => write!(f, "lowest-dim"),
            OutputPolicy::HighestDim => write!(f, "highest-dim"),
            OutputPolicy::Random => write!(f, "random"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(InputPolicy::Fcfs.to_string(), "fcfs");
        assert_eq!(InputPolicy::PortOrder.to_string(), "port-order");
        assert_eq!(InputPolicy::Random.to_string(), "random");
        assert_eq!(OutputPolicy::LowestDim.to_string(), "lowest-dim");
        assert_eq!(OutputPolicy::HighestDim.to_string(), "highest-dim");
        assert_eq!(OutputPolicy::Random.to_string(), "random");
    }
}
