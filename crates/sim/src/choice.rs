//! Decision oracle for choice-scripted stepping.
//!
//! The engines are deterministic: given a seed, every arbitration is
//! resolved by the configured input/output policies. Model checking
//! (`turncheck`) needs the opposite — to drive the *same* mechanics
//! through *every* resolution a policy could pick. [`ChoiceScript`] is
//! the seam between the two: a scripted step consults the oracle at each
//! genuine decision point (which waiting head a router serves next, which
//! candidate output channel a head takes), and the oracle both replays a
//! fixed digit string and records the arity of every decision it was
//! asked, so an external explorer can enumerate sibling schedules without
//! re-modeling the engine.
//!
//! The contract mirrors stateless search: run a step with an empty
//! script (every decision defaults to digit 0), read back
//! [`ChoiceScript::arities`] to learn the shape of that execution's
//! decision tree, and use [`ChoiceScript::next_script`] to advance an
//! odometer over it. Decisions with a single option consume no digit, so
//! scripts stay short and the enumeration covers only real branching.

/// A replayable sequence of arbitration decisions for one engine step.
///
/// The enumeration protocol: run a step with an empty script (every
/// decision defaults to digit 0), read back [`ChoiceScript::arities`] to
/// learn the shape of that execution's decision tree, and use
/// [`ChoiceScript::next_script`] to advance an odometer over it.
/// Decisions with a single option consume no digit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChoiceScript {
    digits: Vec<u32>,
    cursor: usize,
    arities: Vec<u32>,
}

impl ChoiceScript {
    /// A script replaying `digits`; decisions past the end take digit 0.
    pub fn new(digits: Vec<u32>) -> ChoiceScript {
        ChoiceScript {
            digits,
            cursor: 0,
            arities: Vec::new(),
        }
    }

    /// Resolve one `arity`-way decision: records the arity, consumes the
    /// next digit, and returns it clamped into `0..arity`. Decisions with
    /// fewer than two options return 0 without consuming or recording
    /// anything — they are not branch points.
    pub fn decide(&mut self, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        self.arities.push(arity as u32);
        let digit = self.digits.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        (digit as usize).min(arity - 1)
    }

    /// The arity of every decision point encountered, in order. Valid
    /// after the scripted step ran.
    pub fn arities(&self) -> &[u32] {
        &self.arities
    }

    /// The digits this script replays.
    pub fn digits(&self) -> &[u32] {
        &self.digits
    }

    /// The next digit string in odometer order over the decision tree
    /// just observed, or `None` when this execution was the last.
    ///
    /// Digits beyond the replayed prefix are implicitly 0, so the
    /// odometer increments the last incrementable position of the
    /// *observed* arity vector and truncates everything after it (those
    /// positions may have different arities on the new path — they
    /// restart at 0).
    pub fn next_script(&self) -> Option<ChoiceScript> {
        let mut digits = self.digits.clone();
        digits.resize(self.arities.len(), 0);
        digits.truncate(self.arities.len());
        for i in (0..self.arities.len()).rev() {
            if digits[i] + 1 < self.arities[i] {
                digits[i] += 1;
                digits.truncate(i + 1);
                return Some(ChoiceScript::new(digits));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_decisions_are_free() {
        let mut s = ChoiceScript::new(vec![]);
        assert_eq!(s.decide(1), 0);
        assert_eq!(s.decide(0), 0);
        assert!(s.arities().is_empty());
        assert!(s.next_script().is_none(), "no branch points, no siblings");
    }

    #[test]
    fn digits_replay_and_clamp() {
        let mut s = ChoiceScript::new(vec![2, 9]);
        assert_eq!(s.decide(3), 2);
        assert_eq!(s.decide(2), 1, "out-of-range digits clamp");
        assert_eq!(s.decide(4), 0, "exhausted digits default to 0");
        assert_eq!(s.arities(), &[3, 2, 4]);
    }

    #[test]
    fn odometer_enumerates_a_fixed_tree_completely() {
        // A tree whose arity vector is constant [2, 3]: the odometer must
        // visit all 6 leaves exactly once.
        let mut seen = Vec::new();
        let mut script = ChoiceScript::new(vec![]);
        loop {
            let d0 = script.decide(2);
            let d1 = script.decide(3);
            seen.push((d0, d1));
            match script.next_script() {
                Some(next) => script = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 6);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "all leaves distinct");
    }

    #[test]
    fn odometer_handles_shape_changes() {
        // The second decision exists only when the first took branch 0 —
        // the canonical "sibling subtrees differ" case.
        let mut leaves = 0;
        let mut script = ChoiceScript::new(vec![]);
        loop {
            let d0 = script.decide(2);
            if d0 == 0 {
                script.decide(2);
            }
            leaves += 1;
            match script.next_script() {
                Some(next) => script = next,
                None => break,
            }
        }
        assert_eq!(leaves, 3, "two leaves under branch 0, one under 1");
    }
}
