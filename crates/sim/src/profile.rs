//! Span-based engine phase profiler.
//!
//! [`crate::Sim::step_profiled`] wraps each engine phase in a
//! [`Span`] that accumulates wall-clock nanoseconds onto a
//! [`PhaseProfiler`], answering "where does a simulated cycle's cost go?"
//! without instrumenting the hot path of plain [`crate::Sim::step`] — the
//! profiled stepper is a separate method, so the unprofiled build is
//! untouched.
//!
//! Wall-clock numbers are inherently nondeterministic; they belong in
//! human-facing output (`turnstat profile`) and must never be embedded in
//! byte-compared artifacts.

use std::time::Instant;

/// One engine phase of a simulated cycle.
///
/// The mapping to engine internals:
///
/// * `Injection` — message generation at the processors plus feeding
///   flits into injection buffers.
/// * `Routing` — collecting routable header flits and ordering them under
///   the input-selection policy.
/// * `Arbitration` — route computation and output-channel grants for the
///   selected headers (winners turn, losers stall).
/// * `Traversal` — the lockstep flit advance across all channels.
/// * `Drain` — bookkeeping that brackets the cycle: fault application,
///   lifetime expiry, and deadlock detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Generation and source feeding.
    Injection,
    /// Routable-header collection and input selection.
    Routing,
    /// Route computation and output arbitration.
    Arbitration,
    /// Lockstep flit advance.
    Traversal,
    /// Faults, expiry, and deadlock detection.
    Drain,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Injection,
        Phase::Routing,
        Phase::Arbitration,
        Phase::Traversal,
        Phase::Drain,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Injection => "injection",
            Phase::Routing => "routing",
            Phase::Arbitration => "arbitration",
            Phase::Traversal => "traversal",
            Phase::Drain => "drain",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Injection => 0,
            Phase::Routing => 1,
            Phase::Arbitration => 2,
            Phase::Traversal => 3,
            Phase::Drain => 4,
        }
    }
}

/// Accumulated wall-clock cost per engine phase, plus the cycle count it
/// covers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfiler {
    nanos: [u64; 5],
    cycles: u64,
}

impl PhaseProfiler {
    /// An empty profile.
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Open a span attributing time to `phase` until it drops.
    pub fn span(&mut self, phase: Phase) -> Span<'_> {
        Span {
            profiler: self,
            phase,
            start: Instant::now(),
        }
    }

    /// Attribute `nanos` to `phase` directly.
    pub fn record_nanos(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
    }

    /// Count one completed cycle.
    pub fn add_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Cycles profiled.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Mean nanoseconds per cycle spent in `phase` (0 before any cycle).
    pub fn mean_nanos_per_cycle(&self, phase: Phase) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / self.cycles as f64
        }
    }

    /// Fold another profile into this one.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += b;
        }
        self.cycles += other.cycles;
    }

    /// Human-readable table: per-phase total, share, and mean per cycle.
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = format!(
            "phase profile over {} cycles ({} ns wall total)\n\
             | phase       | total ns | share | ns/cycle |\n\
             |---|---:|---:|---:|\n",
            self.cycles,
            self.total_nanos()
        );
        for phase in Phase::ALL {
            out.push_str(&format!(
                "| {:<11} | {} | {:.1}% | {:.1} |\n",
                phase.name(),
                self.nanos(phase),
                100.0 * self.nanos(phase) as f64 / total as f64,
                self.mean_nanos_per_cycle(phase),
            ));
        }
        out
    }

    /// The profile as one JSON object. Wall-clock values are
    /// nondeterministic: never embed this in a byte-compared artifact.
    pub fn to_json(&self) -> String {
        let mut phases = String::new();
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!(
                "{{\"phase\":\"{}\",\"nanos\":{}}}",
                phase.name(),
                self.nanos(phase)
            ));
        }
        format!(
            "{{\"cycles\":{},\"total_nanos\":{},\"phases\":[{}]}}",
            self.cycles,
            self.total_nanos(),
            phases
        )
    }
}

/// RAII span: attributes the time between creation and drop to one phase.
#[derive(Debug)]
pub struct Span<'a> {
    profiler: &'a mut PhaseProfiler,
    phase: Phase,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.profiler.record_nanos(self.phase, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_and_render() {
        let mut p = PhaseProfiler::new();
        p.record_nanos(Phase::Routing, 100);
        p.record_nanos(Phase::Routing, 50);
        p.record_nanos(Phase::Traversal, 850);
        p.add_cycle();
        p.add_cycle();
        assert_eq!(p.nanos(Phase::Routing), 150);
        assert_eq!(p.total_nanos(), 1_000);
        assert_eq!(p.cycles(), 2);
        assert!((p.mean_nanos_per_cycle(Phase::Routing) - 75.0).abs() < 1e-9);
        let table = p.render();
        assert!(table.contains("routing"));
        assert!(table.contains("15.0%"));
        assert!(crate::obs::json::validate(&p.to_json()));
    }

    #[test]
    fn real_spans_record_nonzero_time() {
        let mut p = PhaseProfiler::new();
        {
            let _s = p.span(Phase::Arbitration);
            // Do a little real work so even coarse clocks tick.
            let mut x = 0u64;
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        }
        assert!(p.nanos(Phase::Arbitration) > 0);
    }

    #[test]
    fn merge_sums_profiles() {
        let mut a = PhaseProfiler::new();
        a.record_nanos(Phase::Drain, 10);
        a.add_cycle();
        let mut b = PhaseProfiler::new();
        b.record_nanos(Phase::Drain, 5);
        b.record_nanos(Phase::Injection, 7);
        b.add_cycle();
        a.merge(&b);
        assert_eq!(a.nanos(Phase::Drain), 15);
        assert_eq!(a.nanos(Phase::Injection), 7);
        assert_eq!(a.cycles(), 2);
    }
}
