//! The simulation engine: wormhole mechanics, arbitration, and the
//! measurement protocol.

use crate::obs::{
    ChannelLayout, DeadlockSnapshot, NoopObserver, PacketBlame, SimObserver, StallReason,
    StreamingHistogram, WaitEdge,
};
use crate::profile::{Phase, PhaseProfiler};
use crate::report::BlameTotals;
use crate::{
    ChoiceScript, FaultTarget, InputPolicy, LengthDist, OutputPolicy, Packet, PacketId,
    RunTermination, SimConfig, SimReport,
};
use std::collections::VecDeque;
use turnroute_model::{RoutingFunction, Turn, TurnSet};
use turnroute_rng::rngs::StdRng;
use turnroute_rng::{Rng, SeedableRng};
use turnroute_topology::{Direction, NodeId, Topology};
use turnroute_traffic::TrafficPattern;

/// Sentinel for "no packet" / "no channel".
const NONE_U32: u32 = u32::MAX;

/// One flit sitting in a channel's single-flit input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufFlit {
    packet: u32,
    is_head: bool,
    is_tail: bool,
}

/// Per-source stream state: the packet currently being pushed into the
/// injection channel and how many of its flits have been emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Emitting {
    packet: u32,
    sent: u32,
}

/// What arbitration can do for the head flit waiting at one input
/// channel, before contention is considered: bind the ejection channel,
/// wait out a healing hold, or choose among the turn-legal healthy
/// candidate outputs. Shared by the policy-driven
/// [`try_assign`](Sim::try_assign), the choice-scripted variant, and the
/// deadlock snapshot's wanted-output reconstruction, so all three see
/// byte-identical routing semantics.
enum RouteDecision {
    /// Destination reached: bind this ejection slot (if free).
    Eject(usize),
    /// The input router is held by the healing driver; grant nothing.
    Hold,
    /// The arrival direction and every candidate `(dir, slot,
    /// productive)` output — turn-legal, existing, healthy, and within
    /// the misroute budget — before the free-channel filter.
    Candidates(Option<Direction>, Vec<(Direction, usize, bool)>),
}

/// A complete copy of one engine's mutable state, produced by
/// [`Sim::snapshot`] and consumed by [`Sim::restore`].
///
/// The snapshot boundary is the *simulation* state: cycle counter, RNG,
/// channel/buffer/worm state, sources, fault and healing state, and every
/// measurement counter the report reads. The static network description
/// (topology, routing, config, existence tables) and the attached
/// observer are outside the boundary — restoring rewinds the network, not
/// the telemetry already emitted about it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    now: u64,
    rng: StdRng,
    faulty: Vec<bool>,
    fault_cursor: usize,
    fault_depth: Vec<u16>,
    node_down: Vec<u16>,
    faults_possible: bool,
    held: Vec<bool>,
    quarantined: Vec<bool>,
    healing_possible: bool,
    deadlines: VecDeque<(u64, u32)>,
    retry_counts: Vec<u32>,
    dropped_packets: u64,
    unroutable_packets: u64,
    total_retries: u64,
    owner: Vec<u32>,
    buf: Vec<VecDeque<BufFlit>>,
    assigned_out: Vec<u32>,
    head_since: Vec<u64>,
    packets: Vec<Packet>,
    paths: Vec<Vec<NodeId>>,
    queues: Vec<VecDeque<u32>>,
    emitting: Vec<Option<Emitting>>,
    next_arrival: Vec<f64>,
    progress_cycles: Vec<u64>,
    last_progress: Vec<u64>,
    misroute_progress: Vec<u64>,
    misroute_assigned: Vec<bool>,
    blame: BlameTotals,
    window: (u64, u64),
    generated_packets: u64,
    generated_flits: u64,
    delivered_flits_in_window: u64,
    channel_flits: Vec<u64>,
    max_queue_len: usize,
    last_move: u64,
    deadlocked: bool,
    occupied_buffers: usize,
    total_stall_cycles: u64,
}

/// A wormhole network simulation in progress.
///
/// Construct with [`Sim::new`], optionally seed packets with
/// [`Sim::inject_packet`], then either call [`Sim::run`] for the full
/// warmup/measure/drain protocol or drive individual cycles with
/// [`Sim::step`].
///
/// The engine is generic over a [`SimObserver`] receiving flit-level
/// telemetry hooks; the default [`NoopObserver`] has `ENABLED = false`
/// and every hook call site is guarded by that associated constant, so
/// an unobserved simulation compiles to the same code as before the
/// hooks existed. Attach collectors with [`Sim::with_observer`].
pub struct Sim<'a, O: SimObserver = NoopObserver> {
    topo: &'a dyn Topology,
    routing: &'a dyn RoutingFunction,
    pattern: &'a dyn TrafficPattern,
    cfg: SimConfig,
    rng: StdRng,
    obs: O,
    now: u64,

    // --- static network description ---
    num_nodes: usize,
    dirs_per_node: usize,
    /// First injection slot; ejection slots follow.
    inj_base: usize,
    ej_base: usize,
    num_channels: usize,
    /// Whether each network slot is a real channel.
    exists: Vec<bool>,
    /// Router whose input buffer each channel feeds (ejection channels
    /// feed the local processor and carry their node here).
    input_router: Vec<u32>,
    /// Broken channels (fault injection): `faulty[slot]` is
    /// `fault_depth[slot] > 0`, maintained on every fault transition.
    faulty: Vec<bool>,

    // --- fault injection ---
    /// Time-sorted transitions compiled from the config's fault plan.
    fault_events: Vec<crate::FaultEvent>,
    /// Next unapplied entry of `fault_events`; with an empty plan the
    /// per-cycle fault check is the single predictable branch
    /// `fault_cursor < fault_events.len()`.
    fault_cursor: usize,
    /// Per-slot failure refcount (overlapping faults compose).
    fault_depth: Vec<u16>,
    /// Per-node failure refcount; a down router neither injects nor
    /// ejects, and all its incident channels are failed.
    node_down: Vec<u16>,
    /// Whether any fault source exists (scheduled plan or `set_fault`).
    /// Gates the turn-legality filter and the misroute-around-fault
    /// fallback so fault-free arbitration is byte-for-byte the old code
    /// path.
    faults_possible: bool,
    /// The routing function's declared turn set. Under faults, every
    /// arbitration output — primary or fallback — is filtered through it,
    /// which keeps the live dependency graph a subgraph of the turn set's
    /// (acyclic) CDG no matter what fails.
    turn_filter: Option<TurnSet>,

    // --- online reconfiguration (turnheal) ---
    /// Routers whose output arbitration is paused while the healing
    /// driver re-proves a region (ejection continues; in-flight worms
    /// drain).
    held: Vec<bool>,
    /// Channels excluded from new acquisitions by a `Cyclic` verdict
    /// (escape-path-only mode); composes with `faulty`.
    quarantined: Vec<bool>,
    /// Whether any hold or quarantine was ever set; gates the hot-path
    /// lookups exactly like `faults_possible`, so runs without a healing
    /// driver pay one predictable branch.
    healing_possible: bool,

    // --- graceful degradation ---
    /// Packet-lifetime deadlines, nondecreasing (every push uses
    /// `now + packet_timeout` and `now` is monotone), so expiry is an
    /// amortized O(1) front-pop scan.
    deadlines: VecDeque<(u64, u32)>,
    /// Retries consumed per packet.
    retry_counts: Vec<u32>,
    dropped_packets: u64,
    unroutable_packets: u64,
    total_retries: u64,

    // --- dynamic channel state ---
    owner: Vec<u32>,
    /// Per-channel input buffers (FIFO, capacity `cfg.buffer_depth`; the
    /// paper's routers use depth 1). A buffer only ever holds flits of
    /// the packet owning the channel.
    buf: Vec<VecDeque<BufFlit>>,
    /// Output binding for each *input* channel, while a worm crosses it.
    assigned_out: Vec<u32>,
    /// Cycle the current head flit arrived in this buffer (for FCFS).
    head_since: Vec<u64>,

    // --- sources ---
    packets: Vec<Packet>,
    /// Per-packet node paths (populated when `cfg.record_paths`).
    paths: Vec<Vec<NodeId>>,
    queues: Vec<VecDeque<u32>>,
    emitting: Vec<Option<Emitting>>,
    next_arrival: Vec<f64>,

    // --- latency blame attribution (turnscope) ---
    /// Per-packet count of in-network cycles with at least one flit
    /// movement, current injection attempt only (reset on retry).
    progress_cycles: Vec<u64>,
    /// Cycle stamp deduplicating `progress_cycles` increments when
    /// several flits of one packet move in the same cycle
    /// (`u64::MAX` = no movement yet).
    last_progress: Vec<u64>,
    /// Per-packet count of progress cycles spent on non-productive
    /// (misrouted) header moves, current injection attempt only.
    misroute_progress: Vec<u64>,
    /// Whether each input channel's current output binding was granted
    /// non-productively; checked when the header leaves the channel.
    misroute_assigned: Vec<bool>,
    /// Blame totals accumulated over delivered window packets.
    blame: BlameTotals,

    // --- measurement ---
    window: (u64, u64),
    generated_packets: u64,
    generated_flits: u64,
    delivered_flits_in_window: u64,
    /// Flits that entered each channel's buffer during the measurement
    /// window (per-channel utilization).
    channel_flits: Vec<u64>,
    max_queue_len: usize,
    last_move: u64,
    deadlocked: bool,
    /// Channels whose input buffer currently holds at least one flit,
    /// maintained incrementally at every push/pop so stall accounting
    /// costs O(moved flits), not O(channels), per cycle.
    occupied_buffers: usize,
    /// Occupied-channel cycles that advanced nothing, measurement window
    /// only.
    total_stall_cycles: u64,

    // scratch buffers reused across cycles
    scratch_heads: Vec<u32>,
    scratch_state: Vec<u8>,
    scratch_order: Vec<u32>,
    scratch_stack: Vec<u32>,
}

impl<'a> Sim<'a> {
    /// Create a simulation of `routing` on `topo` under `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than 2 nodes.
    pub fn new(
        topo: &'a dyn Topology,
        routing: &'a dyn RoutingFunction,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
    ) -> Sim<'a> {
        Sim::with_observer(topo, routing, pattern, cfg, NoopObserver)
    }
}

impl<'a, O: SimObserver> Sim<'a, O> {
    /// Like [`Sim::new`], but with `observer` attached to receive
    /// flit-level telemetry hooks (see [`crate::obs`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than 2 nodes.
    pub fn with_observer(
        topo: &'a dyn Topology,
        routing: &'a dyn RoutingFunction,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
        observer: O,
    ) -> Sim<'a, O> {
        let num_nodes = topo.num_nodes();
        assert!(num_nodes >= 2, "need at least two nodes");
        let dirs_per_node = 2 * topo.num_dims();
        let inj_base = num_nodes * dirs_per_node;
        let ej_base = inj_base + num_nodes;
        let num_channels = ej_base + num_nodes;

        let mut exists = vec![false; num_channels];
        let mut input_router = vec![NONE_U32; num_channels];
        for node in 0..num_nodes {
            let node_id = NodeId(node as u32);
            for dir in Direction::all(topo.num_dims()) {
                let slot = topo.channel_slot(node_id, dir);
                if let Some(next) = topo.neighbor(node_id, dir) {
                    exists[slot] = true;
                    input_router[slot] = next.0;
                }
            }
            exists[inj_base + node] = true;
            input_router[inj_base + node] = node as u32;
            exists[ej_base + node] = true;
            input_router[ej_base + node] = node as u32;
        }

        let fault_events = cfg.fault_plan.events();
        let faults_possible = !fault_events.is_empty();
        let mut sim = Sim {
            topo,
            routing,
            pattern,
            rng: StdRng::seed_from_u64(cfg.seed),
            obs: observer,
            now: 0,
            num_nodes,
            dirs_per_node,
            inj_base,
            ej_base,
            num_channels,
            exists,
            input_router,
            faulty: vec![false; num_channels],
            fault_events,
            fault_cursor: 0,
            fault_depth: vec![0; num_channels],
            node_down: vec![0; num_nodes],
            faults_possible,
            turn_filter: routing.turn_set(topo.num_dims()),
            held: vec![false; num_nodes],
            quarantined: vec![false; num_channels],
            healing_possible: false,
            deadlines: VecDeque::new(),
            retry_counts: Vec::new(),
            dropped_packets: 0,
            unroutable_packets: 0,
            total_retries: 0,
            cfg,
            owner: vec![NONE_U32; num_channels],
            buf: vec![VecDeque::new(); num_channels],
            assigned_out: vec![NONE_U32; num_channels],
            head_since: vec![0; num_channels],
            packets: Vec::new(),
            paths: Vec::new(),
            queues: vec![VecDeque::new(); num_nodes],
            emitting: vec![None; num_nodes],
            next_arrival: vec![0.0; num_nodes],
            progress_cycles: Vec::new(),
            last_progress: Vec::new(),
            misroute_progress: Vec::new(),
            misroute_assigned: vec![false; num_channels],
            blame: BlameTotals::default(),
            window: (0, u64::MAX),
            generated_packets: 0,
            generated_flits: 0,
            delivered_flits_in_window: 0,
            channel_flits: vec![0; num_channels],
            max_queue_len: 0,
            last_move: 0,
            deadlocked: false,
            occupied_buffers: 0,
            total_stall_cycles: 0,
            scratch_heads: Vec::new(),
            scratch_state: vec![0; num_channels],
            scratch_order: Vec::new(),
            scratch_stack: Vec::new(),
        };
        // Stagger first arrivals so all nodes do not fire at cycle 0.
        if sim.cfg.injection_rate > 0.0 {
            let mean = sim.mean_interarrival();
            for v in 0..num_nodes {
                sim.next_arrival[v] = sim.sample_exp(mean);
            }
        }
        sim
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether deadlock was detected.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consume the simulation and keep only the observer.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// All packets created so far.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Flits that crossed the network channel leaving `node` in `dir`
    /// during the measurement window. Zero for nonexistent channels.
    pub fn channel_load(&self, node: NodeId, dir: Direction) -> u64 {
        self.channel_flits[self.topo.channel_slot(node, dir)]
    }

    /// The heaviest per-channel flit count observed during the
    /// measurement window, over network channels only.
    pub fn max_channel_load(&self) -> u64 {
        self.channel_flits[..self.inj_base]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total flits that crossed network channels during the measurement
    /// window (the network's transferred volume; equals Σ hops over the
    /// window's flits when traffic is in steady state).
    pub fn total_channel_flits(&self) -> u64 {
        self.channel_flits[..self.inj_base].iter().sum()
    }

    /// The node path a packet's header has taken so far (source
    /// included). Empty unless the run was configured with
    /// [`SimConfig::record_paths`].
    pub fn packet_path(&self, id: PacketId) -> &[NodeId] {
        if self.cfg.record_paths {
            &self.paths[id.index()]
        } else {
            &[]
        }
    }

    /// Mark the channel leaving `node` in `dir` as faulty; the routing
    /// arbitration will never assign it. For scheduled or transient
    /// failures use [`SimConfig::fault_plan`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn set_fault(&mut self, node: NodeId, dir: Direction) {
        let slot = self.topo.channel_slot(node, dir);
        assert!(self.exists[slot], "no channel at {node} {dir}");
        self.faults_possible = true;
        self.shift_fault(slot, true);
    }

    /// Pause (`on`) or resume output arbitration at `node`. A held router
    /// grants no new output channels: heads wait in place while the
    /// healing driver re-proves the region. Ejection still binds, and
    /// worms already granted outputs keep draining, so a hold never
    /// strands in-flight traffic.
    pub fn set_hold(&mut self, node: NodeId, on: bool) {
        self.healing_possible = true;
        self.held[node.index()] = on;
    }

    /// Quarantine (`on`) or release the channel leaving `node` in `dir`:
    /// a quarantined channel is never assigned to a new worm, exactly
    /// like a faulty one, but its failure refcount is untouched — this is
    /// the healing driver's escape-path-only mode for channels implicated
    /// in a `Cyclic` verdict.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn set_quarantine(&mut self, node: NodeId, dir: Direction, on: bool) {
        let slot = self.topo.channel_slot(node, dir);
        assert!(self.exists[slot], "no channel at {node} {dir}");
        self.healing_possible = true;
        self.quarantined[slot] = on;
    }

    /// Whether the channel leaving `node` in `dir` is quarantined.
    pub fn is_quarantined(&self, node: NodeId, dir: Direction) -> bool {
        self.quarantined[self.topo.channel_slot(node, dir)]
    }

    /// How many entries of the compiled fault-event stream have been
    /// applied so far. A healing driver polls this after each step to
    /// detect that a fault transition (and hence a new masked channel
    /// graph) just took effect.
    pub fn applied_fault_events(&self) -> usize {
        self.fault_cursor
    }

    /// Set the measurement window `[start, end)` explicitly. [`Sim::run`]
    /// derives the window from the configuration; an external driver that
    /// steps the engine cycle by cycle (the healing driver) sets it once
    /// up front so [`Sim::report`] summarizes the same window `run` would.
    pub fn set_measure_window(&mut self, start: u64, end: u64) {
        self.window = (start, end);
    }

    /// Manually queue a packet (useful with `injection_rate == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or `len == 0`.
    pub fn inject_packet(&mut self, src: NodeId, dst: NodeId, len: u32) -> PacketId {
        assert_ne!(src, dst, "packet must leave its source");
        assert!(len >= 1, "packet needs at least one flit");
        let id = self.create_packet(src, dst, len);
        PacketId(id)
    }

    fn create_packet(&mut self, src: NodeId, dst: NodeId, len: u32) -> u32 {
        let id = self.packets.len() as u32;
        self.packets.push(Packet {
            id: PacketId(id),
            src,
            dst,
            len,
            created: self.now,
            injected: None,
            delivered: None,
            dropped: None,
            hops: 0,
            misroutes: 0,
        });
        if self.cfg.packet_timeout > 0 {
            self.deadlines
                .push_back((self.now + self.cfg.packet_timeout, id));
            self.retry_counts.push(0);
        }
        self.progress_cycles.push(0);
        self.last_progress.push(u64::MAX);
        self.misroute_progress.push(0);
        self.queues[src.index()].push_back(id);
        if self.cfg.record_paths {
            self.paths.push(vec![src]);
        }
        if self.in_window() {
            self.generated_packets += 1;
            self.generated_flits += u64::from(len);
        }
        id
    }

    fn in_window(&self) -> bool {
        self.now >= self.window.0 && self.now < self.window.1
    }

    fn mean_interarrival(&self) -> f64 {
        self.cfg.lengths.mean() / self.cfg.injection_rate
    }

    fn sample_exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    fn sample_len(&mut self) -> u32 {
        match self.cfg.lengths {
            LengthDist::Fixed(n) => n,
            LengthDist::Bimodal { short, long } => {
                if self.rng.gen_bool(0.5) {
                    short
                } else {
                    long
                }
            }
        }
    }

    #[inline]
    fn inj_slot(&self, node: usize) -> usize {
        self.inj_base + node
    }

    #[inline]
    fn ej_slot(&self, node: usize) -> usize {
        self.ej_base + node
    }

    #[inline]
    fn is_ejection(&self, slot: usize) -> bool {
        slot >= self.ej_base
    }

    #[inline]
    fn is_injection(&self, slot: usize) -> bool {
        slot >= self.inj_base && slot < self.ej_base
    }

    #[inline]
    fn dir_of_network_slot(&self, slot: usize) -> Direction {
        Direction::from_index(slot % self.dirs_per_node)
    }

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        self.apply_faults();
        self.expire_packets();
        self.generate();
        self.assign_outputs();
        self.advance();
        self.feed_injection();
        self.detect_deadlock();
        if O::ENABLED {
            self.obs.on_cycle_end(self.now);
        }
        self.now += 1;
    }

    /// Advance one cycle with each engine phase timed onto `prof`.
    ///
    /// Byte-identical in simulation behavior to [`Sim::step`] — the
    /// phases run in the same order on the same state — it only adds
    /// wall-clock spans around them. Kept separate so the unprofiled
    /// stepper's hot path carries no timing overhead.
    pub fn step_profiled(&mut self, prof: &mut PhaseProfiler) {
        {
            let _s = prof.span(Phase::Drain);
            self.apply_faults();
            self.expire_packets();
        }
        {
            let _s = prof.span(Phase::Injection);
            self.generate();
        }
        let heads = {
            let _s = prof.span(Phase::Routing);
            self.collect_route_heads()
        };
        {
            let _s = prof.span(Phase::Arbitration);
            self.arbitrate_heads(heads);
        }
        {
            let _s = prof.span(Phase::Traversal);
            self.advance();
        }
        {
            let _s = prof.span(Phase::Injection);
            self.feed_injection();
        }
        {
            let _s = prof.span(Phase::Drain);
            self.detect_deadlock();
        }
        if O::ENABLED {
            self.obs.on_cycle_end(self.now);
        }
        self.now += 1;
        prof.add_cycle();
    }

    /// [`Sim::run`] with every cycle stepped through
    /// [`Sim::step_profiled`]; same protocol, same report, plus a phase
    /// profile accumulated onto `prof`.
    pub fn run_profiled(&mut self, prof: &mut PhaseProfiler) -> SimReport {
        let start = self.now;
        let measure_start = start + self.cfg.warmup_cycles;
        let measure_end = measure_start + self.cfg.measure_cycles;
        let total_end = measure_end + self.cfg.drain_cycles;
        self.window = (measure_start, measure_end);
        while self.now < total_end && !self.deadlocked {
            self.step_profiled(prof);
        }
        self.report()
    }

    /// Run the full warmup → measure → drain protocol from the current
    /// state and summarize.
    pub fn run(&mut self) -> SimReport {
        let start = self.now;
        let measure_start = start + self.cfg.warmup_cycles;
        let measure_end = measure_start + self.cfg.measure_cycles;
        let total_end = measure_end + self.cfg.drain_cycles;
        self.window = (measure_start, measure_end);
        while self.now < total_end && !self.deadlocked {
            self.step();
        }
        self.report()
    }

    /// Step until the network is empty (queues drained, no flits in
    /// flight) or `max_cycles` elapse. Returns `true` if it drained.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        let end = self.now + max_cycles;
        while self.now < end && !self.deadlocked {
            self.step();
            if self.is_idle() {
                return true;
            }
        }
        self.is_idle()
    }

    /// Whether no packet is queued, streaming, or in flight.
    pub fn is_idle(&self) -> bool {
        self.buf.iter().all(VecDeque::is_empty)
            && self.queues.iter().all(VecDeque::is_empty)
            && self.emitting.iter().all(Option::is_none)
    }

    /// Streaming histogram of total latencies (creation to tail
    /// consumption) of delivered packets created in the measurement
    /// window — the distribution the report's quantiles come from.
    pub fn latency_histogram(&self) -> StreamingHistogram {
        let (ms, me) = self.window;
        let mut hist = StreamingHistogram::new();
        for p in &self.packets {
            if p.created < ms || p.created >= me {
                continue;
            }
            if let Some(lat) = p.latency() {
                hist.record(lat);
            }
        }
        hist
    }

    /// Build a report summarizing packets created in the measurement
    /// window.
    pub fn report(&self) -> SimReport {
        let (ms, me) = self.window;
        let hist = self.latency_histogram();
        let mut network_sum = 0u64;
        let mut hops_sum = 0u64;
        let mut misroute_sum = 0u64;
        for p in &self.packets {
            if p.created < ms || p.created >= me {
                continue;
            }
            if let Some(lat) = p.latency() {
                network_sum += p.network_latency().unwrap_or(lat);
                hops_sum += u64::from(p.hops);
                misroute_sum += u64::from(p.misroutes);
            }
        }
        let delivered = hist.count();
        let avg = |sum: u64, n: u64| if n == 0 { 0.0 } else { sum as f64 / n as f64 };
        SimReport {
            generated_packets: self.generated_packets,
            generated_flits: self.generated_flits,
            delivered_packets: delivered,
            delivered_flits_in_window: self.delivered_flits_in_window,
            measure_cycles: me.saturating_sub(ms),
            avg_latency_cycles: hist.mean(),
            p50_latency_cycles: hist.p50() as f64,
            p90_latency_cycles: hist.p90() as f64,
            p99_latency_cycles: hist.p99() as f64,
            max_latency_cycles: hist.max(),
            avg_network_latency_cycles: avg(network_sum, delivered),
            avg_hops: avg(hops_sum, delivered),
            avg_misroutes: avg(misroute_sum, delivered),
            blame: self.blame,
            total_stall_cycles: self.total_stall_cycles,
            queued_at_end: self.queues.iter().map(|q| q.len() as u64).sum(),
            max_queue_len: self.max_queue_len,
            dropped_packets: self.dropped_packets,
            unroutable_packets: self.unroutable_packets,
            retries: self.total_retries,
            deadlocked: self.deadlocked,
            termination: if self.deadlocked {
                RunTermination::Deadlock
            } else if self.generated_packets
                > delivered + self.dropped_packets + self.unroutable_packets
            {
                // Part of the measured cohort was still queued or in
                // flight at the horizon: the network never drained the
                // measured load (saturation collapse), which is what the
                // turnscope detectors are meant to call ahead of time.
                // (Packets generated *after* the window — the drain phase
                // keeps injecting — do not count against completion.)
                RunTermination::Timeout
            } else {
                RunTermination::Completed
            },
            end_cycle: self.now,
        }
    }

    // ---- per-cycle phases -------------------------------------------

    /// Apply every fault transition scheduled at or before `now`. With an
    /// empty plan this is a single always-false branch.
    fn apply_faults(&mut self) {
        while self.fault_cursor < self.fault_events.len()
            && self.fault_events[self.fault_cursor].at <= self.now
        {
            let ev = self.fault_events[self.fault_cursor];
            self.fault_cursor += 1;
            match ev.target {
                FaultTarget::Link { node, dir } => {
                    let slot = self.topo.channel_slot(node, dir);
                    assert!(
                        self.exists[slot],
                        "fault plan names a missing channel: {node} {dir}"
                    );
                    self.shift_fault(slot, ev.down);
                }
                FaultTarget::Node(v) => {
                    let vi = v.index();
                    if ev.down {
                        self.node_down[vi] += 1;
                    } else {
                        self.node_down[vi] -= 1;
                    }
                    for dir in Direction::all(self.topo.num_dims()) {
                        if self.topo.neighbor(v, dir).is_some() {
                            self.shift_fault(self.topo.channel_slot(v, dir), ev.down);
                        }
                        if let Some(prev) = self.topo.neighbor(v, dir.opposite()) {
                            self.shift_fault(self.topo.channel_slot(prev, dir), ev.down);
                        }
                    }
                    self.shift_fault(self.inj_slot(vi), ev.down);
                    self.shift_fault(self.ej_slot(vi), ev.down);
                }
            }
        }
    }

    /// Adjust one channel's failure refcount and report edge transitions
    /// to the observer.
    fn shift_fault(&mut self, slot: usize, down: bool) {
        let was = self.fault_depth[slot] > 0;
        if down {
            self.fault_depth[slot] += 1;
        } else {
            self.fault_depth[slot] -= 1;
        }
        let is = self.fault_depth[slot] > 0;
        self.faulty[slot] = is;
        if O::ENABLED && was != is {
            self.obs.on_fault(self.now, slot, is);
        }
    }

    /// Purge packets whose lifetime expired: retry (re-queue at the
    /// source) while retries remain and delivery is still possible,
    /// otherwise drop and account. With `packet_timeout == 0` this is a
    /// single always-false branch.
    fn expire_packets(&mut self) {
        if self.cfg.packet_timeout == 0 {
            return;
        }
        while let Some(&(deadline, pid)) = self.deadlines.front() {
            if deadline > self.now {
                break;
            }
            self.deadlines.pop_front();
            let p = self.packets[pid as usize];
            if p.delivered.is_some() || p.dropped.is_some() {
                continue; // resolved before its deadline; stale entry
            }
            self.purge_packet(pid);
            if O::ENABLED {
                self.obs.on_purge(self.now, PacketId(pid));
            }
            let unroutable = self.node_down[p.src.index()] > 0 || self.node_down[p.dst.index()] > 0;
            let counted = self.created_in_window(&p);
            if !unroutable && self.retry_counts[pid as usize] < self.cfg.max_retries {
                self.retry_counts[pid as usize] += 1;
                if counted {
                    self.total_retries += 1;
                }
                let p = &mut self.packets[pid as usize];
                p.injected = None;
                p.hops = 0;
                p.misroutes = 0;
                // Blame restarts with the attempt: queue wait absorbs the
                // failed attempt's time (queue = injected − created uses
                // the *final* injection cycle).
                self.progress_cycles[pid as usize] = 0;
                self.last_progress[pid as usize] = u64::MAX;
                self.misroute_progress[pid as usize] = 0;
                self.queues[p.src.index()].push_back(pid);
                self.deadlines
                    .push_back((self.now + self.cfg.packet_timeout, pid));
            } else {
                self.packets[pid as usize].dropped = Some(self.now);
                if counted {
                    if unroutable {
                        self.unroutable_packets += 1;
                    } else {
                        self.dropped_packets += 1;
                    }
                }
                if O::ENABLED {
                    self.obs.on_drop(self.now, PacketId(pid), unroutable);
                }
            }
            // A purge is progress: freed channels change the network's
            // state, so deadlock detection must not trip while timeouts
            // are draining a blocked network. This is the documented
            // precedence — `packet_timeout < deadlock_threshold` degrades
            // gracefully, the reverse declares deadlock first.
            self.last_move = self.now;
        }
    }

    fn created_in_window(&self, p: &Packet) -> bool {
        p.created >= self.window.0 && p.created < self.window.1
    }

    /// Remove every trace of `pid` from the network: its source-queue
    /// entry, its emission stream, and every channel the worm holds
    /// (a channel's buffer only ever holds flits of its owning packet).
    fn purge_packet(&mut self, pid: u32) {
        let src = self.packets[pid as usize].src.index();
        self.queues[src].retain(|&q| q != pid);
        if matches!(self.emitting[src], Some(e) if e.packet == pid) {
            self.emitting[src] = None;
        }
        for slot in 0..self.num_channels {
            if self.owner[slot] != pid {
                continue;
            }
            if !self.buf[slot].is_empty() {
                debug_assert!(self.buf[slot].iter().all(|f| f.packet == pid));
                self.buf[slot].clear();
                self.occupied_buffers -= 1;
            }
            self.owner[slot] = NONE_U32;
            self.assigned_out[slot] = NONE_U32;
        }
    }

    fn generate(&mut self) {
        if self.cfg.injection_rate <= 0.0 {
            return;
        }
        let mean = self.mean_interarrival();
        for v in 0..self.num_nodes {
            while self.next_arrival[v] <= self.now as f64 {
                let step = self.sample_exp(mean);
                self.next_arrival[v] += step;
                let src = NodeId(v as u32);
                let dst = self.pattern.dest(self.topo, src, &mut self.rng);
                if let Some(dst) = dst {
                    let len = self.sample_len();
                    self.create_packet(src, dst, len);
                }
                // Self-directed messages are consumed locally: no network
                // traffic, no queueing.
            }
            if self.in_window() {
                self.max_queue_len = self.max_queue_len.max(self.queues[v].len());
            }
        }
    }

    /// Phase A: route waiting header flits and arbitrate output channels.
    fn assign_outputs(&mut self) {
        let heads = self.collect_route_heads();
        self.arbitrate_heads(heads);
    }

    /// First half of phase A: collect input channels whose buffered flit
    /// is an unassigned head and order them under the input policy. The
    /// returned vec is the engine's scratch buffer; hand it back via
    /// [`Sim::arbitrate_heads`].
    fn collect_route_heads(&mut self) -> Vec<u32> {
        let mut heads = std::mem::take(&mut self.scratch_heads);
        heads.clear();
        for slot in 0..self.ej_base {
            if !self.exists[slot] || self.assigned_out[slot] != NONE_U32 {
                continue;
            }
            // A header arriving at cycle t is normally routable at t+1;
            // routing_delay postpones that by `delay` further cycles.
            if matches!(self.buf[slot].front(), Some(f) if f.is_head)
                && self.now > self.head_since[slot] + self.cfg.routing_delay
            {
                heads.push(slot as u32);
            }
        }
        match self.cfg.input_policy {
            InputPolicy::Fcfs => {
                heads.sort_unstable_by_key(|&c| (self.head_since[c as usize], c));
            }
            InputPolicy::PortOrder => heads.sort_unstable(),
            InputPolicy::Random => {
                // Fisher–Yates with the run RNG for determinism.
                for i in (1..heads.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    heads.swap(i, j);
                }
            }
        }
        heads
    }

    /// Second half of phase A: compute routes and grant output channels
    /// to the selected heads, in order.
    fn arbitrate_heads(&mut self, heads: Vec<u32>) {
        for &c in &heads {
            self.try_assign(c as usize);
        }
        self.scratch_heads = heads;
    }

    /// Whether `slot` may be granted to a new worm: faulty and
    /// quarantined channels are excluded, each behind its own
    /// possible-flag so undisturbed runs never load the tables.
    #[inline]
    fn unusable(&self, slot: usize) -> bool {
        (self.faults_possible && self.faulty[slot])
            || (self.healing_possible && self.quarantined[slot])
    }

    /// Everything arbitration knows about the head at input channel `c`
    /// before contention: ejection binding, healing hold, or the full
    /// candidate list. This is the single copy of the routing semantics
    /// that [`try_assign`](Sim::try_assign), the scripted variant, and
    /// [`wanted_output`](Sim::wanted_output) all consume.
    fn route_decision(&self, c: usize) -> RouteDecision {
        let flit = *self.buf[c].front().expect("head present");
        let pkt = self.packets[flit.packet as usize];
        let v = NodeId(self.input_router[c]);
        // Destination reached: bind to the ejection channel.
        if v == pkt.dst {
            return RouteDecision::Eject(self.ej_slot(v.index()));
        }
        // A held router grants nothing while its region re-proves;
        // ejection (above) still drains delivered traffic.
        if self.healing_possible && self.held[v.index()] {
            return RouteDecision::Hold;
        }
        let arrived = if self.is_injection(c) {
            None
        } else {
            Some(self.dir_of_network_slot(c))
        };
        let dirs = self.routing.route(self.topo, v, pkt.dst, arrived);
        // Under faults every output — primary or fallback — is filtered
        // through the declared turn set: misrouting around a failure can
        // leave a packet in arrival states its algorithm never produces,
        // and the filter is what keeps the live channel-dependency graph
        // a subgraph of the turn set's acyclic CDG. Fault-free runs skip
        // this entirely (`faults_possible` is false).
        let legal_bits = if !self.faults_possible {
            u32::MAX
        } else {
            match (&self.turn_filter, arrived) {
                (Some(set), Some(a)) => set.allowed_from_bits(a),
                _ => u32::MAX,
            }
        };
        // Candidate output channels: turn-legal, existing, non-faulty, and
        // within the misroute budget when the routing function is
        // nonminimal.
        let here = self.topo.min_hops(v, pkt.dst);
        let mut candidates: Vec<(Direction, usize, bool)> = Vec::with_capacity(4);
        for dir in dirs.iter() {
            if legal_bits & (1 << dir.index()) == 0 {
                continue;
            }
            let slot = self.topo.channel_slot(v, dir);
            if !self.exists[slot] || self.unusable(slot) {
                continue;
            }
            let next = self.topo.neighbor(v, dir).expect("existing channel");
            let productive = self.topo.min_hops(next, pkt.dst) < here;
            candidates.push((dir, slot, productive));
        }
        // Misroute around the fault: when every output the algorithm
        // offers is broken, take any healthy turn-legal channel instead.
        // Nonminimal drifting is bounded by the packet lifetime, not the
        // misroute budget.
        if candidates.is_empty() && self.faults_possible && self.turn_filter.is_some() {
            for dir_idx in 0..self.dirs_per_node {
                if legal_bits & (1 << dir_idx) == 0 {
                    continue;
                }
                let dir = Direction::from_index(dir_idx);
                let slot = self.topo.channel_slot(v, dir);
                if !self.exists[slot] || self.unusable(slot) {
                    continue;
                }
                let next = self.topo.neighbor(v, dir).expect("existing channel");
                let productive = self.topo.min_hops(next, pkt.dst) < here;
                candidates.push((dir, slot, productive));
            }
        }
        if !self.routing.is_minimal()
            && pkt.misroutes >= self.cfg.misroute_budget
            && candidates.iter().any(|&(_, _, p)| p)
        {
            candidates.retain(|&(_, _, p)| p);
        }
        RouteDecision::Candidates(arrived, candidates)
    }

    /// Commit one granted output: channel bindings, misroute marking,
    /// packet accounting, path recording, and observer hooks.
    fn commit_grant(
        &mut self,
        c: usize,
        arrived: Option<Direction>,
        pick: (Direction, usize, bool),
    ) {
        let packet = self.buf[c].front().expect("head present").packet;
        let v = NodeId(self.input_router[c]);
        let (dir, slot, productive) = pick;
        self.assigned_out[c] = slot as u32;
        self.owner[slot] = packet;
        self.misroute_assigned[c] = !productive;
        if O::ENABLED {
            if let Some(arr) = arrived {
                self.obs
                    .on_turn(self.now, PacketId(packet), v, Turn::new(arr, dir));
            }
            if !productive {
                self.obs.on_misroute(self.now, PacketId(packet), v, dir);
            }
        }
        let p = &mut self.packets[packet as usize];
        p.hops += 1;
        if !productive {
            p.misroutes += 1;
        }
        if self.cfg.record_paths {
            let next = self.topo.neighbor(v, dir).expect("assigned channel");
            self.paths[packet as usize].push(next);
        }
    }

    /// Bind the ejection slot for the worm at `c` if it is free; shared
    /// by the policy-driven and scripted arbitration (ejection is never a
    /// choice point).
    fn try_eject(&mut self, c: usize, ej: usize) {
        let packet = self.buf[c].front().expect("head present").packet;
        if self.owner[ej] == NONE_U32 && !self.unusable(ej) {
            self.assigned_out[c] = ej as u32;
            self.owner[ej] = packet;
            self.misroute_assigned[c] = false;
        }
    }

    fn try_assign(&mut self, c: usize) {
        match self.route_decision(c) {
            RouteDecision::Eject(ej) => self.try_eject(c, ej),
            RouteDecision::Hold => {}
            RouteDecision::Candidates(arrived, mut candidates) => {
                // Free channels only, and misroute only when necessary: if
                // any productive channel is free, unproductive ones are
                // not taken.
                candidates.retain(|&(_, slot, _)| self.owner[slot] == NONE_U32);
                if candidates.iter().any(|&(_, _, p)| p) {
                    candidates.retain(|&(_, _, p)| p);
                }
                if candidates.is_empty() {
                    return;
                }
                let pick = match self.cfg.output_policy {
                    OutputPolicy::LowestDim => *candidates
                        .iter()
                        .min_by_key(|&&(dir, _, _)| dir.index())
                        .expect("nonempty"),
                    OutputPolicy::HighestDim => *candidates
                        .iter()
                        .max_by_key(|&&(dir, _, _)| dir.index())
                        .expect("nonempty"),
                    OutputPolicy::Random => candidates[self.rng.gen_range(0..candidates.len())],
                };
                self.commit_grant(c, arrived, pick);
            }
        }
    }

    // ---- choice-scripted stepping (model checking) ------------------

    /// Advance one cycle with every arbitration decision resolved by
    /// `script` instead of the configured input/output policies.
    ///
    /// The mechanics are [`Sim::step`]'s own — same phases, same order,
    /// same `route_decision` semantics — only the *selection* among
    /// waiting heads and among free candidate outputs is delegated to the
    /// oracle. `turncheck` enumerates scripts (see
    /// [`ChoiceScript::next_script`]) to cover every schedule any policy
    /// could produce; the decision points are:
    ///
    /// 1. per router, which waiting head is served next (the input-policy
    ///    axis), and
    /// 2. per served head, which free candidate output it takes (the
    ///    output-policy axis).
    ///
    /// Heads are grouped by input router in router-index order. Same-cycle
    /// arbitrations at *distinct* routers commute — a router only reads
    /// and grants ownership of its own output channels and only writes
    /// the bindings of its own input channels — so exploring service
    /// orders within each router while fixing the router order is a sound
    /// partial-order reduction, not a loss of coverage.
    pub fn step_with_choices(&mut self, script: &mut ChoiceScript) {
        self.apply_faults();
        self.expire_packets();
        self.generate();
        self.assign_outputs_scripted(script);
        self.advance();
        self.feed_injection();
        self.detect_deadlock();
        if O::ENABLED {
            self.obs.on_cycle_end(self.now);
        }
        self.now += 1;
    }

    /// Phase A under the choice oracle: collect routable heads exactly as
    /// [`Sim::collect_route_heads`] does, then serve them per router in a
    /// script-chosen order with script-chosen output picks.
    fn assign_outputs_scripted(&mut self, script: &mut ChoiceScript) {
        let mut heads = std::mem::take(&mut self.scratch_heads);
        heads.clear();
        for slot in 0..self.ej_base {
            if !self.exists[slot] || self.assigned_out[slot] != NONE_U32 {
                continue;
            }
            if matches!(self.buf[slot].front(), Some(f) if f.is_head)
                && self.now > self.head_since[slot] + self.cfg.routing_delay
            {
                heads.push(slot as u32);
            }
        }
        heads.sort_unstable_by_key(|&c| (self.input_router[c as usize], c));
        let mut i = 0;
        while i < heads.len() {
            let router = self.input_router[heads[i] as usize];
            let mut j = i;
            while j < heads.len() && self.input_router[heads[j] as usize] == router {
                j += 1;
            }
            let mut remaining: Vec<u32> = heads[i..j].to_vec();
            while !remaining.is_empty() {
                let k = script.decide(remaining.len());
                let c = remaining.remove(k);
                self.try_assign_scripted(c as usize, script);
            }
            i = j;
        }
        self.scratch_heads = heads;
    }

    /// [`Sim::try_assign`] with the output pick delegated to the oracle.
    fn try_assign_scripted(&mut self, c: usize, script: &mut ChoiceScript) {
        match self.route_decision(c) {
            RouteDecision::Eject(ej) => self.try_eject(c, ej),
            RouteDecision::Hold => {}
            RouteDecision::Candidates(arrived, mut candidates) => {
                candidates.retain(|&(_, slot, _)| self.owner[slot] == NONE_U32);
                if candidates.iter().any(|&(_, _, p)| p) {
                    candidates.retain(|&(_, _, p)| p);
                }
                if candidates.is_empty() {
                    return;
                }
                let pick = candidates[script.decide(candidates.len())];
                self.commit_grant(c, arrived, pick);
            }
        }
    }

    /// Phase B: advance flits in lockstep. A flit moves when its bound
    /// output buffer is empty or is itself vacating this cycle; dependency
    /// cycles (deadlock) advance nothing.
    fn advance(&mut self) {
        const UNKNOWN: u8 = 0;
        const IN_PROGRESS: u8 = 1;
        const YES: u8 = 2;
        const NO: u8 = 3;
        let mut state = std::mem::take(&mut self.scratch_state);
        let mut order = std::mem::take(&mut self.scratch_order);
        let mut stack = std::mem::take(&mut self.scratch_stack);
        state.iter_mut().for_each(|s| *s = UNKNOWN);
        order.clear();

        let depth = self.cfg.buffer_depth as usize;
        for start in 0..self.num_channels {
            if state[start] != UNKNOWN || self.buf[start].is_empty() {
                continue;
            }
            stack.clear();
            stack.push(start as u32);
            while let Some(&c) = stack.last() {
                let c = c as usize;
                match state[c] {
                    UNKNOWN => {
                        if self.buf[c].is_empty() {
                            state[c] = NO;
                            stack.pop();
                            continue;
                        }
                        if self.is_ejection(c) {
                            state[c] = YES;
                            order.push(c as u32);
                            stack.pop();
                            continue;
                        }
                        let o = self.assigned_out[c];
                        if o == NONE_U32 {
                            state[c] = NO;
                            stack.pop();
                            continue;
                        }
                        let o = o as usize;
                        if self.buf[o].len() < depth {
                            state[c] = YES;
                            order.push(c as u32);
                            stack.pop();
                            continue;
                        }
                        match state[o] {
                            UNKNOWN => {
                                state[c] = IN_PROGRESS;
                                stack.push(o as u32);
                            }
                            IN_PROGRESS => {
                                // Dependency cycle: blocked (this is a
                                // wormhole deadlock in the making).
                                state[c] = NO;
                                stack.pop();
                            }
                            YES => {
                                state[c] = YES;
                                order.push(c as u32);
                                stack.pop();
                            }
                            _ => {
                                state[c] = NO;
                                stack.pop();
                            }
                        }
                    }
                    IN_PROGRESS => {
                        let o = self.assigned_out[c] as usize;
                        if state[o] == YES {
                            state[c] = YES;
                            order.push(c as u32);
                        } else {
                            state[c] = NO;
                        }
                        stack.pop();
                    }
                    _ => {
                        stack.pop();
                    }
                }
            }
        }

        // Stall accounting: every occupied channel either moves a flit
        // this cycle (it is in `order`) or stalls in place.
        let in_window = self.in_window();
        if in_window {
            self.total_stall_cycles += (self.occupied_buffers - order.len()) as u64;
        }
        if O::ENABLED {
            for (c, &st) in state.iter().enumerate() {
                if st == YES {
                    continue;
                }
                let Some(front) = self.buf[c].front() else {
                    continue;
                };
                let reason = if self.assigned_out[c] == NONE_U32 {
                    StallReason::NotRouted
                } else {
                    StallReason::Backpressure
                };
                self.obs
                    .on_stall(self.now, c, PacketId(front.packet), reason);
            }
        }

        // Apply moves targets-first.
        for &c in &order {
            let c = c as usize;
            let flit = self.buf[c].pop_front().expect("flit scheduled to move");
            if self.buf[c].is_empty() {
                self.occupied_buffers -= 1;
            }
            self.last_move = self.now;
            // Blame: this cycle made forward progress for the flit's
            // packet (stamp deduplicates several flits of one worm
            // moving in the same cycle).
            let pidx = flit.packet as usize;
            if self.last_progress[pidx] != self.now {
                self.last_progress[pidx] = self.now;
                self.progress_cycles[pidx] += 1;
            }
            if self.is_ejection(c) {
                if in_window {
                    self.delivered_flits_in_window += 1;
                }
                if O::ENABLED {
                    self.obs.on_flit_advance(
                        self.now,
                        c,
                        None,
                        PacketId(flit.packet),
                        flit.is_tail,
                    );
                }
                if flit.is_tail {
                    self.owner[c] = NONE_U32;
                    let p = &mut self.packets[pidx];
                    p.delivered = Some(self.now);
                    let (id, created, hops) = (p.id, p.created, p.hops);
                    let injected = p.injected.expect("delivered packet was injected");
                    let latency = self.now - created;
                    let in_network = self.now - injected;
                    let progress = self.progress_cycles[pidx];
                    let misroute = self.misroute_progress[pidx];
                    let blame = PacketBlame {
                        queue_cycles: injected - created,
                        blocked_cycles: in_network - progress,
                        service_cycles: progress - misroute,
                        misroute_cycles: misroute,
                    };
                    debug_assert_eq!(blame.total(), latency);
                    if created >= self.window.0 && created < self.window.1 {
                        self.blame.queue_cycles += blame.queue_cycles;
                        self.blame.blocked_cycles += blame.blocked_cycles;
                        self.blame.service_cycles += blame.service_cycles;
                        self.blame.misroute_cycles += blame.misroute_cycles;
                    }
                    if O::ENABLED {
                        self.obs.on_deliver(self.now, id, latency, hops);
                        self.obs.on_blame(self.now, id, blame);
                    }
                }
            } else {
                let o = self.assigned_out[c] as usize;
                debug_assert!(self.buf[o].len() < depth);
                if in_window {
                    self.channel_flits[o] += 1;
                }
                if flit.is_head {
                    self.head_since[o] = self.now;
                    // The header crossing a non-productively granted
                    // channel marks this progress cycle as misroute
                    // penalty (the head moves at most once per cycle, so
                    // misroute progress never exceeds total progress).
                    if self.misroute_assigned[c] {
                        self.misroute_progress[pidx] += 1;
                    }
                }
                if self.buf[o].is_empty() {
                    self.occupied_buffers += 1;
                }
                self.buf[o].push_back(flit);
                if O::ENABLED {
                    self.obs.on_flit_advance(
                        self.now,
                        c,
                        Some(o),
                        PacketId(flit.packet),
                        flit.is_tail,
                    );
                }
                if flit.is_tail {
                    self.owner[c] = NONE_U32;
                    self.assigned_out[c] = NONE_U32;
                }
            }
        }

        self.scratch_state = state;
        self.scratch_order = order;
        self.scratch_stack = stack;
    }

    /// Feed the next flit of the current packet into each free injection
    /// buffer (the processor side of the injection channel).
    fn feed_injection(&mut self) {
        let depth = self.cfg.buffer_depth as usize;
        for v in 0..self.num_nodes {
            let inj = self.inj_slot(v);
            if (self.faults_possible && self.faulty[inj])
                || (self.healing_possible && self.held[v])
                || self.buf[inj].len() >= depth
            {
                continue;
            }
            if self.emitting[v].is_none() {
                let Some(pid) = self.queues[v].pop_front() else {
                    continue;
                };
                self.packets[pid as usize].injected = Some(self.now);
                self.emitting[v] = Some(Emitting {
                    packet: pid,
                    sent: 0,
                });
                if O::ENABLED {
                    let p = self.packets[pid as usize];
                    self.obs.on_inject(self.now, p.id, p.src, p.dst, p.len);
                }
            }
            let Emitting { packet, sent } = self.emitting[v].expect("set above");
            let len = self.packets[packet as usize].len;
            let flit = BufFlit {
                packet,
                is_head: sent == 0,
                is_tail: sent + 1 == len,
            };
            if flit.is_head {
                self.head_since[inj] = self.now;
                self.owner[inj] = packet;
            }
            if self.buf[inj].is_empty() {
                self.occupied_buffers += 1;
            }
            if O::ENABLED {
                self.obs
                    .on_flit_source(self.now, inj, PacketId(packet), flit.is_tail);
            }
            self.buf[inj].push_back(flit);
            self.emitting[v] = if sent + 1 == len {
                None
            } else {
                Some(Emitting {
                    packet,
                    sent: sent + 1,
                })
            };
        }
    }

    fn detect_deadlock(&mut self) {
        if self.now.saturating_sub(self.last_move) >= self.cfg.deadlock_threshold
            && self.occupied_buffers > 0
        {
            self.deadlocked = true;
            if O::ENABLED {
                let snapshot = self.deadlock_snapshot();
                self.obs.on_deadlock(self.now, &snapshot);
            }
        }
    }

    /// The frozen waits-for graph over currently occupied channels.
    ///
    /// Each occupied channel contributes one edge naming the front flit's
    /// packet and, when the worm is routed, the output channel it waits
    /// on; [`DeadlockSnapshot::cycle_channels`] then separates worms on
    /// an actual circular wait from traffic merely blocked behind them.
    pub fn deadlock_snapshot(&self) -> DeadlockSnapshot {
        let layout = ChannelLayout::new(self.num_nodes, self.dirs_per_node / 2);
        let mut edges = Vec::new();
        for c in 0..self.num_channels {
            let Some(front) = self.buf[c].front() else {
                continue;
            };
            let waits_for = if self.is_ejection(c) {
                None
            } else if self.assigned_out[c] != NONE_U32 {
                Some(self.assigned_out[c] as usize)
            } else if front.is_head {
                // Unrouted head: arbitration never bound it because every
                // output it wants is held by another worm. Re-derive the
                // wanted output — that is the true waits-for edge.
                self.wanted_output(c)
            } else {
                None
            };
            edges.push(WaitEdge {
                channel: c,
                packet: front.packet,
                buffered: self.buf[c].len(),
                head_waiting: front.is_head,
                waits_for,
            });
        }
        DeadlockSnapshot {
            now: self.now,
            layout,
            edges,
        }
    }

    /// The output channel the (unassigned) head flit at `c` is waiting
    /// to acquire: [`Sim::try_assign`]'s candidate selection minus the
    /// free-channel filter. With several busy alternatives the output
    /// policy's preferred one is reported (`Random` falls back to
    /// `LowestDim` — the snapshot cannot perturb the RNG).
    fn wanted_output(&self, c: usize) -> Option<usize> {
        self.buf[c].front()?;
        match self.route_decision(c) {
            RouteDecision::Eject(ej) => Some(ej),
            // Arbitration paused: the head waits on the hold.
            RouteDecision::Hold => None,
            RouteDecision::Candidates(_, mut candidates) => {
                if candidates.iter().any(|&(_, _, p)| p) {
                    candidates.retain(|&(_, _, p)| p);
                }
                let pick = match self.cfg.output_policy {
                    OutputPolicy::HighestDim => {
                        candidates.iter().max_by_key(|&&(dir, _, _)| dir.index())
                    }
                    OutputPolicy::LowestDim | OutputPolicy::Random => {
                        candidates.iter().min_by_key(|&&(dir, _, _)| dir.index())
                    }
                };
                pick.map(|&(_, slot, _)| slot)
            }
        }
    }

    // ---- snapshot / restore -----------------------------------------

    /// Capture the engine's complete mutable state.
    ///
    /// See [`SimSnapshot`] for the boundary. Restoring the snapshot into
    /// the same (or an identically-shaped) simulation with
    /// [`Sim::restore`] resumes execution bit-for-bit: same RNG stream,
    /// same arbitration outcomes, same report.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            now: self.now,
            rng: self.rng.clone(),
            faulty: self.faulty.clone(),
            fault_cursor: self.fault_cursor,
            fault_depth: self.fault_depth.clone(),
            node_down: self.node_down.clone(),
            faults_possible: self.faults_possible,
            held: self.held.clone(),
            quarantined: self.quarantined.clone(),
            healing_possible: self.healing_possible,
            deadlines: self.deadlines.clone(),
            retry_counts: self.retry_counts.clone(),
            dropped_packets: self.dropped_packets,
            unroutable_packets: self.unroutable_packets,
            total_retries: self.total_retries,
            owner: self.owner.clone(),
            buf: self.buf.clone(),
            assigned_out: self.assigned_out.clone(),
            head_since: self.head_since.clone(),
            packets: self.packets.clone(),
            paths: self.paths.clone(),
            queues: self.queues.clone(),
            emitting: self.emitting.clone(),
            next_arrival: self.next_arrival.clone(),
            progress_cycles: self.progress_cycles.clone(),
            last_progress: self.last_progress.clone(),
            misroute_progress: self.misroute_progress.clone(),
            misroute_assigned: self.misroute_assigned.clone(),
            blame: self.blame,
            window: self.window,
            generated_packets: self.generated_packets,
            generated_flits: self.generated_flits,
            delivered_flits_in_window: self.delivered_flits_in_window,
            channel_flits: self.channel_flits.clone(),
            max_queue_len: self.max_queue_len,
            last_move: self.last_move,
            deadlocked: self.deadlocked,
            occupied_buffers: self.occupied_buffers,
            total_stall_cycles: self.total_stall_cycles,
        }
    }

    /// Restore state captured by [`Sim::snapshot`]. The observer is not
    /// rewound — see [`SimSnapshot`] for the boundary.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a differently-shaped network
    /// (different channel or node count).
    pub fn restore(&mut self, snap: &SimSnapshot) {
        assert_eq!(
            snap.owner.len(),
            self.num_channels,
            "snapshot from a different network shape"
        );
        assert_eq!(
            snap.queues.len(),
            self.num_nodes,
            "snapshot from a different network shape"
        );
        self.now = snap.now;
        self.rng = snap.rng.clone();
        self.faulty.clone_from(&snap.faulty);
        self.fault_cursor = snap.fault_cursor;
        self.fault_depth.clone_from(&snap.fault_depth);
        self.node_down.clone_from(&snap.node_down);
        self.faults_possible = snap.faults_possible;
        self.held.clone_from(&snap.held);
        self.quarantined.clone_from(&snap.quarantined);
        self.healing_possible = snap.healing_possible;
        self.deadlines.clone_from(&snap.deadlines);
        self.retry_counts.clone_from(&snap.retry_counts);
        self.dropped_packets = snap.dropped_packets;
        self.unroutable_packets = snap.unroutable_packets;
        self.total_retries = snap.total_retries;
        self.owner.clone_from(&snap.owner);
        self.buf.clone_from(&snap.buf);
        self.assigned_out.clone_from(&snap.assigned_out);
        self.head_since.clone_from(&snap.head_since);
        self.packets.clone_from(&snap.packets);
        self.paths.clone_from(&snap.paths);
        self.queues.clone_from(&snap.queues);
        self.emitting.clone_from(&snap.emitting);
        self.next_arrival.clone_from(&snap.next_arrival);
        self.progress_cycles.clone_from(&snap.progress_cycles);
        self.last_progress.clone_from(&snap.last_progress);
        self.misroute_progress.clone_from(&snap.misroute_progress);
        self.misroute_assigned.clone_from(&snap.misroute_assigned);
        self.blame = snap.blame;
        self.window = snap.window;
        self.generated_packets = snap.generated_packets;
        self.generated_flits = snap.generated_flits;
        self.delivered_flits_in_window = snap.delivered_flits_in_window;
        self.channel_flits.clone_from(&snap.channel_flits);
        self.max_queue_len = snap.max_queue_len;
        self.last_move = snap.last_move;
        self.deadlocked = snap.deadlocked;
        self.occupied_buffers = snap.occupied_buffers;
        self.total_stall_cycles = snap.total_stall_cycles;
    }

    // ---- model-checker state views ----------------------------------

    /// Total channel slots: network channels, then one injection and one
    /// ejection channel per node (same numbering as
    /// [`crate::obs::ChannelLayout`]).
    pub fn num_slots(&self) -> usize {
        self.num_channels
    }

    /// The packet whose worm currently owns `slot`, if any.
    pub fn slot_owner(&self, slot: usize) -> Option<u32> {
        (self.owner[slot] != NONE_U32).then_some(self.owner[slot])
    }

    /// The output slot the worm crossing input `slot` is bound to, if
    /// routed.
    pub fn slot_binding(&self, slot: usize) -> Option<usize> {
        (self.assigned_out[slot] != NONE_U32).then_some(self.assigned_out[slot] as usize)
    }

    /// The flits buffered at `slot`, front first, as
    /// `(packet, is_head, is_tail)`.
    pub fn slot_flits(&self, slot: usize) -> impl Iterator<Item = (u32, bool, bool)> + '_ {
        self.buf[slot]
            .iter()
            .map(|f| (f.packet, f.is_head, f.is_tail))
    }

    /// Packets queued at `node`'s source, front first.
    pub fn source_queue(&self, node: usize) -> impl Iterator<Item = u32> + '_ {
        self.queues[node].iter().copied()
    }

    /// The packet currently streaming into `node`'s injection channel and
    /// how many of its flits have been emitted.
    pub fn source_emitting(&self, node: usize) -> Option<(u32, u32)> {
        self.emitting[node].map(|e| (e.packet, e.sent))
    }
}

impl<O: SimObserver> std::fmt::Debug for Sim<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("routing", &self.routing.name())
            .field("pattern", &self.pattern.name())
            .field("packets", &self.packets.len())
            .field("deadlocked", &self.deadlocked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_routing::{mesh2d, RoutingMode};
    use turnroute_topology::Mesh;
    use turnroute_traffic::Uniform;

    fn quiet_cfg() -> SimConfig {
        SimConfig::builder()
            .injection_rate(0.0)
            .deadlock_threshold(500)
            .build()
    }

    #[test]
    fn single_packet_latency_is_distance_plus_length() {
        // One packet, no contention: the head takes one cycle per channel
        // (injection + hops + ejection) and the tail follows len-1 cycles
        // behind.
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[1, 1]);
        let dst = mesh.node_at_coords(&[5, 4]); // 7 hops
        let id = sim.inject_packet(src, dst, 10);
        assert!(sim.run_until_idle(500));
        let p = sim.packets()[id.index()];
        assert_eq!(p.hops, 7);
        // The head enters the injection buffer at the end of cycle 0, is
        // consumed after 1 injection + 7 network + 1 ejection transfers
        // (cycle 9), and the tail follows 9 flit-cycles behind: cycle 18.
        assert_eq!(p.latency(), Some(18));
        assert_eq!(p.misroutes, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::negative_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.08)
            .warmup_cycles(300)
            .measure_cycles(1_000)
            .drain_cycles(1_000)
            .seed(42)
            .build();
        let r1 = Sim::new(&mesh, &routing, &pattern, cfg.clone()).run();
        let r2 = Sim::new(&mesh, &routing, &pattern, cfg).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn profiled_run_matches_plain_run_exactly() {
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.08)
            .warmup_cycles(200)
            .measure_cycles(500)
            .drain_cycles(500)
            .seed(17)
            .build();
        let plain = Sim::new(&mesh, &routing, &pattern, cfg.clone()).run();
        let mut prof = PhaseProfiler::new();
        let profiled = Sim::new(&mesh, &routing, &pattern, cfg).run_profiled(&mut prof);
        assert_eq!(plain, profiled, "profiling must not perturb simulation");
        assert_eq!(prof.cycles(), 1_200);
        assert!(prof.total_nanos() > 0);
        // Every phase ran (traversal and arbitration dominate, but even
        // drain does fault/expiry checks each cycle).
        for phase in Phase::ALL {
            assert!(prof.nanos(phase) > 0, "{} never timed", phase.name());
        }
    }

    #[test]
    fn conservation_all_packets_delivered_at_low_load() {
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.05)
            .lengths(crate::LengthDist::Fixed(10))
            .warmup_cycles(0)
            .measure_cycles(2_000)
            .drain_cycles(3_000)
            .seed(3)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        let report = sim.run();
        assert!(!report.deadlocked);
        assert_eq!(report.delivered_packets, report.generated_packets);
        assert_eq!(report.queued_at_end, 0);
        assert!(report.generated_packets > 50, "load too low to be a test");
    }

    #[test]
    fn two_packets_contend_for_one_channel() {
        // Both packets need the same output channel; FCFS serializes them.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let a = sim.inject_packet(
            mesh.node_at_coords(&[0, 0]),
            mesh.node_at_coords(&[3, 0]),
            10,
        );
        let b = sim.inject_packet(
            mesh.node_at_coords(&[0, 0]),
            mesh.node_at_coords(&[2, 0]),
            10,
        );
        assert!(sim.run_until_idle(500));
        let (pa, pb) = (sim.packets()[a.index()], sim.packets()[b.index()]);
        // Same source: b cannot even start injecting until a's tail left
        // the injection channel.
        assert!(pb.injected.unwrap() >= pa.injected.unwrap() + 10);
        assert!(pa.delivered.is_some() && pb.delivered.is_some());
    }

    #[test]
    fn faulty_channel_is_avoided_by_adaptive_routing() {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[0, 0]);
        let dst = mesh.node_at_coords(&[2, 2]);
        // Break the eastward channel out of the source; WF can go north.
        sim.set_fault(src, Direction::EAST);
        let id = sim.inject_packet(src, dst, 5);
        assert!(sim.run_until_idle(500));
        let p = sim.packets()[id.index()];
        assert_eq!(p.hops, 4);
        assert!(p.delivered.is_some());
    }

    #[test]
    fn held_router_pauses_and_resumes_arbitration() {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[0, 0]);
        let mid = mesh.node_at_coords(&[1, 0]);
        let dst = mesh.node_at_coords(&[3, 0]);
        sim.set_hold(mid, true);
        let id = sim.inject_packet(src, dst, 3);
        // The head reaches the held router and waits there; nothing is
        // granted past it, so the network never goes idle.
        assert!(!sim.run_until_idle(100));
        assert!(sim.packets()[id.index()].delivered.is_none());
        sim.set_hold(mid, false);
        assert!(sim.run_until_idle(200));
        assert!(sim.packets()[id.index()].delivered.is_some());
    }

    #[test]
    fn held_source_does_not_inject() {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[0, 0]);
        let dst = mesh.node_at_coords(&[2, 0]);
        sim.set_hold(src, true);
        let id = sim.inject_packet(src, dst, 2);
        assert!(!sim.run_until_idle(100), "queued packet never enters");
        assert!(sim.packets()[id.index()].injected.is_none());
        sim.set_hold(src, false);
        assert!(sim.run_until_idle(100));
        assert!(sim.packets()[id.index()].delivered.is_some());
    }

    #[test]
    fn quarantined_channel_is_avoided_like_a_fault_and_releases() {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[0, 0]);
        let dst = mesh.node_at_coords(&[2, 2]);
        sim.set_quarantine(src, Direction::EAST, true);
        assert!(sim.is_quarantined(src, Direction::EAST));
        let id = sim.inject_packet(src, dst, 5);
        assert!(sim.run_until_idle(500));
        // Same detour as the faulty-channel test: west-first goes north
        // and the quarantined channel carries nothing.
        let p = sim.packets()[id.index()];
        assert_eq!(p.hops, 4);
        assert!(p.delivered.is_some());
        assert_eq!(sim.channel_load(src, Direction::EAST), 0);
        // Released, the channel is grantable again.
        sim.set_quarantine(src, Direction::EAST, false);
        assert!(!sim.is_quarantined(src, Direction::EAST));
        let id2 = sim.inject_packet(src, mesh.node_at_coords(&[2, 0]), 5);
        assert!(sim.run_until_idle(500));
        assert!(sim.packets()[id2.index()].delivered.is_some());
        assert!(sim.channel_load(src, Direction::EAST) > 0);
    }

    #[test]
    fn is_idle_initially() {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        assert!(sim.is_idle());
        assert_eq!(sim.now(), 0);
        assert!(!sim.deadlocked());
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("xy"), "{dbg}");
    }

    #[test]
    fn channel_loads_count_path_flits() {
        // One 10-flit packet along a straight 3-hop eastward path: each
        // network channel on the path carries all 10 flits.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[0, 1]);
        let dst = mesh.node_at_coords(&[3, 1]);
        sim.inject_packet(src, dst, 10);
        assert!(sim.run_until_idle(200));
        for x in 0..3u16 {
            let node = mesh.node_at_coords(&[x, 1]);
            assert_eq!(sim.channel_load(node, Direction::EAST), 10);
        }
        assert_eq!(sim.channel_load(src, Direction::NORTH), 0);
        assert_eq!(sim.max_channel_load(), 10);
        assert_eq!(sim.total_channel_flits(), 30);
    }

    #[test]
    fn fault_plan_runs_are_deterministic() {
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let plan = crate::FaultPlan::random_links(&mesh, 0.08, 200, 99).transient_node(
            NodeId(27),
            400,
            300,
        );
        let cfg = SimConfig::builder()
            .injection_rate(0.06)
            .warmup_cycles(300)
            .measure_cycles(1_500)
            .drain_cycles(1_500)
            .packet_timeout(800)
            .max_retries(1)
            .seed(7)
            .fault_plan(plan)
            .build();
        let r1 = Sim::new(&mesh, &routing, &pattern, cfg.clone()).run();
        let r2 = Sim::new(&mesh, &routing, &pattern, cfg).run();
        assert_eq!(r1, r2);
        assert!(r1.delivered_packets > 0);
    }

    #[test]
    fn transient_fault_heals_and_packet_gets_through() {
        // On a 1D line the only output toward the destination is the
        // failed link and no fallback direction exists, so the packet
        // waits at the source, the fault heals at cycle 100, and it
        // delivers.
        let mesh = Mesh::new(vec![4]);
        let routing = turnroute_routing::DimensionOrder::new("x", vec![0]);
        let pattern = Uniform::new();
        let src = mesh.node_at_coords(&[0]);
        let dst = mesh.node_at_coords(&[3]);
        let plan = crate::FaultPlan::new().transient_link(src, Direction::EAST, 0, 100);
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .deadlock_threshold(5_000)
            .fault_plan(plan)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        let id = sim.inject_packet(src, dst, 5);
        assert!(sim.run_until_idle(1_000));
        let p = sim.packets()[id.index()];
        assert!(p.delivered.is_some());
        assert!(p.delivered.unwrap() >= 100, "delivered before the heal");
    }

    /// Deterministic left-turner that forces the paper's Figure 1
    /// circular wait on a 2x2 mesh (used by the precedence tests).
    #[derive(Debug, Clone, Copy)]
    struct TurnLeft;

    impl RoutingFunction for TurnLeft {
        fn name(&self) -> &str {
            "turn-left (deadlocks)"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            arrived: Option<Direction>,
        ) -> turnroute_topology::DirSet {
            let left_of = |d: Direction| match d {
                Direction::EAST => Direction::NORTH,
                Direction::NORTH => Direction::WEST,
                Direction::WEST => Direction::SOUTH,
                Direction::SOUTH => Direction::EAST,
                _ => unreachable!("2D directions only"),
            };
            let productive = topo.productive_dirs(current, dest);
            if productive.len() <= 1 {
                return productive;
            }
            if let Some(arr) = arrived {
                if productive.contains(arr) {
                    return turnroute_topology::DirSet::single(arr);
                }
            }
            for d in productive.iter() {
                if productive.contains(left_of(d)) {
                    return turnroute_topology::DirSet::single(d);
                }
            }
            turnroute_topology::DirSet::single(productive.iter().next().expect("nonempty"))
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    /// Four diagonal packets on a 2x2 mesh under [`TurnLeft`]: a
    /// guaranteed circular wait.
    fn square_deadlock_sim<'a>(
        mesh: &'a Mesh,
        routing: &'a TurnLeft,
        pattern: &'a Uniform,
        cfg: SimConfig,
    ) -> Sim<'a> {
        let mut sim = Sim::new(mesh, routing, pattern, cfg);
        let pairs = [
            ([0u16, 0], [1u16, 1]),
            ([1, 0], [0, 1]),
            ([1, 1], [0, 0]),
            ([0, 1], [1, 0]),
        ];
        for (s, d) in pairs {
            sim.inject_packet(mesh.node_at_coords(&s), mesh.node_at_coords(&d), 8);
        }
        sim
    }

    #[test]
    fn partitioned_destination_counts_as_unroutable() {
        // The destination node goes down permanently; with a lifetime and
        // no retries the packet is purged as unroutable and the run ends
        // Completed, not deadlocked.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let dst = mesh.node_at_coords(&[3, 3]);
        let plan = crate::FaultPlan::new().permanent_node(dst, 0);
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .warmup_cycles(0)
            .measure_cycles(400)
            .drain_cycles(400)
            .packet_timeout(200)
            .deadlock_threshold(10_000)
            .fault_plan(plan)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        sim.inject_packet(mesh.node_at_coords(&[0, 0]), dst, 5);
        let report = sim.run();
        assert_eq!(report.termination, crate::RunTermination::Completed);
        assert!(!report.deadlocked);
        assert_eq!(report.unroutable_packets, 1);
        assert_eq!(report.dropped_packets, 0);
        assert_eq!(report.delivered_packets, 0);
        assert!(sim.is_idle(), "purge must empty the network");
    }

    #[test]
    fn timeout_below_threshold_degrades_instead_of_deadlocking() {
        // Force a circular wait, with the packet lifetime shorter than the
        // deadlock threshold: expiries purge the blocked worms and the run
        // ends Completed with the loss accounted, never tripping the
        // detector.
        let mesh = Mesh::new_2d(2, 2);
        let routing = TurnLeft;
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .warmup_cycles(0)
            .measure_cycles(300)
            .drain_cycles(300)
            .packet_timeout(80)
            .deadlock_threshold(2_000)
            .build();
        let mut sim = square_deadlock_sim(&mesh, &routing, &pattern, cfg);
        let report = sim.run();
        assert_eq!(report.termination, crate::RunTermination::Completed);
        assert!(!report.deadlocked);
        assert_eq!(
            report.dropped_packets + report.delivered_packets,
            4,
            "{report}"
        );
        assert!(report.dropped_packets > 0, "{report}");
        assert!(sim.is_idle(), "expiries must have drained the network");
    }

    #[test]
    fn threshold_below_timeout_still_declares_deadlock() {
        // Same circular wait, precedence reversed: the deadlock detector
        // fires before any lifetime expires, and nothing is dropped.
        let mesh = Mesh::new_2d(2, 2);
        let routing = TurnLeft;
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .warmup_cycles(0)
            .measure_cycles(300)
            .drain_cycles(300)
            .packet_timeout(2_000)
            .deadlock_threshold(80)
            .build();
        let mut sim = square_deadlock_sim(&mesh, &routing, &pattern, cfg);
        let report = sim.run();
        assert_eq!(report.termination, crate::RunTermination::Deadlock);
        assert!(report.deadlocked);
        assert_eq!(report.dropped_packets, 0);
    }

    #[test]
    fn retries_requeue_and_are_counted() {
        // Block the packet's only way out long enough to expire its first
        // lifetime; the retry re-queues it and it delivers after the heal.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let src = mesh.node_at_coords(&[0, 0]);
        let dst = mesh.node_at_coords(&[3, 0]);
        let plan = crate::FaultPlan::new().transient_link(src, Direction::EAST, 0, 300);
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .warmup_cycles(0)
            .measure_cycles(1_000)
            .drain_cycles(1_000)
            .packet_timeout(150)
            .max_retries(5)
            .deadlock_threshold(5_000)
            .fault_plan(plan)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        let id = sim.inject_packet(src, dst, 5);
        let report = sim.run();
        let p = sim.packets()[id.index()];
        assert!(p.delivered.is_some(), "{report}");
        assert!(report.retries >= 1, "{report}");
        assert_eq!(report.dropped_packets, 0);
    }

    #[test]
    fn down_node_does_not_inject() {
        // A down source cannot stream packets into the network; its
        // queued packet expires as unroutable.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let src = mesh.node_at_coords(&[1, 1]);
        let plan = crate::FaultPlan::new().permanent_node(src, 0);
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .warmup_cycles(0)
            .measure_cycles(400)
            .drain_cycles(400)
            .packet_timeout(100)
            .deadlock_threshold(10_000)
            .fault_plan(plan)
            .build();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        let id = sim.inject_packet(src, mesh.node_at_coords(&[3, 3]), 5);
        let report = sim.run();
        let p = sim.packets()[id.index()];
        assert!(p.injected.is_none());
        assert!(p.dropped.is_some());
        assert_eq!(report.unroutable_packets, 1);
    }

    #[test]
    fn blame_identity_and_report_totals_match_latencies() {
        struct Blames(Vec<(PacketId, PacketBlame)>);
        impl SimObserver for Blames {
            fn on_blame(&mut self, _now: u64, packet: PacketId, blame: PacketBlame) {
                self.0.push((packet, blame));
            }
        }
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.20)
            .warmup_cycles(100)
            .measure_cycles(800)
            .drain_cycles(2_000)
            .seed(11)
            .build();
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, Blames(Vec::new()));
        let report = sim.run();
        assert!(report.delivered_packets > 50, "{report}");
        let blames = std::mem::take(&mut sim.observer_mut().0);
        assert!(!blames.is_empty());
        let mut window_total = 0u64;
        for &(id, blame) in &blames {
            let p = sim.packets()[id.index()];
            assert_eq!(
                blame.total(),
                p.latency().expect("blamed packets were delivered"),
                "blame identity broken for {id:?}"
            );
            if p.created >= 100 && p.created < 900 {
                window_total += blame.total();
            }
        }
        // The report's blame totals cover exactly the delivered window
        // packets, so they sum to that cohort's total latency mass.
        assert_eq!(report.blame.total(), window_total);
        assert!(report.blame.queue_cycles > 0, "{report}");
        assert!(report.blame.service_cycles > 0, "{report}");
    }

    #[test]
    fn saturated_run_times_out_instead_of_completing() {
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = crate::harness::saturating_config(5, 400, 10_000);
        let report = Sim::new(&mesh, &routing, &pattern, cfg).run();
        assert_eq!(report.termination, crate::RunTermination::Timeout);
        assert!(!report.deadlocked);
        assert!(report.queued_at_end > 0, "{report}");
    }

    #[test]
    #[should_panic(expected = "must leave its source")]
    fn inject_rejects_self_packet() {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
        let _ = sim.inject_packet(NodeId(3), NodeId(3), 5);
    }

    #[test]
    fn snapshot_restore_resumes_bit_for_bit() {
        // A plain run and a run that is snapshotted mid-flight, perturbed
        // (extra steps, an extra packet), and restored must produce the
        // same report — the snapshot boundary covers everything the
        // simulation reads.
        let mesh = Mesh::new_2d(8, 8);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.08)
            .warmup_cycles(100)
            .measure_cycles(400)
            .drain_cycles(400)
            .seed(23)
            .build();
        let plain = Sim::new(&mesh, &routing, &pattern, cfg.clone()).run();
        let mut sim = Sim::new(&mesh, &routing, &pattern, cfg);
        sim.set_measure_window(100, 500);
        for _ in 0..250 {
            sim.step();
        }
        let snap = sim.snapshot();
        // Perturb: junk steps plus a junk packet, then rewind.
        sim.inject_packet(NodeId(0), NodeId(60), 7);
        for _ in 0..40 {
            sim.step();
        }
        sim.restore(&snap);
        assert_eq!(sim.snapshot(), snap, "restore is lossless");
        while sim.now() < 900 && !sim.deadlocked() {
            sim.step();
        }
        assert_eq!(sim.report(), plain, "restored run diverged");
    }

    #[test]
    fn scripted_step_with_empty_scripts_matches_port_order_lowest_dim() {
        // Digit 0 everywhere = serve heads in slot order, take the first
        // candidate the routing function offers. Under a deterministic
        // single-dir routing function (xy) every policy collapses to that,
        // so scripted and plain runs must agree exactly.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .deadlock_threshold(500)
            .input_policy(InputPolicy::PortOrder)
            .build();
        let mut plain = Sim::new(&mesh, &routing, &pattern, cfg.clone());
        let mut scripted = Sim::new(&mesh, &routing, &pattern, cfg);
        for (src, dst) in [(0u32, 15u32), (5, 3), (12, 2), (9, 6)] {
            plain.inject_packet(NodeId(src), NodeId(dst), 4);
            scripted.inject_packet(NodeId(src), NodeId(dst), 4);
        }
        for _ in 0..120 {
            plain.step();
            let mut script = ChoiceScript::default();
            scripted.step_with_choices(&mut script);
        }
        assert_eq!(scripted.snapshot(), plain.snapshot());
        assert!(plain.is_idle() && scripted.is_idle());
    }

    #[test]
    fn scripted_choices_cover_both_contending_heads() {
        // Two heads meet at router (1,0) the same cycle, both needing its
        // +y output under xy routing; the script's digit decides which is
        // served first, and both winners are reachable.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let pattern = Uniform::new();
        let mut winners = Vec::new();
        for digit in [0u32, 1] {
            let mut sim = Sim::new(&mesh, &routing, &pattern, quiet_cfg());
            let dst = mesh.node_at_coords(&[1, 2]);
            let a = sim.inject_packet(mesh.node_at_coords(&[0, 0]), dst, 3);
            let b = sim.inject_packet(mesh.node_at_coords(&[2, 0]), dst, 3);
            // Two choice-free steps march both heads to the meeting
            // router's input buffers.
            for _ in 0..2 {
                let mut s = ChoiceScript::default();
                sim.step_with_choices(&mut s);
                assert!(s.arities().is_empty(), "premature choice point");
            }
            let mut script = ChoiceScript::new(vec![digit]);
            sim.step_with_choices(&mut script);
            assert_eq!(script.arities(), &[2], "expected one 2-way contention");
            let pa = sim.packets()[a.index()];
            let pb = sim.packets()[b.index()];
            assert_ne!(pa.hops, pb.hops, "exactly one head won the channel");
            winners.push(pa.hops > pb.hops);
        }
        assert_ne!(winners[0], winners[1], "digit did not change the winner");
    }
}
