//! Deterministic fault-injection schedules.
//!
//! A [`FaultPlan`] is a list of scheduled link/node failures — permanent or
//! transient — that the engine applies as simulated time passes. Plans are
//! plain data: cloneable, comparable, and independent of any simulator
//! instance, so the same plan can drive the base engine and the
//! virtual-channel simulator and both stay deterministic (identical seed +
//! identical plan ⇒ identical report).
//!
//! The fault model is *fail-stop for new channel acquisitions*: a failed
//! channel is never assigned to a new worm, but flits already streaming
//! across it drain normally (the link completes in-flight transfers). A
//! failed node additionally stops injecting and ejecting. Packets whose
//! only legal routes are failed simply wait; the engine's packet timeout
//! ([`crate::SimConfig::packet_timeout`]) then retries or drops them, which
//! is what turns a partitioned network into a degradation summary instead
//! of a hang.

use turnroute_rng::rngs::StdRng;
use turnroute_rng::{Rng, SeedableRng};
use turnroute_topology::{Direction, FaultSet, NodeId, Topology};

/// The component a fault takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The unidirectional channel leaving `node` in `dir`.
    Link {
        /// Source router of the channel.
        node: NodeId,
        /// Direction the channel points.
        dir: Direction,
    },
    /// A whole router: every channel leaving or entering it, plus its
    /// injection and ejection service.
    Node(NodeId),
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What fails.
    pub target: FaultTarget,
    /// Cycle the failure activates.
    pub start: u64,
    /// How long it lasts; `None` is permanent. A transient fault is active
    /// during `[start, start + duration)`.
    pub duration: Option<u64>,
}

/// A state transition compiled from a [`FaultPlan`]: at cycle `at`, the
/// target goes `down` (or comes back up). Overlapping faults on the same
/// component are reference-counted by the simulators, so transitions can
/// be applied independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the transition takes effect.
    pub at: u64,
    /// What changes state.
    pub target: FaultTarget,
    /// `true` = failure activates, `false` = it heals.
    pub down: bool,
}

/// A deterministic schedule of link and node failures.
///
/// # Example
///
/// ```
/// use turnroute_sim::{FaultPlan, FaultTarget};
/// use turnroute_topology::{Direction, NodeId};
///
/// let plan = FaultPlan::new()
///     .permanent_link(NodeId(5), Direction::EAST, 1_000)
///     .transient_node(NodeId(9), 2_000, 500);
/// assert_eq!(plan.len(), 2);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the default): no faults, and the engine's fault
    /// machinery stays a branch-predictable no-op.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Fail the channel leaving `node` in `dir` forever, starting at
    /// `start`.
    pub fn permanent_link(self, node: NodeId, dir: Direction, start: u64) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Link { node, dir },
            start,
            duration: None,
        })
    }

    /// Fail the channel leaving `node` in `dir` for `duration` cycles
    /// starting at `start`.
    pub fn transient_link(
        self,
        node: NodeId,
        dir: Direction,
        start: u64,
        duration: u64,
    ) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Link { node, dir },
            start,
            duration: Some(duration),
        })
    }

    /// Fail `node` (all incident channels and its local services) forever,
    /// starting at `start`.
    pub fn permanent_node(self, node: NodeId, start: u64) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Node(node),
            start,
            duration: None,
        })
    }

    /// Fail `node` for `duration` cycles starting at `start`.
    pub fn transient_node(self, node: NodeId, start: u64, duration: u64) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Node(node),
            start,
            duration: Some(duration),
        })
    }

    /// A plan failing `fraction` of `topo`'s channels permanently at
    /// `start`, chosen uniformly without replacement by a dedicated RNG
    /// seeded with `seed` — independent of the simulation seed, so the
    /// same fault pattern can be replayed under different traffic.
    ///
    /// The count is `ceil(fraction * channels)`, clamped to the channel
    /// count; `fraction <= 0` yields an empty plan.
    pub fn random_links(topo: &dyn Topology, fraction: f64, start: u64, seed: u64) -> FaultPlan {
        let mut channels = topo.channels();
        if fraction <= 0.0 || channels.is_empty() {
            return FaultPlan::new();
        }
        let count = ((fraction * channels.len() as f64).ceil() as usize).min(channels.len());
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates: the first `count` entries are a uniform
        // sample without replacement, in a deterministic order.
        for i in 0..count {
            let j = rng.gen_range(i..channels.len());
            channels.swap(i, j);
        }
        let mut plan = FaultPlan::new();
        for ch in &channels[..count] {
            plan = plan.permanent_link(ch.src(), ch.dir(), start);
        }
        plan
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The static [`FaultSet`] this plan induces at `cycle`: every fault
    /// whose active window `[start, start + duration)` covers the cycle is
    /// applied. This is the bridge from the simulator's *scheduled* fault
    /// model to the static channel-graph analyses — `turnprove` snapshots a
    /// sweep plan at a cycle of interest and verifies the degraded graph
    /// the simulator actually routes on.
    pub fn fault_set_at(&self, cycle: u64, topo: &dyn Topology) -> FaultSet {
        let mut set = FaultSet::new(topo);
        for f in &self.faults {
            let active =
                f.start <= cycle && f.duration.is_none_or(|d| cycle < f.start.saturating_add(d));
            if !active {
                continue;
            }
            match f.target {
                FaultTarget::Link { node, dir } => set.fail_link(topo, node, dir),
                FaultTarget::Node(node) => set.fail_node(topo, node),
            }
        }
        set
    }

    /// Compile the plan into a time-sorted list of down/up transitions for
    /// a simulator to consume with a single cursor. Transitions at the same
    /// cycle keep plan order, downs before their own ups.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = Vec::with_capacity(2 * self.faults.len());
        for f in &self.faults {
            events.push(FaultEvent {
                at: f.start,
                target: f.target,
                down: true,
            });
            if let Some(d) = f.duration {
                events.push(FaultEvent {
                    at: f.start.saturating_add(d),
                    target: f.target,
                    down: false,
                });
            }
        }
        events.sort_by_key(|e| e.at); // stable: ties keep push order
        events
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let links = self
            .faults
            .iter()
            .filter(|f| matches!(f.target, FaultTarget::Link { .. }))
            .count();
        write!(
            f,
            "FaultPlan({} link faults, {} node faults)",
            links,
            self.faults.len() - links
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::Mesh;

    #[test]
    fn empty_plan_has_no_events() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.events().is_empty());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn transient_fault_compiles_to_down_then_up() {
        let plan = FaultPlan::new().transient_link(NodeId(3), Direction::NORTH, 100, 50);
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].down && events[0].at == 100);
        assert!(!events[1].down && events[1].at == 150);
        assert_eq!(events[0].target, events[1].target);
    }

    #[test]
    fn events_are_time_sorted() {
        let plan = FaultPlan::new()
            .permanent_link(NodeId(0), Direction::EAST, 500)
            .transient_node(NodeId(1), 100, 300) // up at 400
            .permanent_node(NodeId(2), 0);
        let events = plan.events();
        let times: Vec<u64> = events.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![0, 100, 400, 500]);
    }

    #[test]
    fn random_links_is_deterministic_and_sized() {
        let mesh = Mesh::new_2d(8, 8);
        let total = mesh.channels().len();
        let a = FaultPlan::random_links(&mesh, 0.1, 0, 7);
        let b = FaultPlan::random_links(&mesh, 0.1, 0, 7);
        assert_eq!(a, b, "same seed must give the same pattern");
        assert_eq!(a.len(), (0.1f64 * total as f64).ceil() as usize);
        let c = FaultPlan::random_links(&mesh, 0.1, 0, 8);
        assert_ne!(a, c, "different seeds should differ");
        // No duplicate links in the sample.
        let mut targets: Vec<_> = a
            .faults()
            .iter()
            .map(|f| match f.target {
                FaultTarget::Link { node, dir } => (node.0, dir.index()),
                FaultTarget::Node(_) => unreachable!("random_links emits links"),
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), a.len());
    }

    #[test]
    fn random_links_edge_fractions() {
        let mesh = Mesh::new_2d(4, 4);
        assert!(FaultPlan::random_links(&mesh, 0.0, 0, 1).is_empty());
        let all = FaultPlan::random_links(&mesh, 1.0, 0, 1);
        assert_eq!(all.len(), mesh.channels().len());
        let over = FaultPlan::random_links(&mesh, 2.0, 0, 1);
        assert_eq!(over.len(), mesh.channels().len());
    }

    #[test]
    fn fault_set_at_snapshots_active_windows() {
        let mesh = Mesh::new_2d(4, 4);
        let plan = FaultPlan::new()
            .permanent_link(NodeId(0), Direction::EAST, 100)
            .transient_link(NodeId(5), Direction::NORTH, 200, 50)
            .permanent_node(NodeId(9), 300);
        let at = |cycle| plan.fault_set_at(cycle, &mesh);
        assert!(at(0).is_empty());
        assert_eq!(at(100).failed_link_count(), 1);
        // Transient active during [200, 250).
        assert_eq!(at(225).failed_link_count(), 2);
        assert_eq!(at(250).failed_link_count(), 1);
        let late = at(1_000);
        assert!(late.node_failed(NodeId(9)));
        assert_eq!(late.failed_node_count(), 1);
        // The snapshot agrees with the surviving-channel view.
        assert!(late.surviving_channels(&mesh).len() < mesh.channels().len());
    }

    #[test]
    fn random_links_snapshot_matches_plan_size() {
        let mesh = Mesh::new_2d(8, 8);
        let plan = FaultPlan::random_links(&mesh, 0.05, 0, 42);
        let set = plan.fault_set_at(0, &mesh);
        assert_eq!(set.failed_link_count(), plan.len());
    }

    #[test]
    fn display_counts_kinds() {
        let plan = FaultPlan::new()
            .permanent_link(NodeId(0), Direction::EAST, 0)
            .permanent_node(NodeId(1), 0);
        assert_eq!(plan.to_string(), "FaultPlan(1 link faults, 1 node faults)");
    }
}
