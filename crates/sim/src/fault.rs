//! Deterministic fault-injection schedules.
//!
//! A [`FaultPlan`] is a list of scheduled link/node failures — permanent or
//! transient — that the engine applies as simulated time passes. Plans are
//! plain data: cloneable, comparable, and independent of any simulator
//! instance, so the same plan can drive the base engine and the
//! virtual-channel simulator and both stay deterministic (identical seed +
//! identical plan ⇒ identical report).
//!
//! The fault model is *fail-stop for new channel acquisitions*: a failed
//! channel is never assigned to a new worm, but flits already streaming
//! across it drain normally (the link completes in-flight transfers). A
//! failed node additionally stops injecting and ejecting. Packets whose
//! only legal routes are failed simply wait; the engine's packet timeout
//! ([`crate::SimConfig::packet_timeout`]) then retries or drops them, which
//! is what turns a partitioned network into a degradation summary instead
//! of a hang.

use turnroute_rng::rngs::StdRng;
use turnroute_rng::{Rng, SeedableRng};
use turnroute_topology::{Direction, FaultSet, NodeId, Topology};

/// The component a fault takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The unidirectional channel leaving `node` in `dir`.
    Link {
        /// Source router of the channel.
        node: NodeId,
        /// Direction the channel points.
        dir: Direction,
    },
    /// A whole router: every channel leaving or entering it, plus its
    /// injection and ejection service.
    Node(NodeId),
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What fails.
    pub target: FaultTarget,
    /// Cycle the failure activates.
    pub start: u64,
    /// How long it lasts; `None` is permanent. A transient fault is active
    /// during `[start, start + duration)`.
    pub duration: Option<u64>,
}

/// A state transition compiled from a [`FaultPlan`]: at cycle `at`, the
/// target goes `down` (or comes back up). Overlapping faults on the same
/// component are reference-counted by the simulators, so transitions can
/// be applied independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the transition takes effect.
    pub at: u64,
    /// What changes state.
    pub target: FaultTarget,
    /// `true` = failure activates, `false` = it heals.
    pub down: bool,
}

/// A deterministic schedule of link and node failures.
///
/// # Example
///
/// ```
/// use turnroute_sim::{FaultPlan, FaultTarget};
/// use turnroute_topology::{Direction, NodeId};
///
/// let plan = FaultPlan::new()
///     .permanent_link(NodeId(5), Direction::EAST, 1_000)
///     .transient_node(NodeId(9), 2_000, 500);
/// assert_eq!(plan.len(), 2);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the default): no faults, and the engine's fault
    /// machinery stays a branch-predictable no-op.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Fail the channel leaving `node` in `dir` forever, starting at
    /// `start`.
    pub fn permanent_link(self, node: NodeId, dir: Direction, start: u64) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Link { node, dir },
            start,
            duration: None,
        })
    }

    /// Fail the channel leaving `node` in `dir` for `duration` cycles
    /// starting at `start`.
    pub fn transient_link(
        self,
        node: NodeId,
        dir: Direction,
        start: u64,
        duration: u64,
    ) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Link { node, dir },
            start,
            duration: Some(duration),
        })
    }

    /// Fail `node` (all incident channels and its local services) forever,
    /// starting at `start`.
    pub fn permanent_node(self, node: NodeId, start: u64) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Node(node),
            start,
            duration: None,
        })
    }

    /// Fail `node` for `duration` cycles starting at `start`.
    pub fn transient_node(self, node: NodeId, start: u64, duration: u64) -> FaultPlan {
        self.with(Fault {
            target: FaultTarget::Node(node),
            start,
            duration: Some(duration),
        })
    }

    /// A plan failing `fraction` of `topo`'s channels permanently at
    /// `start`, chosen uniformly without replacement by a dedicated RNG
    /// seeded with `seed` — independent of the simulation seed, so the
    /// same fault pattern can be replayed under different traffic.
    ///
    /// The count is `ceil(fraction * channels)`, clamped to the channel
    /// count; `fraction <= 0` yields an empty plan.
    pub fn random_links(topo: &dyn Topology, fraction: f64, start: u64, seed: u64) -> FaultPlan {
        let mut channels = topo.channels();
        if fraction <= 0.0 || channels.is_empty() {
            return FaultPlan::new();
        }
        let count = ((fraction * channels.len() as f64).ceil() as usize).min(channels.len());
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates: the first `count` entries are a uniform
        // sample without replacement, in a deterministic order.
        for i in 0..count {
            let j = rng.gen_range(i..channels.len());
            channels.swap(i, j);
        }
        let mut plan = FaultPlan::new();
        for ch in &channels[..count] {
            plan = plan.permanent_link(ch.src(), ch.dir(), start);
        }
        plan
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The static [`FaultSet`] this plan induces at `cycle`: every fault
    /// whose active window `[start, start + duration)` covers the cycle is
    /// applied. This is the bridge from the simulator's *scheduled* fault
    /// model to the static channel-graph analyses — `turnprove` snapshots a
    /// sweep plan at a cycle of interest and verifies the degraded graph
    /// the simulator actually routes on.
    pub fn fault_set_at(&self, cycle: u64, topo: &dyn Topology) -> FaultSet {
        let mut set = FaultSet::new(topo);
        for f in &self.faults {
            let active =
                f.start <= cycle && f.duration.is_none_or(|d| cycle < f.start.saturating_add(d));
            if !active {
                continue;
            }
            match f.target {
                FaultTarget::Link { node, dir } => set.fail_link(topo, node, dir),
                FaultTarget::Node(node) => set.fail_node(topo, node),
            }
        }
        set
    }

    /// Compile the plan into a time-sorted list of down/up transitions for
    /// a simulator to consume with a single cursor. At the same cycle all
    /// downs apply before all ups (each group in plan order): a component
    /// healing and re-failing on the boundary cycle keeps its refcount
    /// positive throughout — the same continuous-failure view
    /// [`FaultPlan::fault_set_at`] reports for that cycle — instead of
    /// dipping through a spurious up/down edge pair mid-cycle.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = Vec::with_capacity(2 * self.faults.len());
        for f in &self.faults {
            if f.duration == Some(0) {
                continue; // active during [start, start): never active
            }
            events.push(FaultEvent {
                at: f.start,
                target: f.target,
                down: true,
            });
            if let Some(d) = f.duration {
                events.push(FaultEvent {
                    at: f.start.saturating_add(d),
                    target: f.target,
                    down: false,
                });
            }
        }
        events.sort_by_key(|e| (e.at, !e.down)); // stable: ties keep plan order
        events
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let links = self
            .faults
            .iter()
            .filter(|f| matches!(f.target, FaultTarget::Link { .. }))
            .count();
        write!(
            f,
            "FaultPlan({} link faults, {} node faults)",
            links,
            self.faults.len() - links
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::Mesh;

    #[test]
    fn empty_plan_has_no_events() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.events().is_empty());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn transient_fault_compiles_to_down_then_up() {
        let plan = FaultPlan::new().transient_link(NodeId(3), Direction::NORTH, 100, 50);
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].down && events[0].at == 100);
        assert!(!events[1].down && events[1].at == 150);
        assert_eq!(events[0].target, events[1].target);
    }

    #[test]
    fn events_are_time_sorted() {
        let plan = FaultPlan::new()
            .permanent_link(NodeId(0), Direction::EAST, 500)
            .transient_node(NodeId(1), 100, 300) // up at 400
            .permanent_node(NodeId(2), 0);
        let events = plan.events();
        let times: Vec<u64> = events.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![0, 100, 400, 500]);
    }

    #[test]
    fn random_links_is_deterministic_and_sized() {
        let mesh = Mesh::new_2d(8, 8);
        let total = mesh.channels().len();
        let a = FaultPlan::random_links(&mesh, 0.1, 0, 7);
        let b = FaultPlan::random_links(&mesh, 0.1, 0, 7);
        assert_eq!(a, b, "same seed must give the same pattern");
        assert_eq!(a.len(), (0.1f64 * total as f64).ceil() as usize);
        let c = FaultPlan::random_links(&mesh, 0.1, 0, 8);
        assert_ne!(a, c, "different seeds should differ");
        // No duplicate links in the sample.
        let mut targets: Vec<_> = a
            .faults()
            .iter()
            .map(|f| match f.target {
                FaultTarget::Link { node, dir } => (node.0, dir.index()),
                FaultTarget::Node(_) => unreachable!("random_links emits links"),
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), a.len());
    }

    #[test]
    fn random_links_edge_fractions() {
        let mesh = Mesh::new_2d(4, 4);
        assert!(FaultPlan::random_links(&mesh, 0.0, 0, 1).is_empty());
        let all = FaultPlan::random_links(&mesh, 1.0, 0, 1);
        assert_eq!(all.len(), mesh.channels().len());
        let over = FaultPlan::random_links(&mesh, 2.0, 0, 1);
        assert_eq!(over.len(), mesh.channels().len());
    }

    #[test]
    fn fault_set_at_snapshots_active_windows() {
        let mesh = Mesh::new_2d(4, 4);
        let plan = FaultPlan::new()
            .permanent_link(NodeId(0), Direction::EAST, 100)
            .transient_link(NodeId(5), Direction::NORTH, 200, 50)
            .permanent_node(NodeId(9), 300);
        let at = |cycle| plan.fault_set_at(cycle, &mesh);
        assert!(at(0).is_empty());
        assert_eq!(at(100).failed_link_count(), 1);
        // Transient active during [200, 250).
        assert_eq!(at(225).failed_link_count(), 2);
        assert_eq!(at(250).failed_link_count(), 1);
        let late = at(1_000);
        assert!(late.node_failed(NodeId(9)));
        assert_eq!(late.failed_node_count(), 1);
        // The snapshot agrees with the surviving-channel view.
        assert!(late.surviving_channels(&mesh).len() < mesh.channels().len());
    }

    #[test]
    fn random_links_snapshot_matches_plan_size() {
        let mesh = Mesh::new_2d(8, 8);
        let plan = FaultPlan::random_links(&mesh, 0.05, 0, 42);
        let set = plan.fault_set_at(0, &mesh);
        assert_eq!(set.failed_link_count(), plan.len());
    }

    /// Stable key for a fault target (FaultTarget has no Hash impl).
    fn target_key(t: FaultTarget) -> (u8, u32, u32) {
        match t {
            FaultTarget::Link { node, dir } => (0, node.0, dir.index() as u32),
            FaultTarget::Node(v) => (1, v.0, 0),
        }
    }

    /// Whether `plan` has any fault on `t` whose window covers `cycle`.
    fn active_at(plan: &FaultPlan, t: FaultTarget, cycle: u64) -> bool {
        plan.faults().iter().any(|f| {
            f.target == t
                && f.start <= cycle
                && f.duration.is_none_or(|d| cycle < f.start.saturating_add(d))
        })
    }

    #[test]
    fn same_cycle_heal_and_refail_never_dips_through_up() {
        // Fault A heals at 150 exactly when fault B fails. Plan order
        // pushes A's up before B's down; the compiled stream must still
        // apply the down first so the refcount stays positive across the
        // boundary — matching fault_set_at(150), which reports the link
        // continuously failed.
        let plan = FaultPlan::new()
            .transient_link(NodeId(1), Direction::EAST, 100, 50)
            .transient_link(NodeId(1), Direction::EAST, 150, 30);
        let events = plan.events();
        let boundary: Vec<&FaultEvent> = events.iter().filter(|e| e.at == 150).collect();
        assert_eq!(boundary.len(), 2);
        assert!(boundary[0].down, "down must precede up at the boundary");
        assert!(!boundary[1].down);
        // Walking the stream, the depth never touches zero until 180.
        let mut depth = 0i64;
        for e in &events {
            depth += if e.down { 1 } else { -1 };
            if e.at < 180 {
                assert!(depth > 0, "spurious heal at cycle {}", e.at);
            }
        }
        assert_eq!(depth, 0);
        let mesh = Mesh::new_2d(4, 4);
        assert_eq!(plan.fault_set_at(150, &mesh).failed_link_count(), 1);
    }

    #[test]
    fn zero_duration_fault_compiles_to_nothing() {
        // Active during [start, start) — never active — so it must not
        // leave a down/up blip in the event stream either.
        let plan = FaultPlan::new().transient_link(NodeId(1), Direction::NORTH, 40, 0);
        assert!(plan.events().is_empty());
        let mesh = Mesh::new_2d(4, 4);
        assert!(plan.fault_set_at(40, &mesh).is_empty());
    }

    #[test]
    fn random_plans_refcounts_match_snapshots_with_one_edge_per_cycle() {
        // Regression property for the same-cycle heal/re-fail ordering:
        // over random plans, walk the compiled event stream keeping a
        // refcount per component. Per component and cycle there is at
        // most one observable up/down edge, the count never underflows,
        // and the post-cycle state equals the plan's declared window
        // coverage (what fault_set_at snapshots).
        use std::collections::HashMap;
        use turnroute_rng::rngs::StdRng;
        use turnroute_rng::{Rng, SeedableRng};
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0xFA_417 ^ seed);
            let mut plan = FaultPlan::new();
            for _ in 0..40 {
                let target = if rng.gen_bool(0.3) {
                    FaultTarget::Node(NodeId(rng.gen_range(0..16u32)))
                } else {
                    FaultTarget::Link {
                        node: NodeId(rng.gen_range(0..16u32)),
                        dir: Direction::from_index(rng.gen_range(0..4usize)),
                    }
                };
                let start = rng.gen_range(0..40u64);
                let duration = if rng.gen_bool(0.1) {
                    None
                } else {
                    Some(rng.gen_range(1..20u64))
                };
                plan = plan.with(Fault {
                    target,
                    start,
                    duration,
                });
            }
            let events = plan.events();
            assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
            let mut depth: HashMap<(u8, u32, u32), i64> = HashMap::new();
            let mut i = 0;
            while i < events.len() {
                let cycle = events[i].at;
                let mut edges: HashMap<(u8, u32, u32), u32> = HashMap::new();
                let mut touched: Vec<FaultTarget> = Vec::new();
                while i < events.len() && events[i].at == cycle {
                    let e = events[i];
                    let k = target_key(e.target);
                    let d = depth.entry(k).or_insert(0);
                    let was = *d > 0;
                    *d += if e.down { 1 } else { -1 };
                    assert!(*d >= 0, "seed {seed}: refcount underflow at {cycle}");
                    if was != (*d > 0) {
                        *edges.entry(k).or_insert(0) += 1;
                    }
                    touched.push(e.target);
                    i += 1;
                }
                for t in touched {
                    let k = target_key(t);
                    assert!(
                        edges.get(&k).copied().unwrap_or(0) <= 1,
                        "seed {seed}: component toggled twice within cycle {cycle}"
                    );
                    assert_eq!(
                        depth[&k] > 0,
                        active_at(&plan, t, cycle),
                        "seed {seed}: post-cycle state disagrees with the window at {cycle}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_counts_kinds() {
        let plan = FaultPlan::new()
            .permanent_link(NodeId(0), Direction::EAST, 0)
            .permanent_node(NodeId(1), 0);
        assert_eq!(plan.to_string(), "FaultPlan(1 link faults, 1 node faults)");
    }
}
