//! Simulation results.

use crate::CYCLES_PER_MICROSEC;

/// Aggregate results of one simulation run.
///
/// Latency statistics cover packets *created during the measurement
/// window* that were delivered by the end of the run (including the drain
/// phase). Throughput counts flits consumed at destinations during the
/// window. At saturation, `delivered_fraction` falls below ~1 and source
/// queues grow — the paper's "sustainable throughput" is the highest load
/// at which queues stay small and bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Packets created in the measurement window.
    pub generated_packets: u64,
    /// Flits of packets created in the measurement window.
    pub generated_flits: u64,
    /// Of those, packets delivered by the end of the run.
    pub delivered_packets: u64,
    /// Flits consumed at destinations during the measurement window
    /// (regardless of creation time).
    pub delivered_flits_in_window: u64,
    /// Measurement window length in cycles.
    pub measure_cycles: u64,
    /// Mean total latency (creation to tail consumption) in cycles.
    pub avg_latency_cycles: f64,
    /// Median total latency in cycles.
    pub p50_latency_cycles: f64,
    /// 99th-percentile total latency in cycles.
    pub p99_latency_cycles: f64,
    /// Largest total latency of any delivered window packet, in cycles.
    pub max_latency_cycles: u64,
    /// Mean network-only latency (injection to tail consumption) in
    /// cycles.
    pub avg_network_latency_cycles: f64,
    /// Mean hop count of delivered packets.
    pub avg_hops: f64,
    /// Mean misroutes per delivered packet.
    pub avg_misroutes: f64,
    /// Occupied-channel cycles that advanced no flit during the
    /// measurement window, summed over channels (a network-wide
    /// contention measure: 0 when every buffered flit moves every cycle).
    pub total_stall_cycles: u64,
    /// Packets still waiting in source queues at the end of the run.
    pub queued_at_end: u64,
    /// Largest source queue observed at any node during measurement.
    pub max_queue_len: usize,
    /// Whether the run was cut short by deadlock detection.
    pub deadlocked: bool,
    /// Cycle at which the run ended.
    pub end_cycle: u64,
}

impl SimReport {
    /// Mean total latency in microseconds (20 cycles = 1 µs).
    pub fn avg_latency_us(&self) -> f64 {
        self.avg_latency_cycles / CYCLES_PER_MICROSEC
    }

    /// Delivered throughput in flits per microsecond across the whole
    /// network (the paper's throughput axis).
    pub fn throughput_flits_per_us(&self) -> f64 {
        if self.measure_cycles == 0 {
            return 0.0;
        }
        self.delivered_flits_in_window as f64 / (self.measure_cycles as f64 / CYCLES_PER_MICROSEC)
    }

    /// Offered load in flits per microsecond (from generation).
    pub fn offered_flits_per_us(&self) -> f64 {
        if self.measure_cycles == 0 {
            return 0.0;
        }
        self.generated_flits as f64 / (self.measure_cycles as f64 / CYCLES_PER_MICROSEC)
    }

    /// Fraction of window-generated packets delivered by the end of the
    /// run — near 1.0 when the load is sustainable.
    pub fn delivered_fraction(&self) -> f64 {
        if self.generated_packets == 0 {
            return 1.0;
        }
        self.delivered_packets as f64 / self.generated_packets as f64
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency {:.1} us (p99 {:.1}), throughput {:.1} flits/us (offered {:.1}), \
             {}/{} packets delivered, {:.2} hops avg{}{}",
            self.avg_latency_us(),
            self.p99_latency_cycles / CYCLES_PER_MICROSEC,
            self.throughput_flits_per_us(),
            self.offered_flits_per_us(),
            self.delivered_packets,
            self.generated_packets,
            self.avg_hops,
            if self.queued_at_end > 0 {
                format!(", {} queued", self.queued_at_end)
            } else {
                String::new()
            },
            if self.deadlocked { ", DEADLOCKED" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            generated_packets: 100,
            generated_flits: 10_000,
            delivered_packets: 95,
            delivered_flits_in_window: 9_000,
            measure_cycles: 2_000,
            avg_latency_cycles: 200.0,
            p50_latency_cycles: 180.0,
            p99_latency_cycles: 700.0,
            max_latency_cycles: 900,
            avg_network_latency_cycles: 150.0,
            avg_hops: 5.5,
            avg_misroutes: 0.0,
            total_stall_cycles: 1_234,
            queued_at_end: 3,
            max_queue_len: 4,
            deadlocked: false,
            end_cycle: 12_000,
        }
    }

    #[test]
    fn unit_conversions() {
        let r = sample();
        assert!((r.avg_latency_us() - 10.0).abs() < 1e-9);
        // 9000 flits over 100 us.
        assert!((r.throughput_flits_per_us() - 90.0).abs() < 1e-9);
        assert!((r.offered_flits_per_us() - 100.0).abs() < 1e-9);
        assert!((r.delivered_fraction() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = sample().to_string();
        assert!(s.contains("latency 10.0 us"), "{s}");
        assert!(s.contains("3 queued"), "{s}");
        assert!(!s.contains("DEADLOCK"), "{s}");
    }

    #[test]
    fn zero_window_is_safe() {
        let mut r = sample();
        r.measure_cycles = 0;
        r.generated_packets = 0;
        assert_eq!(r.throughput_flits_per_us(), 0.0);
        assert_eq!(r.offered_flits_per_us(), 0.0);
        assert_eq!(r.delivered_fraction(), 1.0);
    }
}
