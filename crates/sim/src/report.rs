//! Simulation results.

use crate::CYCLES_PER_MICROSEC;

/// How a simulation run ended.
///
/// Extends the older `deadlocked: bool` (still present on [`SimReport`]
/// for backward compatibility — the two always agree) with room for
/// future terminations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunTermination {
    /// The run executed its full warmup/measure/drain protocol. Packets
    /// may still have been dropped along the way — see
    /// [`SimReport::dropped_packets`] — which is the graceful-degradation
    /// outcome under faults.
    #[default]
    Completed,
    /// Deadlock detection tripped (no flit moved for
    /// `deadlock_threshold` cycles with flits in flight) and the run was
    /// cut short.
    Deadlock,
    /// The run reached its cycle horizon with measurement-window packets
    /// still unresolved — neither delivered nor dropped — so the network
    /// never drained the measured load. This is the saturation-collapse
    /// outcome the turnscope early-warning detectors are meant to call
    /// ahead of time.
    Timeout,
}

impl std::fmt::Display for RunTermination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunTermination::Completed => write!(f, "completed"),
            RunTermination::Deadlock => write!(f, "deadlock"),
            RunTermination::Timeout => write!(f, "timeout"),
        }
    }
}

/// Where the latency of delivered window packets went, summed across
/// packets: the turnscope blame decomposition.
///
/// For every delivered packet the identity
/// `queue + blocked + service + misroute == total latency` holds exactly
/// (asserted by the sanitizer), so these totals sum to the total latency
/// mass of the window's delivered packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlameTotals {
    /// Cycles spent waiting in the source queue before injection.
    pub queue_cycles: u64,
    /// In-network cycles in which no flit of the packet moved.
    pub blocked_cycles: u64,
    /// In-network cycles with productive forward progress.
    pub service_cycles: u64,
    /// In-network progress cycles spent on non-productive (misrouted)
    /// header moves.
    pub misroute_cycles: u64,
}

impl BlameTotals {
    /// Total attributed cycles — equals the summed latency of the packets
    /// these totals cover.
    pub fn total(&self) -> u64 {
        self.queue_cycles + self.blocked_cycles + self.service_cycles + self.misroute_cycles
    }

    /// Mean of one component per delivered packet.
    fn per_packet(component: u64, packets: u64) -> f64 {
        if packets == 0 {
            0.0
        } else {
            component as f64 / packets as f64
        }
    }

    /// Mean queue wait per delivered packet, in cycles.
    pub fn avg_queue_cycles(&self, delivered_packets: u64) -> f64 {
        BlameTotals::per_packet(self.queue_cycles, delivered_packets)
    }

    /// Mean blocked time per delivered packet, in cycles.
    pub fn avg_blocked_cycles(&self, delivered_packets: u64) -> f64 {
        BlameTotals::per_packet(self.blocked_cycles, delivered_packets)
    }

    /// Mean service time per delivered packet, in cycles.
    pub fn avg_service_cycles(&self, delivered_packets: u64) -> f64 {
        BlameTotals::per_packet(self.service_cycles, delivered_packets)
    }

    /// Mean misroute penalty per delivered packet, in cycles.
    pub fn avg_misroute_cycles(&self, delivered_packets: u64) -> f64 {
        BlameTotals::per_packet(self.misroute_cycles, delivered_packets)
    }
}

/// Aggregate results of one simulation run.
///
/// Latency statistics cover packets *created during the measurement
/// window* that were delivered by the end of the run (including the drain
/// phase). Throughput counts flits consumed at destinations during the
/// window. At saturation, `delivered_fraction` falls below ~1 and source
/// queues grow — the paper's "sustainable throughput" is the highest load
/// at which queues stay small and bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Packets created in the measurement window.
    pub generated_packets: u64,
    /// Flits of packets created in the measurement window.
    pub generated_flits: u64,
    /// Of those, packets delivered by the end of the run.
    pub delivered_packets: u64,
    /// Flits consumed at destinations during the measurement window
    /// (regardless of creation time).
    pub delivered_flits_in_window: u64,
    /// Measurement window length in cycles.
    pub measure_cycles: u64,
    /// Mean total latency (creation to tail consumption) in cycles.
    pub avg_latency_cycles: f64,
    /// Median total latency in cycles.
    pub p50_latency_cycles: f64,
    /// 90th-percentile total latency in cycles.
    pub p90_latency_cycles: f64,
    /// 99th-percentile total latency in cycles.
    pub p99_latency_cycles: f64,
    /// Largest total latency of any delivered window packet, in cycles.
    pub max_latency_cycles: u64,
    /// Mean network-only latency (injection to tail consumption) in
    /// cycles.
    pub avg_network_latency_cycles: f64,
    /// Mean hop count of delivered packets.
    pub avg_hops: f64,
    /// Mean misroutes per delivered packet.
    pub avg_misroutes: f64,
    /// Latency blame totals over delivered window packets (queue wait,
    /// blocked, service, misroute penalty — sums to their total latency).
    pub blame: BlameTotals,
    /// Occupied-channel cycles that advanced no flit during the
    /// measurement window, summed over channels (a network-wide
    /// contention measure: 0 when every buffered flit moves every cycle).
    pub total_stall_cycles: u64,
    /// Packets still waiting in source queues at the end of the run.
    pub queued_at_end: u64,
    /// Largest source queue observed at any node during measurement.
    pub max_queue_len: usize,
    /// Window-generated packets dropped after exhausting their lifetime
    /// and retries while routable (congestion or a blocking fault).
    pub dropped_packets: u64,
    /// Window-generated packets dropped because delivery was impossible —
    /// their source or destination router was down at expiry.
    pub unroutable_packets: u64,
    /// Times a window-generated packet was purged from the network and
    /// re-queued at its source after a timeout.
    pub retries: u64,
    /// Whether the run was cut short by deadlock detection. Kept for
    /// backward compatibility; always agrees with `termination`.
    pub deadlocked: bool,
    /// How the run ended.
    pub termination: RunTermination,
    /// Cycle at which the run ended.
    pub end_cycle: u64,
}

impl SimReport {
    /// Mean total latency in microseconds (20 cycles = 1 µs).
    pub fn avg_latency_us(&self) -> f64 {
        self.avg_latency_cycles / CYCLES_PER_MICROSEC
    }

    /// Delivered throughput in flits per microsecond across the whole
    /// network (the paper's throughput axis).
    pub fn throughput_flits_per_us(&self) -> f64 {
        if self.measure_cycles == 0 {
            return 0.0;
        }
        self.delivered_flits_in_window as f64 / (self.measure_cycles as f64 / CYCLES_PER_MICROSEC)
    }

    /// Offered load in flits per microsecond (from generation).
    pub fn offered_flits_per_us(&self) -> f64 {
        if self.measure_cycles == 0 {
            return 0.0;
        }
        self.generated_flits as f64 / (self.measure_cycles as f64 / CYCLES_PER_MICROSEC)
    }

    /// Fraction of window-generated packets delivered by the end of the
    /// run — near 1.0 when the load is sustainable.
    pub fn delivered_fraction(&self) -> f64 {
        if self.generated_packets == 0 {
            return 1.0;
        }
        self.delivered_packets as f64 / self.generated_packets as f64
    }

    /// Window-generated packets lost to lifetime expiry, for any reason.
    pub fn lost_packets(&self) -> u64 {
        self.dropped_packets + self.unroutable_packets
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency {:.1} us (p99 {:.1}), throughput {:.1} flits/us (offered {:.1}), \
             {}/{} packets delivered, {:.2} hops avg{}{}{}",
            self.avg_latency_us(),
            self.p99_latency_cycles / CYCLES_PER_MICROSEC,
            self.throughput_flits_per_us(),
            self.offered_flits_per_us(),
            self.delivered_packets,
            self.generated_packets,
            self.avg_hops,
            if self.queued_at_end > 0 {
                format!(", {} queued", self.queued_at_end)
            } else {
                String::new()
            },
            if self.lost_packets() > 0 {
                format!(
                    ", {} dropped ({} unroutable, {} retries)",
                    self.lost_packets(),
                    self.unroutable_packets,
                    self.retries
                )
            } else {
                String::new()
            },
            if self.deadlocked { ", DEADLOCKED" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            generated_packets: 100,
            generated_flits: 10_000,
            delivered_packets: 95,
            delivered_flits_in_window: 9_000,
            measure_cycles: 2_000,
            avg_latency_cycles: 200.0,
            p50_latency_cycles: 180.0,
            p90_latency_cycles: 450.0,
            p99_latency_cycles: 700.0,
            max_latency_cycles: 900,
            avg_network_latency_cycles: 150.0,
            avg_hops: 5.5,
            avg_misroutes: 0.0,
            blame: BlameTotals {
                queue_cycles: 5_000,
                blocked_cycles: 4_000,
                service_cycles: 10_500,
                misroute_cycles: 500,
            },
            total_stall_cycles: 1_234,
            queued_at_end: 3,
            max_queue_len: 4,
            dropped_packets: 0,
            unroutable_packets: 0,
            retries: 0,
            deadlocked: false,
            termination: RunTermination::Completed,
            end_cycle: 12_000,
        }
    }

    #[test]
    fn unit_conversions() {
        let r = sample();
        assert!((r.avg_latency_us() - 10.0).abs() < 1e-9);
        // 9000 flits over 100 us.
        assert!((r.throughput_flits_per_us() - 90.0).abs() < 1e-9);
        assert!((r.offered_flits_per_us() - 100.0).abs() < 1e-9);
        assert!((r.delivered_fraction() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = sample().to_string();
        assert!(s.contains("latency 10.0 us"), "{s}");
        assert!(s.contains("3 queued"), "{s}");
        assert!(!s.contains("DEADLOCK"), "{s}");
        assert!(!s.contains("dropped"), "{s}");
    }

    #[test]
    fn display_mentions_degradation() {
        let mut r = sample();
        r.dropped_packets = 4;
        r.unroutable_packets = 2;
        r.retries = 5;
        assert_eq!(r.lost_packets(), 6);
        let s = r.to_string();
        assert!(s.contains("6 dropped (2 unroutable, 5 retries)"), "{s}");
    }

    #[test]
    fn termination_enum_agrees_with_bool() {
        let r = sample();
        assert_eq!(r.termination, RunTermination::Completed);
        assert!(!r.deadlocked);
        assert_eq!(RunTermination::default(), RunTermination::Completed);
        assert_eq!(RunTermination::Completed.to_string(), "completed");
        assert_eq!(RunTermination::Deadlock.to_string(), "deadlock");
        assert_eq!(RunTermination::Timeout.to_string(), "timeout");
    }

    #[test]
    fn blame_totals_average_per_delivered_packet() {
        let r = sample();
        assert_eq!(r.blame.total(), 20_000);
        assert!((r.blame.avg_queue_cycles(r.delivered_packets) - 5_000.0 / 95.0).abs() < 1e-9);
        assert!((r.blame.avg_misroute_cycles(r.delivered_packets) - 500.0 / 95.0).abs() < 1e-9);
        assert_eq!(BlameTotals::default().avg_blocked_cycles(0), 0.0);
        assert_eq!(BlameTotals::default().total(), 0);
    }

    #[test]
    fn zero_window_is_safe() {
        let mut r = sample();
        r.measure_cycles = 0;
        r.generated_packets = 0;
        assert_eq!(r.throughput_flits_per_us(), 0.0);
        assert_eq!(r.offered_flits_per_us(), 0.0);
        assert_eq!(r.delivered_fraction(), 1.0);
    }
}
