//! Cycle-accurate flit-level wormhole routing simulator.
//!
//! Reproduces the simulation methodology of Section 6 of the turn-model
//! paper:
//!
//! * a pair of unidirectional channels between neighboring routers and
//!   between each router and its local processor;
//! * every channel has the same bandwidth (20 flits/µs — one flit per
//!   simulated cycle, so a cycle is 0.05 µs);
//! * each input channel has a single-flit buffer;
//! * messages are generated per node at negative-exponentially distributed
//!   intervals, each one packet of 10 or 200 flits with equal probability;
//! * blocked messages queue at the source processor; arriving messages are
//!   consumed immediately (through the ejection channel, at channel
//!   bandwidth);
//! * *local first-come-first-served* input selection and *lowest
//!   dimension* ("xy") output selection by default, both configurable.
//!
//! The wormhole mechanics are faithful: a packet's header flit reserves
//! each channel it routes onto, body flits pipeline behind it through the
//! single-flit buffers, and the channel is released only when the tail
//! flit has passed — which is exactly why circular waits deadlock, and
//! what the turn model prevents.
//!
//! # Example
//!
//! ```
//! use turnroute_sim::{Sim, SimConfig};
//! use turnroute_routing::{mesh2d, RoutingMode};
//! use turnroute_topology::Mesh;
//! use turnroute_traffic::Uniform;
//!
//! let mesh = Mesh::new_2d(8, 8);
//! let routing = mesh2d::west_first(RoutingMode::Minimal);
//! let pattern = Uniform::new();
//! let cfg = SimConfig::builder()
//!     .injection_rate(0.05)
//!     .warmup_cycles(500)
//!     .measure_cycles(2_000)
//!     .drain_cycles(2_000)
//!     .seed(1)
//!     .build();
//! let report = Sim::new(&mesh, &routing, &pattern, cfg).run();
//! assert!(report.delivered_packets > 0);
//! assert!(!report.deadlocked);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod choice;
mod config;
mod engine;
mod fault;
pub mod harness;
pub mod obs;
mod packet;
mod policies;
pub mod profile;
mod report;

pub use choice::ChoiceScript;
pub use config::{LengthDist, SimConfig, SimConfigBuilder, CYCLES_PER_MICROSEC};
pub use engine::{Sim, SimSnapshot};
pub use fault::{Fault, FaultEvent, FaultPlan, FaultTarget};
pub use obs::{
    Alert, AlertKind, DetectorBank, DetectorConfig, FrameCollector, HealEvent, InvariantObserver,
    InvariantSummary, NoopObserver, PacketBlame, SimObserver, Telemetry, TelemetryFrame,
};
pub use packet::{Packet, PacketId};
pub use policies::{InputPolicy, OutputPolicy};
pub use profile::{Phase, PhaseProfiler};
pub use report::{BlameTotals, RunTermination, SimReport};
