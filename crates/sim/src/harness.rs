//! Seeded probe runs for cross-validating static verdicts.
//!
//! The static analyses (`turnlint`, `turnprove`) predict whether a routing
//! relation can deadlock; this module provides the standard simulator
//! configurations used to confront those predictions with live engine
//! behavior. A *saturating probe* drives the network far past saturation
//! with no warmup and no drain, so a cyclic channel dependency graph has
//! every opportunity to realize itself as a detected deadlock, while an
//! acyclic one must survive the same abuse. The configurations are pure
//! functions of the seed, so a probe is exactly reproducible from the
//! `(topology, routing, pattern, seed)` tuple a report names.

use crate::{FaultPlan, Sim, SimConfig, SimReport};
use turnroute_model::RoutingFunction;
use turnroute_rng::rngs::StdRng;
use turnroute_rng::{Rng, SeedableRng};
use turnroute_topology::Topology;
use turnroute_traffic::TrafficPattern;

/// The saturating-probe configuration: injection far beyond saturation,
/// no warmup or drain, and a deadlock detector patient enough to not
/// false-positive on mere congestion. `measure_cycles` bounds the probe;
/// `deadlock_threshold` is the progress-free cycle count that declares
/// deadlock.
pub fn saturating_config(seed: u64, measure_cycles: u64, deadlock_threshold: u64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.9)
        .warmup_cycles(0)
        .measure_cycles(measure_cycles)
        .drain_cycles(0)
        .deadlock_threshold(deadlock_threshold)
        .seed(seed)
        .build()
}

/// Run a saturating probe of `routing` on `topo` under `pattern` and
/// return the report. `report.deadlocked` is the behavioral verdict to
/// compare against the static one: an acyclic dependency graph must yield
/// `false`, and the known-cyclic negative controls realize `true` well
/// within the default probe length.
pub fn saturating_probe(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    seed: u64,
    measure_cycles: u64,
    deadlock_threshold: u64,
) -> SimReport {
    let cfg = saturating_config(seed, measure_cycles, deadlock_threshold);
    Sim::new(topo, routing, pattern, cfg).run()
}

/// Parameters of a seeded MTTF/MTTR chaos storm: Poisson fault arrivals
/// with exponential repair times, compiled to a deterministic
/// [`FaultPlan`] by [`chaos_plan`]. Mean times between failures are
/// *network-wide* (one arrival clock for all links, one for all nodes),
/// so storms overlap freely — the refcounted fault machinery is exactly
/// what absorbs a link failing again before its previous repair lands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormSpec {
    /// Cycles the storm covers; no fault *starts* past the horizon
    /// (repairs may land later).
    pub horizon: u64,
    /// Mean cycles between link-fault arrivals across the whole network.
    pub link_mttf: u64,
    /// Mean cycles a transient link fault lasts (MTTR).
    pub mean_repair: u64,
    /// Probability a link fault is permanent (never repaired).
    pub permanent_fraction: f64,
    /// Mean cycles between node-fault arrivals; `0` disables node
    /// faults. Node faults are always transient.
    pub node_mttf: u64,
    /// Mean cycles a node fault lasts.
    pub node_mean_repair: u64,
    /// Storm seed: same seed, same storm, independent of traffic.
    pub seed: u64,
}

impl StormSpec {
    /// The storm's *severity*: the expected fraction of network channels
    /// concurrently failed, averaged over the horizon (Little's law on
    /// the transient arrivals, plus half the permanents accumulated by
    /// the end, plus the node-fault share of routers down).
    pub fn severity(&self, topo: &dyn Topology) -> f64 {
        let channels = topo.channels().len() as f64;
        let transient =
            (self.mean_repair as f64 / self.link_mttf as f64) * (1.0 - self.permanent_fraction);
        let permanent =
            0.5 * self.permanent_fraction * (self.horizon as f64 / self.link_mttf as f64);
        let mut s = (transient + permanent) / channels;
        if self.node_mttf > 0 {
            s += (self.node_mean_repair as f64 / self.node_mttf as f64) / topo.num_nodes() as f64;
        }
        s
    }

    /// The delivered-fraction floor the chaos soak asserts for this
    /// storm: a linear severity curve, saturating at a loose lower bound
    /// so even violent storms keep a meaningful acceptance bar. Fault
    /// loss is graceful degradation (timeouts, unroutable destinations),
    /// so delivery falls roughly linearly in the failed-channel fraction
    /// at the fractions the soak exercises.
    pub fn delivered_floor(&self, topo: &dyn Topology) -> f64 {
        (0.90 - 4.0 * self.severity(topo)).clamp(0.25, 0.90)
    }
}

/// Compile `spec` into a deterministic [`FaultPlan`] on `topo`:
/// exponential inter-arrival gaps on a dedicated RNG, each arrival
/// failing a uniformly random channel (or node), with exponentially
/// distributed repair times of at least one cycle. The plan depends only
/// on `(topo, spec)` — replaying the same storm under different traffic
/// seeds is exactly the experiment the soak harness runs twice.
pub fn chaos_plan(topo: &dyn Topology, spec: &StormSpec) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let exp = |mean: f64, rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    };
    let channels = topo.channels();
    let mut plan = FaultPlan::new();
    if !channels.is_empty() && spec.link_mttf > 0 {
        let mut t = exp(spec.link_mttf as f64, &mut rng);
        while (t as u64) < spec.horizon {
            let ch = &channels[rng.gen_range(0..channels.len())];
            let start = t as u64;
            if rng.gen_bool(spec.permanent_fraction) {
                plan = plan.permanent_link(ch.src(), ch.dir(), start);
            } else {
                let d = (exp(spec.mean_repair as f64, &mut rng) as u64).max(1);
                plan = plan.transient_link(ch.src(), ch.dir(), start, d);
            }
            t += exp(spec.link_mttf as f64, &mut rng);
        }
    }
    if spec.node_mttf > 0 {
        let n = topo.num_nodes() as u32;
        let mut t = exp(spec.node_mttf as f64, &mut rng);
        while (t as u64) < spec.horizon {
            let node = turnroute_topology::NodeId(rng.gen_range(0..n));
            let d = (exp(spec.node_mean_repair as f64, &mut rng) as u64).max(1);
            plan = plan.transient_node(node, t as u64, d);
            t += exp(spec.node_mttf as f64, &mut rng);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{DirSet, Direction, Mesh, NodeId, Sign};
    use turnroute_traffic::Uniform;

    /// Deterministic xy routing, inlined to avoid a routing-crate cycle.
    struct Xy;

    impl RoutingFunction for Xy {
        fn name(&self) -> &str {
            "xy"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
            for dim in 0..2 {
                if c.get(dim) != d.get(dim) {
                    let sign = if d.get(dim) > c.get(dim) {
                        Sign::Plus
                    } else {
                        Sign::Minus
                    };
                    return DirSet::single(Direction::new(dim, sign));
                }
            }
            DirSet::empty()
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    fn storm() -> StormSpec {
        StormSpec {
            horizon: 20_000,
            link_mttf: 400,
            mean_repair: 600,
            permanent_fraction: 0.05,
            node_mttf: 5_000,
            node_mean_repair: 400,
            seed: 11,
        }
    }

    #[test]
    fn chaos_plan_is_deterministic_and_overlaps() {
        let mesh = Mesh::new_2d(8, 8);
        let spec = storm();
        let a = chaos_plan(&mesh, &spec);
        let b = chaos_plan(&mesh, &spec);
        assert_eq!(a, b, "same spec must give the same storm");
        assert!(
            a.len() > 20,
            "a 20k-cycle storm has many faults: {}",
            a.len()
        );
        let mut other = spec;
        other.seed = 12;
        assert_ne!(a, chaos_plan(&mesh, &other));
        // With MTTR > MTTF the storm overlaps by construction: some cycle
        // has at least two faults concurrently active.
        let overlapping = (0..spec.horizon).step_by(97).any(|t| {
            a.faults()
                .iter()
                .filter(|f| {
                    f.start <= t && f.duration.is_none_or(|d| t < f.start.saturating_add(d))
                })
                .count()
                >= 2
        });
        assert!(overlapping, "storm must produce overlapping faults");
        // Both permanent and transient faults appear.
        assert!(a.faults().iter().any(|f| f.duration.is_none()));
        assert!(a.faults().iter().any(|f| f.duration.is_some()));
        // Compiled events are consumable by the engines (sorted, balanced).
        let events = a.events();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn severity_and_floor_scale_with_the_storm() {
        let mesh = Mesh::new_2d(8, 8);
        let calm = StormSpec {
            link_mttf: 4_000,
            mean_repair: 200,
            permanent_fraction: 0.0,
            node_mttf: 0,
            ..storm()
        };
        let wild = storm();
        let (s_calm, s_wild) = (calm.severity(&mesh), wild.severity(&mesh));
        assert!(s_calm > 0.0 && s_calm < s_wild, "{s_calm} vs {s_wild}");
        assert!(calm.delivered_floor(&mesh) > wild.delivered_floor(&mesh));
        assert!(wild.delivered_floor(&mesh) >= 0.25);
    }

    #[test]
    fn probe_is_deterministic_and_xy_survives_saturation() {
        let mesh = Mesh::new_2d(4, 4);
        let pattern = Uniform::new();
        let a = saturating_probe(&mesh, &Xy, &pattern, 7, 2_000, 500);
        let b = saturating_probe(&mesh, &Xy, &pattern, 7, 2_000, 500);
        assert!(!a.deadlocked, "xy must survive a saturating probe");
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert!(a.delivered_packets > 0);
    }
}
