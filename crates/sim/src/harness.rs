//! Seeded probe runs for cross-validating static verdicts.
//!
//! The static analyses (`turnlint`, `turnprove`) predict whether a routing
//! relation can deadlock; this module provides the standard simulator
//! configurations used to confront those predictions with live engine
//! behavior. A *saturating probe* drives the network far past saturation
//! with no warmup and no drain, so a cyclic channel dependency graph has
//! every opportunity to realize itself as a detected deadlock, while an
//! acyclic one must survive the same abuse. The configurations are pure
//! functions of the seed, so a probe is exactly reproducible from the
//! `(topology, routing, pattern, seed)` tuple a report names.

use crate::{Sim, SimConfig, SimReport};
use turnroute_model::RoutingFunction;
use turnroute_topology::Topology;
use turnroute_traffic::TrafficPattern;

/// The saturating-probe configuration: injection far beyond saturation,
/// no warmup or drain, and a deadlock detector patient enough to not
/// false-positive on mere congestion. `measure_cycles` bounds the probe;
/// `deadlock_threshold` is the progress-free cycle count that declares
/// deadlock.
pub fn saturating_config(seed: u64, measure_cycles: u64, deadlock_threshold: u64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.9)
        .warmup_cycles(0)
        .measure_cycles(measure_cycles)
        .drain_cycles(0)
        .deadlock_threshold(deadlock_threshold)
        .seed(seed)
        .build()
}

/// Run a saturating probe of `routing` on `topo` under `pattern` and
/// return the report. `report.deadlocked` is the behavioral verdict to
/// compare against the static one: an acyclic dependency graph must yield
/// `false`, and the known-cyclic negative controls realize `true` well
/// within the default probe length.
pub fn saturating_probe(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    pattern: &dyn TrafficPattern,
    seed: u64,
    measure_cycles: u64,
    deadlock_threshold: u64,
) -> SimReport {
    let cfg = saturating_config(seed, measure_cycles, deadlock_threshold);
    Sim::new(topo, routing, pattern, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{DirSet, Direction, Mesh, NodeId, Sign};
    use turnroute_traffic::Uniform;

    /// Deterministic xy routing, inlined to avoid a routing-crate cycle.
    struct Xy;

    impl RoutingFunction for Xy {
        fn name(&self) -> &str {
            "xy"
        }

        fn route(
            &self,
            topo: &dyn Topology,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<Direction>,
        ) -> DirSet {
            let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
            for dim in 0..2 {
                if c.get(dim) != d.get(dim) {
                    let sign = if d.get(dim) > c.get(dim) {
                        Sign::Plus
                    } else {
                        Sign::Minus
                    };
                    return DirSet::single(Direction::new(dim, sign));
                }
            }
            DirSet::empty()
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn probe_is_deterministic_and_xy_survives_saturation() {
        let mesh = Mesh::new_2d(4, 4);
        let pattern = Uniform::new();
        let a = saturating_probe(&mesh, &Xy, &pattern, 7, 2_000, 500);
        let b = saturating_probe(&mesh, &Xy, &pattern, 7, 2_000, 500);
        assert!(!a.deadlocked, "xy must survive a saturating probe");
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert!(a.delivered_packets > 0);
    }
}
