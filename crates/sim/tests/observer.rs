//! Observer hook contract: exact firing counts on tiny deterministic
//! runs, and the deadlock postmortem path end to end.

use turnroute_model::{RoutingFunction, Turn, TurnSet};
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::obs::{json, DeadlockSnapshot, SimObserver, StallReason, Telemetry};
use turnroute_sim::{PacketId, Sim, SimConfig};
use turnroute_topology::{DirSet, Direction, Mesh, NodeId, Topology};
use turnroute_traffic::{Permutation, Uniform};

/// Counts every hook invocation.
#[derive(Debug, Default)]
struct Counter {
    injects: usize,
    advances: usize,
    ejections: usize,
    tails: usize,
    turns: usize,
    misroutes: usize,
    stalls: usize,
    delivers: usize,
    deadlocks: usize,
    hops_delivered: u32,
}

impl SimObserver for Counter {
    fn on_inject(&mut self, _now: u64, _packet: PacketId, _src: NodeId, _dst: NodeId, _len: u32) {
        self.injects += 1;
    }
    fn on_flit_advance(
        &mut self,
        _now: u64,
        _from: usize,
        to: Option<usize>,
        _packet: PacketId,
        is_tail: bool,
    ) {
        self.advances += 1;
        if to.is_none() {
            self.ejections += 1;
        }
        if is_tail {
            self.tails += 1;
        }
    }
    fn on_turn(&mut self, _now: u64, _packet: PacketId, _at: NodeId, _turn: Turn) {
        self.turns += 1;
    }
    fn on_misroute(&mut self, _now: u64, _packet: PacketId, _at: NodeId, _dir: Direction) {
        self.misroutes += 1;
    }
    fn on_stall(&mut self, _now: u64, _slot: usize, _packet: PacketId, _reason: StallReason) {
        self.stalls += 1;
    }
    fn on_deliver(&mut self, _now: u64, _packet: PacketId, _latency: u64, hops: u32) {
        self.delivers += 1;
        self.hops_delivered += hops;
    }
    fn on_deadlock(&mut self, _now: u64, _snapshot: &DeadlockSnapshot) {
        self.deadlocks += 1;
    }
}

fn quiet() -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.0)
        .deadlock_threshold(500)
        .build()
}

/// One 3-flit packet crossing a 2×2 mesh corner to corner under xy:
/// every hook count is exactly predictable.
#[test]
fn hook_counts_on_a_single_packet() {
    let mesh = Mesh::new_2d(2, 2);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut sim = Sim::with_observer(&mesh, &xy, &pattern, quiet(), Counter::default());
    let src = mesh.node_at_coords(&[0, 0]);
    let dst = mesh.node_at_coords(&[1, 1]);
    sim.inject_packet(src, dst, 3);
    assert!(sim.run_until_idle(200));
    let c = sim.observer();
    assert_eq!(c.injects, 1);
    assert_eq!(c.delivers, 1);
    // xy path: east then north — exactly one turn, no misroutes.
    assert_eq!(c.turns, 1);
    assert_eq!(c.misroutes, 0);
    assert_eq!(c.hops_delivered, 2);
    // Each of the 3 flits advances through injection -> 2 network
    // channels -> ejection buffer -> consumption: 4 moves each, the
    // final consumption move with `to == None`.
    assert_eq!(c.advances, 12);
    assert_eq!(c.ejections, 3);
    // The tail flit fires `is_tail` once per channel it leaves.
    assert_eq!(c.tails, 4);
    assert_eq!(c.deadlocks, 0);
}

/// Two opposing single-flit packets on a shared row: a lone packet never
/// stalls, so any stall reported here comes from real contention — and a
/// single-flit worm re-running the same scenario gives a lower bound.
#[test]
fn stalls_fire_only_under_contention() {
    let mesh = Mesh::new_2d(4, 2);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let row: Vec<NodeId> = (0..4).map(|x| mesh.node_at_coords(&[x, 0])).collect();

    // Uncontended: one packet, no stalls.
    let mut sim = Sim::with_observer(&mesh, &xy, &pattern, quiet(), Counter::default());
    sim.inject_packet(row[0], row[3], 2);
    assert!(sim.run_until_idle(200));
    assert_eq!(sim.observer().stalls, 0, "a lone packet never stalls");

    // Contended: a second worm injected right behind the first on the
    // same eastbound row must stall behind it.
    let mut sim = Sim::with_observer(&mesh, &xy, &pattern, quiet(), Counter::default());
    sim.inject_packet(row[0], row[3], 6);
    sim.inject_packet(row[1], row[3], 6);
    assert!(sim.run_until_idle(400));
    let c = sim.observer();
    assert_eq!(c.delivers, 2);
    assert!(c.stalls > 0, "the follower worm must stall at least once");
}

/// Deterministic left-turning routing for the deadlock test (the
/// paper's Figure 1 hazard, self-contained here).
#[derive(Debug, Clone, Copy, Default)]
struct TurnLeft;

impl TurnLeft {
    fn left_of(d: Direction) -> Direction {
        match d {
            Direction::EAST => Direction::NORTH,
            Direction::NORTH => Direction::WEST,
            Direction::WEST => Direction::SOUTH,
            Direction::SOUTH => Direction::EAST,
            _ => unreachable!("2D directions only"),
        }
    }
}

impl RoutingFunction for TurnLeft {
    fn name(&self) -> &str {
        "turn-left (deadlocks)"
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        let productive = topo.productive_dirs(current, dest);
        if productive.len() <= 1 {
            return productive;
        }
        if let Some(arr) = arrived {
            if productive.contains(arr) {
                return DirSet::single(arr);
            }
        }
        for d in productive.iter() {
            if productive.contains(Self::left_of(d)) {
                return DirSet::single(d);
            }
        }
        DirSet::single(productive.iter().next().expect("nonempty"))
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        Some(TurnSet::all_ninety(num_dims))
    }
}

/// A forced circular wait trips `on_deadlock` exactly once, the
/// captured snapshot names the cycle, and the telemetry postmortem is
/// line-by-line parseable JSON.
#[test]
fn deadlock_postmortem_is_captured_and_parseable() {
    let mesh = Mesh::new_2d(2, 2);
    let pattern = Permutation::new("square", (0..4).map(NodeId).collect());
    let cfg = SimConfig::builder()
        .injection_rate(0.0)
        .warmup_cycles(0)
        .measure_cycles(300)
        .drain_cycles(0)
        .deadlock_threshold(50)
        .build();
    let sources = [
        (mesh.node_at_coords(&[0, 0]), mesh.node_at_coords(&[1, 1])),
        (mesh.node_at_coords(&[1, 0]), mesh.node_at_coords(&[0, 1])),
        (mesh.node_at_coords(&[1, 1]), mesh.node_at_coords(&[0, 0])),
        (mesh.node_at_coords(&[0, 1]), mesh.node_at_coords(&[1, 0])),
    ];

    let routing = TurnLeft;
    let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, Telemetry::new(&mesh));
    for (src, dst) in sources {
        sim.inject_packet(src, dst, 8);
    }
    let report = sim.run();
    assert!(report.deadlocked);

    let telemetry = sim.into_observer();
    let snap = telemetry
        .trace
        .snapshot()
        .expect("snapshot captured at deadlock");
    assert_eq!(
        snap.cycle_channels().len(),
        4,
        "four worms in a square wait"
    );

    let dump = telemetry.trace.postmortem_jsonl();
    assert!(dump.lines().count() >= 3);
    for line in dump.lines() {
        assert!(json::validate(line), "invalid JSON line: {line}");
    }
    assert!(dump.lines().next().unwrap().contains("\"deadlocked\":true"));
}

/// The same deterministic run reports identical results with and
/// without an observer attached — hooks are strictly read-only.
#[test]
fn observer_does_not_perturb_the_simulation() {
    let mesh = Mesh::new_2d(4, 4);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.08)
        .warmup_cycles(200)
        .measure_cycles(1_000)
        .drain_cycles(1_000)
        .seed(7)
        .build();

    let plain = Sim::new(&mesh, &wf, &pattern, cfg.clone()).run();
    let mut observed = Sim::with_observer(&mesh, &wf, &pattern, cfg, Counter::default());
    let report = observed.run();

    assert_eq!(report.delivered_packets, plain.delivered_packets);
    assert_eq!(report.avg_latency_cycles, plain.avg_latency_cycles);
    assert_eq!(report.p99_latency_cycles, plain.p99_latency_cycles);
    assert_eq!(report.total_stall_cycles, plain.total_stall_cycles);
    // on_deliver fires for every packet, including warmup and drain
    // deliveries outside the measurement window.
    assert!(observed.observer().delivers as u64 >= report.delivered_packets);
}
