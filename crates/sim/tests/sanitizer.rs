//! End-to-end invariant sanitizer runs: the shadow model must stay clean
//! through loaded traffic, misrouting, faults with timeouts/retries, and
//! even a genuine deadlock (stuck flits are conserved flits).

use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{FaultPlan, InvariantObserver, RunTermination, Sim, SimConfig};
use turnroute_topology::{Direction, Mesh, Topology};
use turnroute_traffic::{MeshTranspose, Uniform};

fn sanitizer(mesh: &Mesh, cfg: &SimConfig) -> InvariantObserver {
    InvariantObserver::new(ChannelLayout::for_topology(mesh), cfg.buffer_depth)
}

#[test]
fn loaded_uniform_run_is_clean() {
    let mesh = Mesh::new_2d(6, 6);
    let routing = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.3)
        .warmup_cycles(300)
        .measure_cycles(1_500)
        .drain_cycles(1_000)
        .seed(11)
        .build();
    let obs = sanitizer(&mesh, &cfg);
    let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();
    assert!(!report.deadlocked);
    let obs = sim.observer();
    obs.assert_clean();
    let s = obs.summary();
    assert!(s.sourced_flits > 0, "traffic must actually flow");
    assert!(s.consumed_flits > 0);
    assert!(s.audited_cycles > 0);
}

#[test]
fn nonminimal_misrouting_run_is_clean() {
    let mesh = Mesh::new_2d(5, 5);
    let routing = mesh2d::north_last(RoutingMode::Nonminimal);
    let pattern = MeshTranspose::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.25)
        .warmup_cycles(200)
        .measure_cycles(1_000)
        .drain_cycles(1_000)
        .misroute_budget(4)
        .seed(23)
        .build();
    let obs = sanitizer(&mesh, &cfg);
    let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();
    assert!(!report.deadlocked);
    sim.observer().assert_clean();
}

#[test]
fn faults_timeouts_and_retries_stay_clean() {
    let mesh = Mesh::new_2d(5, 5);
    let routing = mesh2d::negative_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let center = mesh.node_at_coords(&[2, 2]);
    let plan = FaultPlan::new()
        .transient_link(center, Direction::EAST, 100, 300)
        .transient_node(center, 400, 200);
    let cfg = SimConfig::builder()
        .injection_rate(0.2)
        .warmup_cycles(0)
        .measure_cycles(1_200)
        .drain_cycles(800)
        .packet_timeout(150)
        .max_retries(1)
        .deadlock_threshold(5_000)
        .fault_plan(plan)
        .seed(5)
        .build();
    let obs = sanitizer(&mesh, &cfg);
    let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();
    assert_eq!(report.termination, RunTermination::Completed);
    let obs = sim.observer();
    obs.assert_clean();
    assert!(
        obs.summary().purged_flits > 0,
        "the node fault must strand at least one packet into a purge"
    );
}

/// Even when the network deadlocks, no flit may be created or destroyed:
/// everything sourced is still buffered (or was consumed first).
#[test]
fn deadlocked_network_still_conserves_flits() {
    let mesh = Mesh::new_2d(4, 4);
    // Fully adaptive minimal routing with no turn restrictions deadlocks
    // under enough load; that is the paper's motivating hazard.
    let routing = turnroute_routing::FullyAdaptive::new();
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.9)
        .warmup_cycles(0)
        .measure_cycles(30_000)
        .drain_cycles(0)
        .deadlock_threshold(200)
        .seed(3)
        .build();
    let obs = sanitizer(&mesh, &cfg);
    let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = sim.run();
    let obs = sim.observer();
    obs.assert_clean();
    if report.deadlocked {
        assert!(obs.summary().in_flight_flits > 0);
    }
}
