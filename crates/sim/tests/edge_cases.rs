//! Simulator edge cases.

use turnroute_routing::torus::NegativeFirstTorus;
use turnroute_routing::{mesh2d, ndmesh, RoutingMode};
use turnroute_sim::{InputPolicy, LengthDist, OutputPolicy, Sim, SimConfig};
use turnroute_topology::{Hypercube, Mesh, NodeId, Topology, Torus};
use turnroute_traffic::{TrafficPattern, Uniform};

fn quiet() -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.0)
        .deadlock_threshold(500)
        .build()
}

#[test]
fn single_flit_packet_is_head_and_tail() {
    let mesh = Mesh::new_2d(4, 4);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &xy, &pattern, quiet());
    let id = sim.inject_packet(NodeId(0), NodeId(3), 1);
    assert!(sim.run_until_idle(100));
    let p = sim.packets()[id.index()];
    assert_eq!(p.hops, 3);
    // 1 injection + 3 network + 1 ejection transfers for the only flit,
    // plus the consumption cycle draining the ejection buffer.
    assert_eq!(p.latency(), Some(5));
}

#[test]
fn smallest_mesh_works() {
    let mesh = Mesh::new_2d(2, 2);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.1)
        .lengths(LengthDist::Fixed(4))
        .warmup_cycles(100)
        .measure_cycles(1_000)
        .drain_cycles(1_000)
        .seed(1)
        .build();
    let report = Sim::new(&mesh, &wf, &pattern, cfg).run();
    assert!(!report.deadlocked);
    assert!(report.delivered_fraction() > 0.99);
}

#[test]
fn adjacent_nodes_minimum_latency() {
    let mesh = Mesh::new_2d(4, 4);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &xy, &pattern, quiet());
    let id = sim.inject_packet(NodeId(0), NodeId(1), 2);
    assert!(sim.run_until_idle(100));
    let p = sim.packets()[id.index()];
    assert_eq!(p.hops, 1);
    // Head: inject + 1 hop + eject = 3 cycles; tail one behind = 4.
    assert_eq!(p.latency(), Some(4));
}

#[test]
fn all_input_policies_complete() {
    let mesh = Mesh::new_2d(8, 8);
    let nf = mesh2d::negative_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    for policy in [
        InputPolicy::Fcfs,
        InputPolicy::PortOrder,
        InputPolicy::Random,
    ] {
        let cfg = SimConfig::builder()
            .injection_rate(0.08)
            .lengths(LengthDist::Fixed(8))
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .drain_cycles(2_000)
            .input_policy(policy)
            .seed(2)
            .build();
        let report = Sim::new(&mesh, &nf, &pattern, cfg).run();
        assert!(!report.deadlocked, "{policy} deadlocked");
        assert!(
            report.delivered_fraction() > 0.95,
            "{policy}: {:.3}",
            report.delivered_fraction()
        );
    }
}

#[test]
fn all_output_policies_complete() {
    let mesh = Mesh::new_2d(8, 8);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    for policy in [
        OutputPolicy::LowestDim,
        OutputPolicy::HighestDim,
        OutputPolicy::Random,
    ] {
        let cfg = SimConfig::builder()
            .injection_rate(0.08)
            .lengths(LengthDist::Fixed(8))
            .warmup_cycles(200)
            .measure_cycles(2_000)
            .drain_cycles(2_000)
            .output_policy(policy)
            .seed(3)
            .build();
        let report = Sim::new(&mesh, &wf, &pattern, cfg).run();
        assert!(!report.deadlocked, "{policy} deadlocked");
        assert!(
            report.delivered_fraction() > 0.95,
            "{policy}: {:.3}",
            report.delivered_fraction()
        );
    }
}

#[test]
fn bimodal_lengths_sample_both_modes() {
    let mesh = Mesh::new_2d(8, 8);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.3)
        .lengths(LengthDist::Bimodal {
            short: 10,
            long: 200,
        })
        .warmup_cycles(0)
        .measure_cycles(4_000)
        .drain_cycles(0)
        .seed(4)
        .build();
    let mut sim = Sim::new(&mesh, &xy, &pattern, cfg);
    let _ = sim.run();
    let (mut short, mut long) = (0usize, 0usize);
    for p in sim.packets() {
        match p.len {
            10 => short += 1,
            200 => long += 1,
            other => panic!("unexpected length {other}"),
        }
    }
    assert!(short > 0 && long > 0);
    let frac = short as f64 / (short + long) as f64;
    assert!((frac - 0.5).abs() < 0.1, "short fraction {frac}");
}

#[test]
fn hypercube_sim_smallest() {
    let cube = Hypercube::new(2);
    let ecube = turnroute_routing::hypercube::e_cube(2);
    let pattern = Uniform::new();
    let mut sim = Sim::new(&cube, &ecube, &pattern, quiet());
    let id = sim.inject_packet(NodeId(0), NodeId(3), 5);
    assert!(sim.run_until_idle(100));
    assert_eq!(sim.packets()[id.index()].hops, 2);
}

#[test]
fn torus_sim_wraparound_paths() {
    let torus = Torus::new(5, 2);
    let nf = NegativeFirstTorus::new(2);
    let pattern = Uniform::new();
    let mut sim = Sim::new(&torus, &nf, &pattern, quiet());
    // 1 -> 4 in x: descend to 0 then wrap = 2 hops vs 3 ascending.
    let src = torus.node_at_coords(&[1, 0]);
    let dst = torus.node_at_coords(&[4, 0]);
    let id = sim.inject_packet(src, dst, 5);
    assert!(sim.run_until_idle(200));
    let p = sim.packets()[id.index()];
    assert_eq!(p.hops, 2, "wrap shortcut not taken");
}

#[test]
fn three_d_mesh_sim() {
    let mesh = Mesh::new(vec![4, 4, 4]);
    let nf = ndmesh::negative_first(3, RoutingMode::Minimal);
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.05)
        .lengths(LengthDist::Fixed(6))
        .warmup_cycles(200)
        .measure_cycles(2_000)
        .drain_cycles(2_000)
        .seed(5)
        .build();
    let report = Sim::new(&mesh, &nf, &pattern, cfg).run();
    assert!(!report.deadlocked);
    assert!(report.delivered_fraction() > 0.99);
}

#[test]
fn zero_measure_window_is_safe() {
    let mesh = Mesh::new_2d(4, 4);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.05)
        .warmup_cycles(100)
        .measure_cycles(0)
        .drain_cycles(100)
        .seed(6)
        .build();
    let report = Sim::new(&mesh, &xy, &pattern, cfg).run();
    assert_eq!(report.generated_packets, 0);
    assert_eq!(report.throughput_flits_per_us(), 0.0);
    assert_eq!(report.delivered_fraction(), 1.0);
}

#[test]
fn back_to_back_packets_pipeline_through_same_path() {
    // Throughput check: N short packets along one path must take about
    // N * len cycles end to end (full pipelining, no gaps).
    let mesh = Mesh::new_2d(8, 8);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &xy, &pattern, quiet());
    let src = mesh.node_at_coords(&[0, 0]);
    let dst = mesh.node_at_coords(&[7, 0]);
    let n = 10u64;
    for _ in 0..n {
        sim.inject_packet(src, dst, 10);
    }
    assert!(sim.run_until_idle(2_000));
    let last = sim.packets().last().unwrap();
    // Serial occupancy of the injection channel: each packet's 10 flits
    // feed one per cycle; total ≈ n * 10 + pipeline depth.
    let done = last.delivered.unwrap();
    assert!(done < n * 10 + 30, "pipelining broken: done at {done}");
    assert!(done >= n * 10, "faster than channel bandwidth: {done}");
}

#[test]
fn deeper_buffers_do_not_change_uncontended_latency() {
    // Bandwidth, not buffering, limits a lone packet: latency must be
    // identical at any buffer depth.
    let mesh = Mesh::new_2d(8, 8);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut latencies = Vec::new();
    for depth in [1u32, 2, 4, 8] {
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .buffer_depth(depth)
            .build();
        let mut sim = Sim::new(&mesh, &xy, &pattern, cfg);
        let id = sim.inject_packet(NodeId(0), NodeId(63), 10);
        assert!(sim.run_until_idle(500));
        latencies.push(sim.packets()[id.index()].latency().unwrap());
    }
    assert!(latencies.windows(2).all(|w| w[0] == w[1]), "{latencies:?}");
}

#[test]
fn deeper_buffers_reduce_latency_under_contention() {
    let mesh = Mesh::new_2d(8, 8);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let run = |depth: u32| {
        let cfg = SimConfig::builder()
            .injection_rate(0.20)
            .warmup_cycles(1_000)
            .measure_cycles(4_000)
            .drain_cycles(4_000)
            .buffer_depth(depth)
            .seed(8)
            .build();
        Sim::new(&mesh, &xy, &pattern, cfg).run()
    };
    let shallow = run(1);
    let deep = run(8);
    assert!(!shallow.deadlocked && !deep.deadlocked);
    assert!(
        deep.avg_latency_cycles < shallow.avg_latency_cycles,
        "deep {:.1} should beat shallow {:.1}",
        deep.avg_latency_cycles,
        shallow.avg_latency_cycles
    );
}

#[test]
fn routing_delay_adds_per_hop_latency() {
    // Section 7's node-delay concern: one extra cycle of route selection
    // per router adds exactly hops + 2 cycles to an uncontended packet
    // (every router the header visits, injection and ejection included).
    let mesh = Mesh::new_2d(8, 8);
    let wf = mesh2d::west_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let mut base = None;
    for delay in [0u64, 1, 2] {
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .routing_delay(delay)
            .build();
        let mut sim = Sim::new(&mesh, &wf, &pattern, cfg);
        let id = sim.inject_packet(NodeId(0), NodeId(7), 10); // 7 hops
        assert!(sim.run_until_idle(500));
        let latency = sim.packets()[id.index()].latency().unwrap();
        match base {
            None => base = Some(latency),
            Some(b) => assert_eq!(latency, b + delay * 8, "delay {delay}"),
        }
    }
}

#[test]
fn recorded_paths_are_legal_walks() {
    let mesh = Mesh::new_2d(8, 8);
    let nf = mesh2d::negative_first(RoutingMode::Minimal);
    let pattern = Uniform::new();
    let cfg = SimConfig::builder()
        .injection_rate(0.08)
        .lengths(LengthDist::Fixed(6))
        .warmup_cycles(0)
        .measure_cycles(1_500)
        .drain_cycles(2_000)
        .record_paths(true)
        .seed(14)
        .build();
    let mut sim = Sim::new(&mesh, &nf, &pattern, cfg);
    let _ = sim.run();
    let mut checked = 0;
    for p in sim.packets() {
        if p.delivered.is_none() {
            continue;
        }
        let path = sim.packet_path(p.id);
        assert_eq!(*path.first().unwrap(), p.src);
        assert_eq!(*path.last().unwrap(), p.dst);
        assert_eq!(path.len() as u32 - 1, p.hops);
        for w in path.windows(2) {
            assert_eq!(mesh.min_hops(w[0], w[1]), 1, "non-adjacent hop");
        }
        checked += 1;
    }
    assert!(checked > 50, "too few packets to be meaningful");
}

#[test]
fn paths_not_recorded_by_default() {
    let mesh = Mesh::new_2d(4, 4);
    let xy = mesh2d::xy();
    let pattern = Uniform::new();
    let mut sim = Sim::new(&mesh, &xy, &pattern, quiet());
    let id = sim.inject_packet(NodeId(0), NodeId(5), 4);
    assert!(sim.run_until_idle(200));
    assert!(sim.packet_path(id).is_empty());
}

/// Pattern that always returns None: all messages consumed locally.
struct SelfLoop;

impl TrafficPattern for SelfLoop {
    fn name(&self) -> &str {
        "self-loop"
    }

    fn dest(
        &self,
        _topo: &dyn Topology,
        _src: NodeId,
        _rng: &mut dyn turnroute_rng::RngCore,
    ) -> Option<NodeId> {
        None
    }
}

#[test]
fn all_local_pattern_generates_no_network_traffic() {
    let mesh = Mesh::new_2d(4, 4);
    let xy = mesh2d::xy();
    let cfg = SimConfig::builder()
        .injection_rate(0.5)
        .warmup_cycles(0)
        .measure_cycles(1_000)
        .drain_cycles(0)
        .seed(7)
        .build();
    let report = Sim::new(&mesh, &xy, &SelfLoop, cfg).run();
    assert_eq!(report.generated_packets, 0);
    assert_eq!(report.delivered_flits_in_window, 0);
    assert!(!report.deadlocked);
}
