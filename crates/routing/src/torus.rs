//! k-ary n-cube (torus) adaptations of Section 4.2.
//!
//! Tori add wraparound channels, whose cycles do not involve turns, so the
//! mesh algorithms cannot be used as-is. The paper gives two deadlock-free
//! adaptations, both strictly nonminimal:
//!
//! 1. [`WrapOnFirstHop`] — allow a packet to use a wraparound channel only
//!    on its first hop, then route with any deadlock-free mesh algorithm.
//!    Wrap channels then never depend on other channels, so the dependency
//!    graph stays acyclic.
//! 2. [`NegativeFirstTorus`] — classify each wraparound channel by the
//!    direction it routes packets in (the `+` wrap from coordinate `k-1`
//!    to `0` *decreases* the coordinate, so it is a negative channel, and
//!    vice versa) and apply negative-first over the classified directions.

use turnroute_model::RoutingFunction;
use turnroute_topology::{DirSet, Direction, Mesh, NodeId, Sign, Topology};

/// Classify the channel leaving `node` in physical direction `dir`: a
/// wraparound channel routes packets the *opposite* way along the
/// coordinate (the `+` wrap decreases the coordinate from `k-1` to `0`).
pub fn classified_sign(topo: &dyn Topology, node: NodeId, dir: Direction) -> Sign {
    if topo.is_wrap(node, dir) {
        dir.sign().opposite()
    } else {
        dir.sign()
    }
}

/// Section 4.2's first torus adaptation: wraparound channels may be used
/// only as a packet's first hop; afterwards the packet follows `inner`, a
/// mesh routing algorithm, over the torus's mesh sub-channels.
///
/// A wraparound first hop is offered whenever it strictly shortens the
/// remaining mesh distance. Because no packet ever acquires a wrap channel
/// while holding another channel, wrap channels add no incoming
/// dependencies, and deadlock freedom reduces to the inner mesh
/// algorithm's.
///
/// # Example
///
/// ```
/// use turnroute_routing::torus::WrapOnFirstHop;
/// use turnroute_routing::{mesh2d, RoutingMode, RoutingFunction};
/// use turnroute_topology::{Torus, Topology, Direction};
///
/// let torus = Torus::new(8, 2);
/// let alg = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
/// let src = torus.node_at_coords(&[0, 0]);
/// let dst = torus.node_at_coords(&[7, 0]);
/// // The westward wrap (0 -> 7) is offered on the first hop: 1 hop
/// // instead of 7 mesh hops.
/// assert!(alg.route(&torus, src, dst, None).contains(Direction::WEST));
/// ```
#[derive(Debug, Clone)]
pub struct WrapOnFirstHop<R> {
    inner: R,
    mesh: Mesh,
    name: String,
}

impl<R: RoutingFunction> WrapOnFirstHop<R> {
    /// Wrap `inner` (a mesh algorithm) for use on `torus`.
    pub fn new(inner: R, torus: &dyn Topology) -> WrapOnFirstHop<R> {
        let radices: Vec<u16> = (0..torus.num_dims())
            .map(|d| torus.radix(d) as u16)
            .collect();
        let name = format!("{}+wrap-first-hop", inner.name());
        WrapOnFirstHop {
            inner,
            mesh: Mesh::new(radices),
            name,
        }
    }

    /// The underlying mesh the inner algorithm routes over.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Consume the adapter, returning the inner algorithm.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RoutingFunction> RoutingFunction for WrapOnFirstHop<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == dest {
            return DirSet::empty();
        }
        match arrived {
            None => {
                // First hop: mesh moves plus any beneficial wrap channel.
                let mut out = self.inner.route(&self.mesh, current, dest, None);
                let here = self.mesh.min_hops(current, dest);
                for dir in Direction::all(topo.num_dims()) {
                    if !topo.is_wrap(current, dir) {
                        continue;
                    }
                    let nb = topo.neighbor(current, dir).expect("torus channel");
                    if 1 + self.mesh.min_hops(nb, dest) < here {
                        out.insert(dir);
                    }
                }
                out
            }
            Some(dir) => {
                let src = topo
                    .neighbor(current, dir.opposite())
                    .expect("incoming channel has a source");
                if topo.is_wrap(src, dir) {
                    // Just crossed a wrap channel: begin the mesh route
                    // fresh (any turn off a wrap channel is safe).
                    self.inner.route(&self.mesh, current, dest, None)
                } else {
                    self.inner.route(&self.mesh, current, dest, Some(dir))
                }
            }
        }
    }

    fn is_minimal(&self) -> bool {
        false // wrap shortcuts make routes shorter than mesh distance, but
              // not necessarily torus-minimal
    }
}

/// Section 4.2's second torus adaptation: negative-first over *classified*
/// channel directions. Every wraparound channel is classified by the
/// direction it routes packets (see [`classified_sign`]); a packet travels
/// classified-negative channels first (including the `+` wrap from the
/// positive edge), then classified-positive channels (including the `-`
/// wrap from the zero edge).
///
/// Strictly nonminimal, as the paper notes all torus algorithms without
/// extra channels must be; routes are shortest *within the negative-first
/// structure*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativeFirstTorus {
    num_dims: usize,
}

/// One candidate way to resolve a single dimension, used internally by
/// [`NegativeFirstTorus`].
#[derive(Debug, Clone, Copy)]
struct DimPlan {
    cost: usize,
    /// The physical sign of the plan's next hop in its dimension, and
    /// whether that hop is a phase-1 (classified negative) move.
    first_sign: Sign,
    first_is_phase1: bool,
}

impl NegativeFirstTorus {
    /// Create classified negative-first routing for an `n`-dimensional
    /// torus.
    ///
    /// # Panics
    ///
    /// Panics if `num_dims < 1`.
    pub fn new(num_dims: usize) -> NegativeFirstTorus {
        assert!(num_dims >= 1, "at least one dimension required");
        NegativeFirstTorus { num_dims }
    }

    /// The candidate plans for resolving coordinate `c` to `d` in a
    /// dimension of radix `k`, cheapest first moves only.
    fn dim_plans(k: usize, c: usize, d: usize) -> Vec<DimPlan> {
        debug_assert!(c != d);
        let mut plans: Vec<DimPlan> = Vec::with_capacity(3);
        if d < c {
            // Pure descend: classified-negative mesh hops.
            plans.push(DimPlan {
                cost: c - d,
                first_sign: Sign::Minus,
                first_is_phase1: true,
            });
        }
        if d > c {
            // Pure ascend: classified-positive mesh hops.
            plans.push(DimPlan {
                cost: d - c,
                first_sign: Sign::Plus,
                first_is_phase1: false,
            });
        }
        if d == k - 1 {
            // Descend to 0, then the `-` wrap (classified positive) jumps
            // 0 -> k-1.
            // First hop descends if above zero; at zero the next hop is
            // the wrap itself (classified positive).
            plans.push(DimPlan {
                cost: c + 1,
                first_sign: Sign::Minus,
                first_is_phase1: c > 0,
            });
        }
        if c == k - 1 {
            // The `+` wrap (classified negative) jumps k-1 -> 0, then
            // ascend to d.
            plans.push(DimPlan {
                cost: 1 + d,
                first_sign: Sign::Plus,
                first_is_phase1: true,
            });
        }
        let best = plans
            .iter()
            .map(|p| p.cost)
            .min()
            .expect("c != d has a plan");
        plans.retain(|p| p.cost == best);
        plans
    }
}

impl RoutingFunction for NegativeFirstTorus {
    fn name(&self) -> &str {
        "negative-first-torus"
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == dest {
            return DirSet::empty();
        }
        let in_phase2 = match arrived {
            None => false,
            Some(dir) => {
                let src = topo
                    .neighbor(current, dir.opposite())
                    .expect("incoming channel has a source");
                classified_sign(topo, src, dir) == Sign::Plus
            }
        };
        let (cc, dc) = (topo.coord_of(current), topo.coord_of(dest));
        let mut phase1_moves = DirSet::empty();
        let mut phase2_moves = DirSet::empty();
        for dim in 0..self.num_dims {
            let (c, d) = (usize::from(cc.get(dim)), usize::from(dc.get(dim)));
            if c == d {
                continue;
            }
            for plan in Self::dim_plans(topo.radix(dim), c, d) {
                let dir = Direction::new(dim, plan.first_sign);
                if plan.first_is_phase1 {
                    phase1_moves.insert(dir);
                } else {
                    phase2_moves.insert(dir);
                }
            }
        }
        if in_phase2 {
            phase2_moves
        } else if !phase1_moves.is_empty() {
            phase1_moves
        } else {
            phase2_moves
        }
    }

    fn is_minimal(&self) -> bool {
        false
    }
}

impl std::fmt::Display for NegativeFirstTorus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "negative-first-torus ({}D)", self.num_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mesh2d, RoutingMode};
    use turnroute_model::Cdg;
    use turnroute_topology::Torus;

    fn walk(
        topo: &dyn Topology,
        alg: &dyn RoutingFunction,
        src: NodeId,
        dst: NodeId,
        max_hops: usize,
    ) -> usize {
        let mut cur = src;
        let mut arrived = None;
        let mut hops = 0;
        while cur != dst {
            let dirs = alg.route(topo, cur, dst, arrived);
            assert!(
                !dirs.is_empty(),
                "{} stuck at {cur} toward {dst}",
                alg.name()
            );
            let dir = dirs.iter().next().unwrap();
            cur = topo.neighbor(cur, dir).unwrap();
            arrived = Some(dir);
            hops += 1;
            assert!(hops <= max_hops, "{} wandering", alg.name());
        }
        hops
    }

    #[test]
    fn classified_sign_flips_on_wrap() {
        let torus = Torus::new(4, 2);
        let east_edge = torus.node_at_coords(&[3, 1]);
        assert_eq!(
            classified_sign(&torus, east_edge, Direction::EAST),
            Sign::Minus
        );
        let interior = torus.node_at_coords(&[1, 1]);
        assert_eq!(
            classified_sign(&torus, interior, Direction::EAST),
            Sign::Plus
        );
    }

    #[test]
    fn wrap_first_hop_uses_shortcut_then_mesh() {
        let torus = Torus::new(8, 2);
        let alg = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
        let src = torus.node_at_coords(&[7, 3]);
        let dst = torus.node_at_coords(&[1, 3]);
        // First hop east across the wrap (7 -> 0) beats 6 mesh hops west.
        let dirs = alg.route(&torus, src, dst, None);
        assert!(dirs.contains(Direction::EAST));
        // Take the wrap, then it is a plain 1-hop mesh route.
        let after_wrap = torus.neighbor(src, Direction::EAST).unwrap();
        assert_eq!(after_wrap, torus.node_at_coords(&[0, 3]));
        let dirs = alg.route(&torus, after_wrap, dst, Some(Direction::EAST));
        assert_eq!(dirs, DirSet::single(Direction::EAST));
        // The greedy walk (which happens to pick west first) still
        // delivers, via the mesh route.
        assert_eq!(walk(&torus, &alg, src, dst, 16), 6);
    }

    #[test]
    fn wrap_never_offered_after_first_hop() {
        let torus = Torus::new(6, 2);
        let alg = WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus);
        for cur in 0..torus.num_nodes() {
            let cur = NodeId(cur as u32);
            for dst in 0..torus.num_nodes() {
                let dst = NodeId(dst as u32);
                for arr in Direction::all(2) {
                    for out in alg.route(&torus, cur, dst, Some(arr)).iter() {
                        assert!(
                            !torus.is_wrap(cur, out),
                            "wrap channel offered mid-route at {cur}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wrap_first_hop_cdg_acyclic() {
        let torus = Torus::new(4, 2);
        for alg in [
            WrapOnFirstHop::new(mesh2d::west_first(RoutingMode::Minimal), &torus),
            WrapOnFirstHop::new(mesh2d::negative_first(RoutingMode::Minimal), &torus),
        ] {
            assert!(
                Cdg::from_routing(&torus, &alg).is_acyclic(),
                "{} cyclic",
                alg.name()
            );
        }
        let xy = WrapOnFirstHop::new(mesh2d::xy(), &torus);
        assert!(Cdg::from_routing(&torus, &xy).is_acyclic());
    }

    #[test]
    fn negative_first_torus_cdg_acyclic() {
        for k in [3u16, 4, 5] {
            let torus = Torus::new(k, 2);
            let alg = NegativeFirstTorus::new(2);
            assert!(
                Cdg::from_routing(&torus, &alg).is_acyclic(),
                "cyclic for k={k}"
            );
        }
    }

    #[test]
    fn negative_first_torus_delivers_everywhere() {
        let torus = Torus::new(5, 2);
        let alg = NegativeFirstTorus::new(2);
        for s in 0..torus.num_nodes() {
            for d in 0..torus.num_nodes() {
                if s == d {
                    continue;
                }
                walk(&torus, &alg, NodeId(s as u32), NodeId(d as u32), 32);
            }
        }
    }

    #[test]
    fn negative_first_torus_takes_wrap_shortcuts() {
        let torus = Torus::new(8, 2);
        let alg = NegativeFirstTorus::new(2);
        // From x=1 to x=7: descend 1 -> 0, wrap 0 -> 7: two hops instead
        // of six ascending.
        let src = torus.node_at_coords(&[1, 0]);
        let dst = torus.node_at_coords(&[7, 0]);
        assert_eq!(walk(&torus, &alg, src, dst, 8), 2);
        // From x=7 to x=2: wrap 7 -> 0 (classified negative), ascend twice.
        let src = torus.node_at_coords(&[7, 0]);
        let dst = torus.node_at_coords(&[2, 0]);
        assert_eq!(walk(&torus, &alg, src, dst, 8), 3);
    }

    #[test]
    fn negative_first_torus_phase_order() {
        let torus = Torus::new(5, 2);
        let alg = NegativeFirstTorus::new(2);
        // Needs a descend in x and an ascend in y: descend first.
        let src = torus.node_at_coords(&[3, 1]);
        let dst = torus.node_at_coords(&[1, 3]);
        let dirs = alg.route(&torus, src, dst, None);
        assert_eq!(dirs, DirSet::single(Direction::WEST));
    }

    #[test]
    fn wrap_adapter_accessors() {
        let torus = Torus::new(4, 2);
        let alg = WrapOnFirstHop::new(mesh2d::xy(), &torus);
        assert_eq!(alg.mesh().radices(), &[4, 4]);
        assert_eq!(alg.name(), "xy+wrap-first-hop");
        assert!(!alg.is_minimal());
        let inner = alg.into_inner();
        assert_eq!(inner.name(), "xy");
    }
}
