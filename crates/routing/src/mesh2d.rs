//! The 2D-mesh algorithms of Section 3: west-first, north-last,
//! negative-first, and the xy baseline.
//!
//! All three partially adaptive algorithms prohibit two of the eight
//! 90-degree turns — one from each abstract cycle — and are the three
//! prohibitions that are unique up to symmetry among the twelve
//! deadlock-free choices.

use crate::{DimensionOrder, RoutingMode, TwoPhase};
use turnroute_topology::{DirSet, Direction};

/// The xy routing algorithm (Figure 3): route fully along x, then fully
/// along y. Deadlock free and nonadaptive.
pub fn xy() -> DimensionOrder {
    DimensionOrder::xy()
}

/// The west-first routing algorithm (Section 3.1, Figure 5): route a
/// packet first west, if necessary, and then adaptively south, east, and
/// north. Prohibits the two turns *to* the west.
pub fn west_first(mode: RoutingMode) -> TwoPhase {
    TwoPhase::new("west-first", 2, DirSet::single(Direction::WEST), mode)
}

/// The north-last routing algorithm (Section 3.2, Figure 9): route a
/// packet first adaptively west, south, and east, and then north.
/// Prohibits the two turns *from* north.
pub fn north_last(mode: RoutingMode) -> TwoPhase {
    let phase1: DirSet = [Direction::WEST, Direction::SOUTH, Direction::EAST]
        .into_iter()
        .collect();
    TwoPhase::new("north-last", 2, phase1, mode)
}

/// The negative-first routing algorithm (Section 3.3, Figure 10): route a
/// packet first adaptively west and south, and then adaptively east and
/// north. Prohibits the two turns from a positive direction to a negative
/// direction.
pub fn negative_first(mode: RoutingMode) -> TwoPhase {
    let phase1: DirSet = [Direction::WEST, Direction::SOUTH].into_iter().collect();
    TwoPhase::new("negative-first", 2, phase1, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::{presets, Cdg, RoutingFunction};
    use turnroute_topology::{Mesh, NodeId, Topology};

    #[test]
    fn turn_sets_match_model_presets() {
        assert_eq!(
            west_first(RoutingMode::Minimal).turn_set(2).unwrap(),
            presets::west_first_turns()
        );
        assert_eq!(
            north_last(RoutingMode::Minimal).turn_set(2).unwrap(),
            presets::north_last_turns()
        );
        assert_eq!(
            negative_first(RoutingMode::Minimal).turn_set(2).unwrap(),
            presets::negative_first_turns(2)
        );
        assert_eq!(xy().turn_set(2).unwrap(), presets::xy_turns());
    }

    #[test]
    fn all_algorithms_have_acyclic_routing_cdgs() {
        let mesh = Mesh::new_2d(6, 5);
        let algorithms: Vec<Box<dyn RoutingFunction>> = vec![
            Box::new(xy()),
            Box::new(west_first(RoutingMode::Minimal)),
            Box::new(north_last(RoutingMode::Minimal)),
            Box::new(negative_first(RoutingMode::Minimal)),
            Box::new(west_first(RoutingMode::Nonminimal)),
            Box::new(north_last(RoutingMode::Nonminimal)),
            Box::new(negative_first(RoutingMode::Nonminimal)),
        ];
        for alg in &algorithms {
            let cdg = Cdg::from_routing(&mesh, alg);
            assert!(
                cdg.find_cycle().is_none(),
                "{} has a cyclic CDG",
                alg.name()
            );
        }
    }

    #[test]
    fn nonminimal_turn_set_cdgs_are_acyclic() {
        // The strongest check: even the full turn-set relation (any packet
        // taking any allowed turn, including Figure 8c reversals) is
        // acyclic.
        let mesh = Mesh::new_2d(5, 5);
        for alg in [
            west_first(RoutingMode::Nonminimal),
            north_last(RoutingMode::Nonminimal),
            negative_first(RoutingMode::Nonminimal),
        ] {
            let set = alg.turn_set(2).unwrap();
            assert!(
                Cdg::from_turn_set(&mesh, &set).is_acyclic(),
                "{} nonminimal turn set is cyclic",
                alg.name()
            );
        }
    }

    #[test]
    fn every_route_uses_allowed_turns_only() {
        let mesh = Mesh::new_2d(5, 5);
        for alg in [
            west_first(RoutingMode::Minimal),
            north_last(RoutingMode::Minimal),
            negative_first(RoutingMode::Minimal),
        ] {
            let set = alg.turn_set(2).unwrap();
            for cur in 0..mesh.num_nodes() {
                let cur = NodeId(cur as u32);
                for dst in 0..mesh.num_nodes() {
                    let dst = NodeId(dst as u32);
                    for arrived in Direction::all(2) {
                        for out in alg.route(&mesh, cur, dst, Some(arrived)).iter() {
                            assert!(
                                set.is_allowed(arrived, out),
                                "{}: turn {arrived}->{out} not allowed",
                                alg.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_routes_always_deliver() {
        // Greedy walk following any offered direction terminates at dest.
        let mesh = Mesh::new_2d(8, 8);
        for alg in [
            west_first(RoutingMode::Minimal),
            north_last(RoutingMode::Minimal),
            negative_first(RoutingMode::Minimal),
        ] {
            for (s, d) in [(0u32, 63u32), (63, 0), (7, 56), (56, 7), (20, 43)] {
                let (src, dst) = (NodeId(s), NodeId(d));
                let mut cur = src;
                let mut arrived = None;
                let mut hops = 0;
                while cur != dst {
                    let dirs = alg.route(&mesh, cur, dst, arrived);
                    assert!(!dirs.is_empty(), "{} stuck at {cur}", alg.name());
                    let dir = dirs.iter().next().unwrap();
                    cur = mesh.neighbor(cur, dir).unwrap();
                    arrived = Some(dir);
                    hops += 1;
                    assert!(hops <= mesh.min_hops(src, dst), "nonminimal hop");
                }
                assert_eq!(hops, mesh.min_hops(src, dst));
            }
        }
    }
}
