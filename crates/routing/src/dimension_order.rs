//! Dimension-order (nonadaptive) routing: xy and e-cube.

use turnroute_model::{RoutingFunction, Turn, TurnSet};
use turnroute_topology::{DirSet, Direction, NodeId, Sign, Topology};

/// Dimension-order routing: resolve the per-dimension offsets one
/// dimension at a time, in a fixed order. With the identity order this is
/// the paper's xy algorithm on 2D meshes and the e-cube algorithm on
/// hypercubes — deadlock free but completely nonadaptive (exactly one
/// shortest path per source–destination pair).
///
/// Not applicable to tori: minimal dimension-order routing on wraparound
/// channels deadlocks without virtual channels, which the paper's target
/// networks do not have.
///
/// # Example
///
/// ```
/// use turnroute_routing::DimensionOrder;
/// use turnroute_model::RoutingFunction;
/// use turnroute_topology::{Mesh, Topology, Direction};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let xy = DimensionOrder::xy();
/// let src = mesh.node_at_coords(&[0, 0]);
/// let dst = mesh.node_at_coords(&[2, 3]);
/// // x is corrected first.
/// assert!(xy.route(&mesh, src, dst, None).contains(Direction::EAST));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionOrder {
    name: String,
    order: Vec<usize>,
}

impl DimensionOrder {
    /// Dimension-order routing resolving dimensions in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn new(name: impl Into<String>, order: Vec<usize>) -> DimensionOrder {
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert!(
            sorted.iter().copied().eq(0..order.len()),
            "order must be a permutation of 0..n"
        );
        DimensionOrder {
            name: name.into(),
            order,
        }
    }

    /// The xy algorithm for 2D meshes: dimension 0 (x) then dimension 1
    /// (y).
    pub fn xy() -> DimensionOrder {
        DimensionOrder::new("xy", vec![0, 1])
    }

    /// The e-cube algorithm for an `n`-dimensional network: lowest
    /// dimension first.
    pub fn e_cube(num_dims: usize) -> DimensionOrder {
        DimensionOrder::new("e-cube", (0..num_dims).collect())
    }

    /// The dimension resolution order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

impl RoutingFunction for DimensionOrder {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        let (c, d) = (topo.coord_of(current), topo.coord_of(dest));
        // A packet traveling dimension `j` has already resolved every
        // dimension ordered before `j`; states contradicting that are
        // unreachable and get no moves.
        let start_pos = arrived.map_or(0, |a| {
            self.order
                .iter()
                .position(|&dim| dim == a.dim())
                .expect("arrival dimension in order")
        });
        for (p, &dim) in self.order.iter().enumerate() {
            let (ci, di) = (c.get(dim), d.get(dim));
            if ci != di {
                if p < start_pos {
                    return DirSet::empty(); // unreachable state
                }
                let sign = if di > ci { Sign::Plus } else { Sign::Minus };
                let dir = Direction::new(dim, sign);
                if arrived == Some(dir.opposite()) {
                    return DirSet::empty(); // reversal: unreachable state
                }
                return DirSet::single(dir);
            }
        }
        DirSet::empty()
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        if num_dims != self.order.len() {
            return None;
        }
        let mut pos = vec![0usize; num_dims];
        for (p, &dim) in self.order.iter().enumerate() {
            pos[dim] = p;
        }
        let mut set = TurnSet::no_turns(num_dims);
        for t in Turn::all_ninety(num_dims) {
            if pos[t.from_dir().dim()] < pos[t.to_dir().dim()] {
                set.allow(t);
            }
        }
        Some(set)
    }
}

impl std::fmt::Display for DimensionOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Hypercube, Mesh};

    #[test]
    fn xy_resolves_x_before_y() {
        let mesh = Mesh::new_2d(8, 8);
        let xy = DimensionOrder::xy();
        let src = mesh.node_at_coords(&[5, 5]);
        let dst = mesh.node_at_coords(&[2, 7]);
        assert_eq!(
            xy.route(&mesh, src, dst, None),
            DirSet::single(Direction::WEST)
        );
        let mid = mesh.node_at_coords(&[2, 5]);
        assert_eq!(
            xy.route(&mesh, mid, dst, None),
            DirSet::single(Direction::NORTH)
        );
    }

    #[test]
    fn routes_are_singletons_until_destination() {
        let mesh = Mesh::new_2d(8, 8);
        let xy = DimensionOrder::xy();
        let dst = mesh.node_at_coords(&[3, 3]);
        for id in 0..mesh.num_nodes() {
            let node = NodeId(id as u32);
            let dirs = xy.route(&mesh, node, dst, None);
            if node == dst {
                assert!(dirs.is_empty());
            } else {
                assert_eq!(dirs.len(), 1);
            }
        }
    }

    #[test]
    fn e_cube_on_hypercube_corrects_lowest_bit_first() {
        let cube = Hypercube::new(4);
        let ecube = DimensionOrder::e_cube(4);
        let src = NodeId(0b1010);
        let dst = NodeId(0b0101);
        // Lowest differing dimension is 0; bit is 0 -> travel Plus.
        assert_eq!(
            ecube.route(&cube, src, dst, None),
            DirSet::single(Direction::new(0, Sign::Plus))
        );
    }

    #[test]
    fn custom_order_yx() {
        let mesh = Mesh::new_2d(8, 8);
        let yx = DimensionOrder::new("yx", vec![1, 0]);
        let src = mesh.node_at_coords(&[5, 5]);
        let dst = mesh.node_at_coords(&[2, 7]);
        assert_eq!(
            yx.route(&mesh, src, dst, None),
            DirSet::single(Direction::NORTH)
        );
    }

    #[test]
    fn turn_set_is_dimension_ordered() {
        let xy = DimensionOrder::xy();
        let set = xy.turn_set(2).expect("native dims");
        assert_eq!(set.allowed_ninety().len(), 4);
        assert!(set.is_allowed(Direction::WEST, Direction::NORTH));
        assert!(!set.is_allowed(Direction::NORTH, Direction::WEST));
        assert!(xy.turn_set(3).is_none());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation() {
        let _ = DimensionOrder::new("bad", vec![0, 0]);
    }

    #[test]
    fn accessors() {
        let e = DimensionOrder::e_cube(3);
        assert_eq!(e.order(), &[0, 1, 2]);
        assert_eq!(e.to_string(), "e-cube");
        assert!(e.is_minimal());
    }
}
