//! Hypercube routing: the e-cube baseline and p-cube (Section 5).
//!
//! The p-cube algorithm is the hypercube special case of negative-first
//! with a particularly compact bitwise expression (Figures 11 and 12):
//! phase 1 clears the bits where the current address has a 1 the
//! destination lacks; phase 2 sets the bits the destination has that the
//! current address lacks.

use crate::{DimensionOrder, RoutingMode, TwoPhase};
use turnroute_topology::{Direction, Sign};

/// The nonadaptive e-cube routing algorithm for an `n`-cube: correct
/// address bits lowest dimension first.
pub fn e_cube(num_dims: usize) -> DimensionOrder {
    DimensionOrder::e_cube(num_dims)
}

/// The p-cube routing algorithm for an `n`-cube (Section 5): phase 1
/// travels dimensions where the current bit is 1 and the destination bit
/// is 0 (negative directions), phase 2 dimensions where the current bit is
/// 0 and the destination bit is 1 (positive directions). In
/// [`RoutingMode::Nonminimal`] mode, phase 1 may also travel any dimension
/// whose current bit is 1 (Figure 12's extra adaptiveness).
///
/// # Panics
///
/// Panics if `num_dims < 2`.
pub fn p_cube(num_dims: usize, mode: RoutingMode) -> TwoPhase {
    assert!(num_dims >= 2, "p-cube needs at least two dimensions");
    let phase1 = Direction::all(num_dims)
        .filter(|d| d.sign() == Sign::Minus)
        .collect();
    TwoPhase::new("p-cube", num_dims, phase1, mode)
}

/// The phase register of minimal p-cube routing (Figure 11): the
/// dimensions the router may forward along, as a bitmask.
///
/// Step 2 computes `R = C ∧ D̄`; if that is zero, step 3 computes
/// `R = C̄ ∧ D` (masked to `n` bits).
pub fn minimal_register(current: u32, dest: u32, num_dims: usize) -> u32 {
    let mask = if num_dims >= 32 {
        u32::MAX
    } else {
        (1 << num_dims) - 1
    };
    let r = current & !dest & mask;
    if r != 0 {
        r
    } else {
        !current & dest & mask
    }
}

/// The phase register of nonminimal p-cube routing (Figure 12): in phase 1
/// (`p = 1`, the packet has only traveled phase-1 dimensions so far) the
/// register is simply `C` — any dimension with a 1 bit may be traveled;
/// once `C ∧ D̄ = 0` *and* the packet enters phase 2, the register is
/// `C̄ ∧ D`.
pub fn nonminimal_register(current: u32, dest: u32, num_dims: usize, phase1: bool) -> u32 {
    let mask = if num_dims >= 32 {
        u32::MAX
    } else {
        (1 << num_dims) - 1
    };
    if phase1 {
        current & mask
    } else {
        !current & dest & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingFunction;
    use turnroute_model::{adaptiveness, Cdg};
    use turnroute_topology::{DirSet, Hypercube, NodeId, Topology};

    /// Resolve p-cube's offered directions into the register bitmask of
    /// dimensions, for comparison with Figure 11.
    fn dirs_to_dims(dirs: DirSet) -> u32 {
        dirs.iter().fold(0, |acc, d| acc | (1 << d.dim()))
    }

    #[test]
    fn route_matches_figure_11_register() {
        let cube = Hypercube::new(6);
        let alg = p_cube(6, RoutingMode::Minimal);
        for c in 0..cube.num_nodes() as u32 {
            for d in [0u32, 0b111111, 0b101010, 0b010101, 0b110001] {
                if c == d {
                    continue;
                }
                let dirs = alg.route(&cube, NodeId(c), NodeId(d), None);
                assert_eq!(
                    dirs_to_dims(dirs),
                    minimal_register(c, d, 6),
                    "c={c:#b} d={d:#b}"
                );
            }
        }
    }

    #[test]
    fn phase1_clears_ones_before_phase2_sets_zeros() {
        let cube = Hypercube::new(4);
        let alg = p_cube(4, RoutingMode::Minimal);
        // c = 1100, d = 0011: phase 1 clears bits 2,3; phase 2 sets 0,1.
        let dirs = alg.route(&cube, NodeId(0b1100), NodeId(0b0011), None);
        assert_eq!(dirs_to_dims(dirs), 0b1100);
        for dir in dirs.iter() {
            assert_eq!(dir.sign(), Sign::Minus);
        }
    }

    #[test]
    fn section_5_example_path_counts() {
        // Source 1011010100 -> destination 0010111001 in a 10-cube:
        // 36 shortest paths under p-cube, 720 under fully adaptive.
        let cube = Hypercube::new(10);
        let alg = p_cube(10, RoutingMode::Minimal);
        let s = NodeId(0b1011010100);
        let d = NodeId(0b0010111001);
        let paths = adaptiveness::count_minimal_paths(&cube, &alg, s, d);
        assert_eq!(paths, 36);
        let fa = crate::FullyAdaptive::new();
        assert_eq!(adaptiveness::count_minimal_paths(&cube, &fa, s, d), 720);
    }

    #[test]
    fn pcube_path_count_formula_holds() {
        let cube = Hypercube::new(6);
        let alg = p_cube(6, RoutingMode::Minimal);
        for (s, d) in [
            (0b101010u32, 0b010101u32),
            (0b111000, 0b000111),
            (0, 0b111111),
        ] {
            let h1 = (s & !d).count_ones();
            let h0 = (!s & d).count_ones();
            assert_eq!(
                adaptiveness::count_minimal_paths(&cube, &alg, NodeId(s), NodeId(d)),
                adaptiveness::s_pcube(h1, h0)
            );
        }
    }

    #[test]
    fn cdgs_acyclic_on_5_cube() {
        let cube = Hypercube::new(5);
        for alg in [
            p_cube(5, RoutingMode::Minimal),
            p_cube(5, RoutingMode::Nonminimal),
        ] {
            assert!(
                Cdg::from_routing(&cube, &alg).is_acyclic(),
                "{}",
                alg.name()
            );
        }
        assert!(Cdg::from_routing(&cube, &e_cube(5)).is_acyclic());
    }

    #[test]
    fn nonminimal_register_is_current_in_phase1() {
        assert_eq!(nonminimal_register(0b1011, 0b0001, 4, true), 0b1011);
        assert_eq!(nonminimal_register(0b1011, 0b0101, 4, false), 0b0100);
        assert_eq!(minimal_register(0b0001, 0b0111, 4), 0b0110);
    }

    #[test]
    fn nonminimal_phase1_offers_all_one_bits() {
        let cube = Hypercube::new(4);
        let alg = p_cube(4, RoutingMode::Nonminimal);
        // c = 1010, d = 0011: minimal phase 1 clears bit 3 only, but
        // nonminimal phase 1 may also travel dimension 1 (c_1 = 1, d_1 = 1).
        let dirs = alg.route(&cube, NodeId(0b1010), NodeId(0b0011), None);
        assert_eq!(
            dirs_to_dims(dirs),
            nonminimal_register(0b1010, 0b0011, 4, true)
        );
        for dir in dirs.iter() {
            assert_eq!(dir.sign(), Sign::Minus, "phase 1 travels negative only");
        }
    }

    #[test]
    fn e_cube_singleton_routes() {
        let cube = Hypercube::new(8);
        let alg = e_cube(8);
        let s = NodeId(0b10110101);
        let d = NodeId(0b00101100);
        let dirs = alg.route(&cube, s, d, None);
        assert_eq!(dirs.len(), 1);
        // Lowest differing dimension: bit 0 (1 vs 0) -> travel minus.
        let dir = dirs.iter().next().unwrap();
        assert_eq!(dir.dim(), 0);
        assert_eq!(dir.sign(), Sign::Minus);
    }
}
