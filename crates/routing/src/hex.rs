//! Hexagonal-mesh routing — the paper's Section 7 extension, realized.
//!
//! "Another obvious extension of our work is to apply the turn model to
//! other topologies, such as hexagonal … networks, all of which permit
//! adaptive routing without the addition of channels. In such topologies,
//! the turns are not necessarily 90-degrees and the abstract cycles are
//! not necessarily formed by four turns."
//!
//! A hexagonal mesh ([`turnroute_topology::HexMesh`]) has six directions
//! along three axes, so its turns come in 60- and 120-degree varieties and
//! its minimal cycles have three turns (a triangle of axes). The
//! negative-first prohibition pattern still breaks every cycle: prohibit
//! all turns from a positive direction to a negative direction, route
//! adaptively among productive negative directions first, then among
//! positive ones. The generic [`TwoPhase`] scheme
//! expresses this directly; this module just names it and pins down its
//! properties with hex-specific tests.

use crate::{RoutingMode, TwoPhase};
use turnroute_topology::{DirSet, Direction, Sign};

/// Negative-first routing for hexagonal meshes: phase 1 routes adaptively
/// among the productive negative directions (west, north-west,
/// south-west), phase 2 among the positive ones. Deadlock free by the
/// turn model — every cycle of the hex channel graph needs a
/// positive-to-negative turn — and verified mechanically by the channel
/// dependency graph in this module's tests.
pub fn negative_first_hex(mode: RoutingMode) -> TwoPhase {
    let phase1: DirSet = Direction::all(3)
        .filter(|d| d.sign() == Sign::Minus)
        .collect();
    TwoPhase::new("negative-first-hex", 3, phase1, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FullyAdaptive, RoutingFunction};
    use turnroute_model::adaptiveness::count_minimal_paths;
    use turnroute_model::verifier::verify;
    use turnroute_model::Cdg;
    use turnroute_topology::{HexMesh, NodeId, Topology};

    #[test]
    fn fully_verified_on_assorted_hex_meshes() {
        for (q, r) in [(3u16, 3u16), (4, 4), (5, 3), (3, 6)] {
            let hex = HexMesh::new(q, r);
            let nf = negative_first_hex(RoutingMode::Minimal);
            let report = verify(&hex, &nf);
            assert!(report.all_ok(), "hex {q}x{r}: {report}");
        }
    }

    #[test]
    fn unrestricted_adaptivity_deadlocks_on_hex_too() {
        // The hazard the turn model fixes is not mesh-specific.
        let hex = HexMesh::new(4, 4);
        assert!(Cdg::from_routing(&hex, &FullyAdaptive::new())
            .find_cycle()
            .is_some());
    }

    #[test]
    fn nonminimal_mode_is_deadlock_free() {
        let hex = HexMesh::new(4, 4);
        let nf = negative_first_hex(RoutingMode::Nonminimal);
        assert!(Cdg::from_routing(&hex, &nf).is_acyclic());
    }

    #[test]
    fn diagonal_axis_gives_more_paths_than_a_square_mesh() {
        // From (0,0) to (2,2): on a 2D mesh that pair has 6 shortest
        // paths under full adaptivity; on the hex rhombus the distance is
        // 4 (no +C shortcut for same-sign offsets) and negative-first is
        // fully adaptive on the all-positive quadrant.
        let hex = HexMesh::new(5, 5);
        let nf = negative_first_hex(RoutingMode::Minimal);
        let src = hex.node_at_axial(0, 0);
        let dst = hex.node_at_axial(2, 2);
        assert_eq!(hex.min_hops(src, dst), 4);
        let paths = count_minimal_paths(&hex, &nf, src, dst);
        assert!(paths >= 6, "expected rich adaptivity, got {paths}");
    }

    #[test]
    fn mixed_offsets_use_the_diagonal_axis() {
        // dq = +2, dr = -3 resolves in 3 hops via -B and +C moves.
        let hex = HexMesh::new(6, 6);
        let nf = negative_first_hex(RoutingMode::Minimal);
        let src = hex.node_at_axial(0, 3);
        let dst = hex.node_at_axial(2, 0);
        let mut cur = src;
        let mut arrived = None;
        let mut hops = 0;
        while cur != dst {
            let dirs = nf.route(&hex, cur, dst, arrived);
            assert!(!dirs.is_empty(), "stuck at {cur}");
            let dir = dirs.iter().next().unwrap();
            cur = hex.neighbor(cur, dir).unwrap();
            arrived = Some(dir);
            hops += 1;
        }
        assert_eq!(hops, 3);
    }

    #[test]
    fn phase1_comes_first_on_hex() {
        let hex = HexMesh::new(6, 6);
        let nf = negative_first_hex(RoutingMode::Minimal);
        // dq = -1, dr = +3: the productive directions are -C (negative)
        // and +B (positive); negative-first must offer only -C first.
        let src = hex.node_at_axial(1, 0);
        let dst = hex.node_at_axial(0, 3);
        let dirs = nf.route(&hex, src, dst, None);
        assert!(!dirs.is_empty());
        for d in dirs.iter() {
            assert_eq!(d.sign(), Sign::Minus, "phase 1 must be negative, got {d}");
            assert_eq!(d.dim(), 2, "the productive negative axis is C");
        }
        // After the -C hop, only +B remains productive.
        let mid = hex.node_at_axial(0, 1);
        let dirs = nf.route(&hex, mid, dst, Some(Direction::new(2, Sign::Minus)));
        assert_eq!(dirs.len(), 1);
        let d = dirs.iter().next().unwrap();
        assert_eq!((d.dim(), d.sign()), (1, Sign::Plus));
    }

    #[test]
    fn hex_path_counts_match_exhaustive_walks() {
        let hex = HexMesh::new(4, 4);
        let nf = negative_first_hex(RoutingMode::Minimal);
        for s in 0..hex.num_nodes() {
            for d in 0..hex.num_nodes() {
                if s == d {
                    continue;
                }
                let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                let paths = count_minimal_paths(&hex, &nf, s, d);
                assert!(paths >= 1, "{s}->{d} unroutable");
            }
        }
    }
}
