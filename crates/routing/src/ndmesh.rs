//! The n-dimensional mesh algorithms of Section 4.1.

use crate::{RoutingMode, TwoPhase};
use turnroute_topology::{DirSet, Direction, Sign};

/// All negative directions of an `n`-dimensional network.
fn negatives(num_dims: usize) -> DirSet {
    Direction::all(num_dims)
        .filter(|d| d.sign() == Sign::Minus)
        .collect()
}

/// The negative-first routing algorithm for n-dimensional meshes
/// (Theorem 5): route a packet first adaptively in the negative
/// directions, then adaptively in the positive directions. Prohibits the
/// `n(n-1)` turns from positive to negative directions — the minimum of
/// Theorem 6.
///
/// # Panics
///
/// Panics if `num_dims < 2` (with one dimension there are no turns to
/// restrict and phase 2 would be empty).
pub fn negative_first(num_dims: usize, mode: RoutingMode) -> TwoPhase {
    assert!(
        num_dims >= 2,
        "negative-first needs at least two dimensions"
    );
    TwoPhase::new("negative-first", num_dims, negatives(num_dims), mode)
}

/// The all-but-one-negative-first routing algorithm (Section 4.1), the
/// n-dimensional analog of west-first: route first adaptively in the
/// negative directions of all but one dimension (the last), then
/// adaptively in the other directions.
///
/// # Panics
///
/// Panics if `num_dims < 2`.
pub fn all_but_one_negative_first(num_dims: usize, mode: RoutingMode) -> TwoPhase {
    assert!(num_dims >= 2, "ABONF needs at least two dimensions");
    let phase1: DirSet = Direction::all(num_dims)
        .filter(|d| d.sign() == Sign::Minus && d.dim() < num_dims - 1)
        .collect();
    TwoPhase::new("all-but-one-negative-first", num_dims, phase1, mode)
}

/// The all-but-one-positive-last routing algorithm (Section 4.1), the
/// n-dimensional analog of north-last: route first adaptively in the
/// negative directions and the positive direction of dimension 0, then
/// adaptively in the other (positive) directions.
///
/// # Panics
///
/// Panics if `num_dims < 2`.
pub fn all_but_one_positive_last(num_dims: usize, mode: RoutingMode) -> TwoPhase {
    assert!(num_dims >= 2, "ABOPL needs at least two dimensions");
    let phase1: DirSet = Direction::all(num_dims)
        .filter(|d| d.sign() == Sign::Minus || d.dim() == 0)
        .collect();
    TwoPhase::new("all-but-one-positive-last", num_dims, phase1, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::{presets, Cdg, RoutingFunction};
    use turnroute_topology::{Mesh, NodeId, Topology};

    #[test]
    fn turn_sets_match_model_presets() {
        for n in 2..=5 {
            assert_eq!(
                negative_first(n, RoutingMode::Minimal).turn_set(n).unwrap(),
                presets::negative_first_turns(n)
            );
            assert_eq!(
                all_but_one_negative_first(n, RoutingMode::Minimal)
                    .turn_set(n)
                    .unwrap(),
                presets::all_but_one_negative_first_turns(n)
            );
            assert_eq!(
                all_but_one_positive_last(n, RoutingMode::Minimal)
                    .turn_set(n)
                    .unwrap(),
                presets::all_but_one_positive_last_turns(n)
            );
        }
    }

    #[test]
    fn prohibit_exactly_a_quarter_of_turns() {
        // Theorems 1 and 6: n(n-1) prohibited turns out of 4n(n-1).
        for n in 2..=6 {
            for alg in [
                negative_first(n, RoutingMode::Minimal),
                all_but_one_negative_first(n, RoutingMode::Minimal),
                all_but_one_positive_last(n, RoutingMode::Minimal),
            ] {
                let set = alg.turn_set(n).unwrap();
                assert_eq!(set.prohibited_ninety().len(), n * (n - 1), "{}", alg.name());
            }
        }
    }

    #[test]
    fn routing_cdgs_acyclic_on_3d_mesh() {
        let mesh = Mesh::new(vec![3, 4, 3]);
        for alg in [
            negative_first(3, RoutingMode::Minimal),
            all_but_one_negative_first(3, RoutingMode::Minimal),
            all_but_one_positive_last(3, RoutingMode::Minimal),
            negative_first(3, RoutingMode::Nonminimal),
            all_but_one_negative_first(3, RoutingMode::Nonminimal),
            all_but_one_positive_last(3, RoutingMode::Nonminimal),
        ] {
            assert!(
                Cdg::from_routing(&mesh, &alg).is_acyclic(),
                "{} ({:?}) cyclic",
                alg.name(),
                alg.mode()
            );
        }
    }

    #[test]
    fn turn_set_cdgs_acyclic_on_3d_mesh() {
        let mesh = Mesh::new(vec![3, 3, 3]);
        for alg in [
            negative_first(3, RoutingMode::Nonminimal),
            all_but_one_negative_first(3, RoutingMode::Nonminimal),
            all_but_one_positive_last(3, RoutingMode::Nonminimal),
        ] {
            let set = alg.turn_set(3).unwrap();
            assert!(
                Cdg::from_turn_set(&mesh, &set).is_acyclic(),
                "{} turn set cyclic",
                alg.name()
            );
        }
    }

    #[test]
    fn minimal_delivery_on_3d_mesh() {
        let mesh = Mesh::new(vec![4, 4, 4]);
        for alg in [
            negative_first(3, RoutingMode::Minimal),
            all_but_one_negative_first(3, RoutingMode::Minimal),
            all_but_one_positive_last(3, RoutingMode::Minimal),
        ] {
            for (s, d) in [(0u32, 63u32), (63, 0), (21, 42), (42, 21), (7, 56)] {
                let (src, dst) = (NodeId(s), NodeId(d));
                let mut cur = src;
                let mut arrived = None;
                let mut hops = 0;
                while cur != dst {
                    let dirs = alg.route(&mesh, cur, dst, arrived);
                    assert!(!dirs.is_empty(), "{} stuck at {cur}", alg.name());
                    // Take the last offered direction to vary from mesh2d's
                    // first-direction walk.
                    let dir = dirs.iter().last().unwrap();
                    cur = mesh.neighbor(cur, dir).unwrap();
                    arrived = Some(dir);
                    hops += 1;
                }
                assert_eq!(hops, mesh.min_hops(src, dst), "{}", alg.name());
            }
        }
    }

    #[test]
    fn abonf_phase1_excludes_last_dimension() {
        let alg = all_but_one_negative_first(3, RoutingMode::Minimal);
        assert!(alg.phase1().contains(Direction::new(0, Sign::Minus)));
        assert!(alg.phase1().contains(Direction::new(1, Sign::Minus)));
        assert!(!alg.phase1().contains(Direction::new(2, Sign::Minus)));
        assert_eq!(alg.phase1().len(), 2);
    }

    #[test]
    fn abopl_phase2_is_positive_tail() {
        let alg = all_but_one_positive_last(3, RoutingMode::Minimal);
        let p2 = alg.phase2();
        assert_eq!(p2.len(), 2);
        assert!(p2.contains(Direction::new(1, Sign::Plus)));
        assert!(p2.contains(Direction::new(2, Sign::Plus)));
    }
}
