//! Minimal fully adaptive routing — the adaptiveness yardstick, *not*
//! deadlock free.

use turnroute_model::{RoutingFunction, TurnSet};
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// Minimal fully adaptive routing: every productive direction is always
/// legal, so every shortest path is available (`S_f` of Section 3.4).
///
/// **This function is not deadlock free** on meshes or k-ary n-cubes
/// without extra channels — it allows every turn, so its channel
/// dependency graph is cyclic. It exists as the adaptiveness yardstick for
/// [`turnroute_model::adaptiveness`], and to let the simulator *demonstrate*
/// wormhole deadlock (the paper's Figure 1 scenario).
///
/// # Example
///
/// ```
/// use turnroute_routing::FullyAdaptive;
/// use turnroute_model::RoutingFunction;
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let fa = FullyAdaptive::new();
/// let src = mesh.node_at_coords(&[4, 4]);
/// let dst = mesh.node_at_coords(&[2, 6]);
/// assert_eq!(fa.route(&mesh, src, dst, None).len(), 2); // west and north
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FullyAdaptive;

impl FullyAdaptive {
    /// Create the fully adaptive routing function.
    pub fn new() -> FullyAdaptive {
        FullyAdaptive
    }
}

impl RoutingFunction for FullyAdaptive {
    fn name(&self) -> &str {
        "fully-adaptive"
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        _arrived: Option<Direction>,
    ) -> DirSet {
        topo.productive_dirs(current, dest)
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        Some(TurnSet::all_ninety(num_dims))
    }
}

impl std::fmt::Display for FullyAdaptive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fully-adaptive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::Cdg;
    use turnroute_topology::Mesh;

    #[test]
    fn offers_all_productive_dirs() {
        let mesh = Mesh::new_2d(8, 8);
        let fa = FullyAdaptive::new();
        let src = mesh.node_at_coords(&[0, 0]);
        let dst = mesh.node_at_coords(&[7, 7]);
        assert_eq!(fa.route(&mesh, src, dst, None).len(), 2);
        assert!(fa.route(&mesh, dst, dst, None).is_empty());
    }

    #[test]
    fn is_not_deadlock_free() {
        // The whole point of the paper: unrestricted adaptivity deadlocks.
        let mesh = Mesh::new_2d(4, 4);
        let cdg = Cdg::from_routing(&mesh, &FullyAdaptive::new());
        assert!(cdg.find_cycle().is_some());
    }

    #[test]
    fn turn_set_allows_everything() {
        let set = FullyAdaptive::new().turn_set(2).expect("any dims");
        assert_eq!(set.prohibited_ninety().len(), 0);
    }
}
