//! The two-phase partially adaptive routing scheme underlying the paper's
//! named algorithms.

use crate::RoutingMode;
use turnroute_model::{RoutingFunction, Turn, TurnSet};
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// A two-phase partially adaptive routing function.
///
/// A packet first travels, adaptively, along *phase-1* directions until it
/// needs none of them, then travels adaptively along the remaining
/// *phase-2* directions. Turns from a phase-2 direction back into a
/// phase-1 direction are prohibited — that is the turn-model prohibition
/// pattern shared by the paper's algorithms:
///
/// | Algorithm | Phase-1 directions |
/// |-----------|--------------------|
/// | west-first (2D)          | `{west}` |
/// | north-last (2D)          | `{west, south, east}` |
/// | negative-first (nD)      | all negative directions |
/// | all-but-one-negative-first | negatives of dims `0..n-1` |
/// | all-but-one-positive-last  | negatives plus `+0` |
/// | p-cube (hypercube)       | all negative directions |
///
/// Use the constructors in [`crate::mesh2d`], [`crate::ndmesh`], and
/// [`crate::hypercube`] for the named algorithms, or build a custom phase
/// split with [`TwoPhase::new`].
///
/// In [`RoutingMode::Nonminimal`] mode the function additionally offers
/// every existing phase-1 channel while the packet is still in phase 1
/// (overshooting is legal and recoverable, because phase-2 directions can
/// undo any phase-1 wandering), which is the extra adaptiveness and fault
/// tolerance the paper credits nonminimal routing with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPhase {
    name: String,
    num_dims: usize,
    phase1: DirSet,
    mode: RoutingMode,
}

impl TwoPhase {
    /// Create a two-phase routing function over `num_dims` dimensions with
    /// the given phase-1 direction set.
    ///
    /// # Panics
    ///
    /// Panics if `phase1` contains directions outside the `2 * num_dims`
    /// directions of the network, is empty, or contains every direction
    /// (either phase being empty degenerates to full adaptivity, which
    /// deadlocks).
    pub fn new(
        name: impl Into<String>,
        num_dims: usize,
        phase1: DirSet,
        mode: RoutingMode,
    ) -> TwoPhase {
        let all = DirSet::all(num_dims);
        assert!(
            phase1.is_subset_of(all),
            "phase-1 directions must exist in a {num_dims}-dimensional network"
        );
        assert!(!phase1.is_empty(), "phase 1 must contain a direction");
        assert_ne!(phase1, all, "phase 2 must contain a direction");
        TwoPhase {
            name: name.into(),
            num_dims,
            phase1,
            mode,
        }
    }

    /// The phase-1 direction set.
    pub fn phase1(&self) -> DirSet {
        self.phase1
    }

    /// The phase-2 direction set (complement of phase 1).
    pub fn phase2(&self) -> DirSet {
        DirSet::all(self.num_dims).difference(self.phase1)
    }

    /// The routing mode this instance was built with.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// The phase-2 moves in nonminimal mode: productive phase-2
    /// directions, plus *recoverable* misroutes — an unproductive `d` is
    /// safe only if its opposite is also a phase-2 direction (the
    /// overshoot can be undone without re-entering phase 1) and some
    /// productive phase-2 work remains in another dimension (so the
    /// packet can turn off `d` without a prohibited 180-degree reversal).
    fn phase2_moves(&self, topo: &dyn Topology, current: NodeId, productive: DirSet) -> DirSet {
        let phase2 = self.phase2();
        let p2_productive = productive.intersection(phase2);
        let mut out = p2_productive;
        for d in phase2.iter() {
            if out.contains(d) || topo.neighbor(current, d).is_none() {
                continue;
            }
            let recoverable = phase2.contains(d.opposite());
            let can_turn_off = p2_productive.iter().any(|e| e.dim() != d.dim());
            if recoverable && can_turn_off {
                out.insert(d);
            }
        }
        out
    }

    /// Number of dimensions the function routes over.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }
}

impl RoutingFunction for TwoPhase {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == dest {
            return DirSet::empty();
        }
        let productive = topo.productive_dirs(current, dest);
        let phase2 = self.phase2();
        let p1_productive = productive.intersection(self.phase1);
        let in_phase2 = matches!(arrived, Some(d) if phase2.contains(d));
        let mut out = if in_phase2 {
            // Once traveling a phase-2 direction, phase 1 is locked out.
            match self.mode {
                RoutingMode::Minimal => productive.intersection(phase2),
                RoutingMode::Nonminimal => self.phase2_moves(topo, current, productive),
            }
        } else {
            match self.mode {
                RoutingMode::Minimal => {
                    if p1_productive.is_empty() {
                        productive.intersection(phase2)
                    } else {
                        p1_productive
                    }
                }
                RoutingMode::Nonminimal => {
                    // Wander anywhere in phase 1; enter phase 2 only once
                    // no phase-1 hop remains necessary.
                    let mut wander: DirSet = self
                        .phase1
                        .iter()
                        .filter(|&d| topo.neighbor(current, d).is_some())
                        .collect();
                    if p1_productive.is_empty() {
                        wander = wander.union(self.phase2_moves(topo, current, productive));
                    }
                    wander
                }
            }
        };
        // Exclude 180-degree reversals the turn rules do not allow; states
        // that would want them are unreachable under this function anyway.
        if let Some(arr) = arrived {
            let reversal_legal = self.mode == RoutingMode::Nonminimal
                && self.phase1.contains(arr)
                && phase2.contains(arr.opposite());
            if !reversal_legal {
                out.remove(arr.opposite());
            }
        }
        out
    }

    fn is_minimal(&self) -> bool {
        self.mode == RoutingMode::Minimal
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        if num_dims != self.num_dims {
            return None;
        }
        let mut set = TurnSet::all_ninety(num_dims);
        let phase2 = self.phase2();
        for t in Turn::all_ninety(num_dims) {
            if phase2.contains(t.from_dir()) && self.phase1.contains(t.to_dir()) {
                set.prohibit(t);
            }
        }
        if self.mode == RoutingMode::Nonminimal {
            // Reversals out of phase 1 into phase 2 are legal (Figure 8c).
            for t in Turn::all_one_eighty(num_dims) {
                if self.phase1.contains(t.from_dir()) && phase2.contains(t.to_dir()) {
                    set.allow(t);
                }
            }
        }
        Some(set)
    }
}

impl std::fmt::Display for TwoPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Mesh, Sign};

    fn negatives(n: usize) -> DirSet {
        Direction::all(n)
            .filter(|d| d.sign() == Sign::Minus)
            .collect()
    }

    #[test]
    fn minimal_routes_phase1_first() {
        let mesh = Mesh::new_2d(8, 8);
        let nf = TwoPhase::new("nf", 2, negatives(2), RoutingMode::Minimal);
        let src = mesh.node_at_coords(&[4, 4]);
        // Destination south-east: south (phase 1) must come before east.
        let dst = mesh.node_at_coords(&[6, 2]);
        let dirs = nf.route(&mesh, src, dst, None);
        assert_eq!(dirs, DirSet::single(Direction::SOUTH));
        // After the southward hops are done, east opens up.
        let mid = mesh.node_at_coords(&[4, 2]);
        let dirs = nf.route(&mesh, mid, dst, Some(Direction::SOUTH));
        assert_eq!(dirs, DirSet::single(Direction::EAST));
    }

    #[test]
    fn minimal_is_fully_adaptive_within_a_phase() {
        let mesh = Mesh::new_2d(8, 8);
        let nf = TwoPhase::new("nf", 2, negatives(2), RoutingMode::Minimal);
        let src = mesh.node_at_coords(&[4, 4]);
        let dst = mesh.node_at_coords(&[2, 1]); // south-west: both phase 1
        let dirs = nf.route(&mesh, src, dst, None);
        assert!(dirs.contains(Direction::WEST) && dirs.contains(Direction::SOUTH));
    }

    #[test]
    fn phase2_arrival_locks_out_phase1() {
        let mesh = Mesh::new_2d(8, 8);
        let nf = TwoPhase::new("nf", 2, negatives(2), RoutingMode::Minimal);
        let cur = mesh.node_at_coords(&[4, 4]);
        let dst = mesh.node_at_coords(&[6, 2]); // needs east and south
                                                // Arrived traveling east (phase 2): south is forbidden now.
        let dirs = nf.route(&mesh, cur, dst, Some(Direction::EAST));
        assert_eq!(dirs, DirSet::single(Direction::EAST));
    }

    #[test]
    fn route_empty_at_destination() {
        let mesh = Mesh::new_2d(4, 4);
        let nf = TwoPhase::new("nf", 2, negatives(2), RoutingMode::Minimal);
        let node = mesh.node_at_coords(&[1, 1]);
        assert!(nf.route(&mesh, node, node, None).is_empty());
    }

    #[test]
    fn nonminimal_allows_phase1_overshoot() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = TwoPhase::new(
            "wf",
            2,
            DirSet::single(Direction::WEST),
            RoutingMode::Nonminimal,
        );
        let src = mesh.node_at_coords(&[4, 4]);
        let dst = mesh.node_at_coords(&[6, 4]); // due east
        let dirs = wf.route(&mesh, src, dst, None);
        // May overshoot west (phase 1 wandering), proceed east, or
        // misroute north/south (recoverable within phase 2 while east
        // hops remain).
        assert!(dirs.contains(Direction::WEST));
        assert!(dirs.contains(Direction::EAST));
        assert!(dirs.contains(Direction::NORTH));
        assert!(dirs.contains(Direction::SOUTH));
    }

    #[test]
    fn nonminimal_phase2_misroutes_are_recoverable_only() {
        let mesh = Mesh::new_2d(8, 8);
        // Negative-first phase 2 is {east, north}: neither direction's
        // opposite is in phase 2, so no phase-2 misroutes are offered.
        let nf = TwoPhase::new("nf", 2, negatives(2), RoutingMode::Nonminimal);
        let cur = mesh.node_at_coords(&[4, 4]);
        let dst = mesh.node_at_coords(&[6, 6]);
        let dirs = nf.route(&mesh, cur, dst, Some(Direction::EAST));
        assert_eq!(dirs.len(), 2); // east + north, both productive
                                   // West-first with the eastward work finished: a lone northward
                                   // leg must not be padded with unrecoverable east misroutes, and
                                   // north/south misroutes need productive work in another dimension.
        let wf = TwoPhase::new(
            "wf",
            2,
            DirSet::single(Direction::WEST),
            RoutingMode::Nonminimal,
        );
        let cur = mesh.node_at_coords(&[6, 4]);
        let dst = mesh.node_at_coords(&[6, 6]);
        let dirs = wf.route(&mesh, cur, dst, Some(Direction::EAST));
        assert_eq!(dirs, DirSet::single(Direction::NORTH));
    }

    #[test]
    fn nonminimal_forces_phase1_when_needed() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = TwoPhase::new(
            "wf",
            2,
            DirSet::single(Direction::WEST),
            RoutingMode::Nonminimal,
        );
        let src = mesh.node_at_coords(&[4, 4]);
        let dst = mesh.node_at_coords(&[2, 6]); // north-west
        let dirs = wf.route(&mesh, src, dst, None);
        assert_eq!(dirs, DirSet::single(Direction::WEST));
    }

    #[test]
    fn turn_set_prohibits_phase2_to_phase1() {
        let nf = TwoPhase::new("nf", 2, negatives(2), RoutingMode::Minimal);
        let set = nf.turn_set(2).expect("native dims");
        assert!(!set.is_allowed(Direction::NORTH, Direction::WEST));
        assert!(!set.is_allowed(Direction::EAST, Direction::SOUTH));
        assert!(set.is_allowed(Direction::WEST, Direction::NORTH));
        assert_eq!(set.prohibited_ninety().len(), 2);
        assert!(nf.turn_set(3).is_none());
    }

    #[test]
    fn nonminimal_turn_set_allows_reversal_out_of_phase1() {
        let wf = TwoPhase::new(
            "wf",
            2,
            DirSet::single(Direction::WEST),
            RoutingMode::Nonminimal,
        );
        let set = wf.turn_set(2).expect("native dims");
        assert!(set.is_allowed(Direction::WEST, Direction::EAST)); // Figure 8c
        assert!(!set.is_allowed(Direction::EAST, Direction::WEST));
    }

    #[test]
    #[should_panic(expected = "phase 2 must contain")]
    fn rejects_all_directions_in_phase1() {
        let _ = TwoPhase::new("bad", 2, DirSet::all(2), RoutingMode::Minimal);
    }

    #[test]
    fn display_includes_mode() {
        let nf = TwoPhase::new("negative-first", 2, negatives(2), RoutingMode::Minimal);
        assert_eq!(nf.to_string(), "negative-first (minimal)");
        assert_eq!(nf.phase1(), negatives(2));
        assert_eq!(
            nf.phase2(),
            negatives(2).iter().map(|d| d.opposite()).collect()
        );
        assert_eq!(nf.num_dims(), 2);
        assert_eq!(nf.mode(), RoutingMode::Minimal);
    }
}
