//! Fault-aware routing: wrap any turn-model algorithm so it routes around
//! a static fault pattern.
//!
//! [`FaultAware`] is the static (routing-function-level) counterpart of the
//! simulator's per-cycle fault masking. It filters the wrapped algorithm's
//! offered directions against a [`FaultSet`], removing outputs that cross a
//! failed link or enter a failed node, and — when the primary set empties —
//! falls back to *any* healthy direction the algorithm's turn set allows
//! from the current arrival direction, a misroute around the fault.
//!
//! # Deadlock safety
//!
//! Every direction `FaultAware` offers, primary or fallback, is legal under
//! the wrapped algorithm's declared turn set. The channel dependency graph
//! of the wrapper is therefore a subgraph of the turn set's CDG, which the
//! turn model proves acyclic — so wrapping cannot introduce deadlock, for
//! any fault pattern. `turnroute_model::verifier::verify_under_faults`
//! checks the same property mechanically per pattern.

use turnroute_model::{RoutingFunction, TurnSet};
use turnroute_topology::{DirSet, Direction, FaultSet, NodeId, Topology};

/// A routing function filtered through a static fault pattern, with a
/// turn-legal misroute fallback when every primary output is failed.
///
/// # Example
///
/// ```
/// use turnroute_routing::{mesh2d, FaultAware, RoutingMode};
/// use turnroute_model::RoutingFunction;
/// use turnroute_topology::{Direction, FaultSet, Mesh, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let mut faults = FaultSet::new(&mesh);
/// let src = mesh.node_at_coords(&[1, 1]);
/// faults.fail_link(&mesh, src, Direction::EAST);
///
/// let routed = FaultAware::new(mesh2d::xy(), &mesh, faults);
/// // xy would go east; the fault-aware wrapper detours instead of
/// // offering the dead channel.
/// let dirs = routed.route(&mesh, src, mesh.node_at_coords(&[3, 1]), None);
/// assert!(!dirs.contains(Direction::EAST));
/// assert!(!dirs.is_empty());
/// ```
pub struct FaultAware<R> {
    inner: R,
    faults: FaultSet,
    turns: Option<TurnSet>,
    name: String,
}

impl<R: RoutingFunction> FaultAware<R> {
    /// Wrap `inner` so its routes avoid the failures in `faults`.
    ///
    /// The turn set is resolved once, against `topo.num_dims()`.
    pub fn new(inner: R, topo: &dyn Topology, faults: FaultSet) -> FaultAware<R> {
        FaultAware {
            turns: inner.turn_set(topo.num_dims()),
            name: format!("{}+fault-aware", inner.name()),
            inner,
            faults,
        }
    }

    /// The wrapped routing function.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The fault pattern this wrapper routes around.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    fn healthy(&self, topo: &dyn Topology, current: NodeId, dir: Direction) -> bool {
        match topo.neighbor(current, dir) {
            Some(next) => {
                !self.faults.link_failed(topo.channel_slot(current, dir))
                    && !self.faults.node_failed(next)
            }
            None => false,
        }
    }
}

impl<R: RoutingFunction> RoutingFunction for FaultAware<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        if current == dest || self.faults.node_failed(current) || self.faults.node_failed(dest) {
            return DirSet::empty();
        }
        let legal = match &self.turns {
            Some(set) => set.legal_outputs(arrived),
            None => DirSet::all(topo.num_dims()),
        };
        let primary: DirSet = self
            .inner
            .route(topo, current, dest, arrived)
            .intersection(legal)
            .iter()
            .filter(|&d| self.healthy(topo, current, d))
            .collect();
        if !primary.is_empty() || self.turns.is_none() {
            return primary;
        }
        // Misroute around the fault: any turn-legal healthy direction. The
        // caller (simulator or walk) bounds how long a packet may drift.
        legal
            .iter()
            .filter(|&d| self.healthy(topo, current, d))
            .collect()
    }

    fn is_minimal(&self) -> bool {
        // Fallback misroutes may move away from the destination.
        false
    }

    fn turn_set(&self, num_dims: usize) -> Option<TurnSet> {
        self.inner.turn_set(num_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mesh2d, RoutingMode};
    use turnroute_model::verifier::verify_under_faults;
    use turnroute_topology::Mesh;

    #[test]
    fn empty_fault_set_routes_like_inner_filtered_by_turns() {
        let mesh = Mesh::new_2d(5, 5);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let wrapped = FaultAware::new(
            mesh2d::west_first(RoutingMode::Minimal),
            &mesh,
            FaultSet::new(&mesh),
        );
        for s in 0..25u32 {
            for d in 0..25u32 {
                if s == d {
                    continue;
                }
                let (s, d) = (NodeId(s), NodeId(d));
                // At injection (arrived None) the turn filter is vacuous.
                assert_eq!(
                    wrapped.route(&mesh, s, d, None),
                    wf.route(&mesh, s, d, None)
                );
            }
        }
    }

    #[test]
    fn detours_around_failed_link() {
        let mesh = Mesh::new_2d(5, 5);
        let mut faults = FaultSet::new(&mesh);
        let src = mesh.node_at_coords(&[1, 2]);
        faults.fail_link(&mesh, src, Direction::EAST);
        let routed = FaultAware::new(mesh2d::west_first(RoutingMode::Minimal), &mesh, faults);
        // Destination due east: the minimal move is the failed channel, so
        // the fallback offers a turn-legal detour instead.
        let dirs = routed.route(&mesh, src, mesh.node_at_coords(&[3, 2]), None);
        assert!(!dirs.contains(Direction::EAST));
        assert!(!dirs.is_empty(), "fallback must offer a detour");
        assert!(!routed.is_minimal());
        assert!(routed.name().contains("fault-aware"));
    }

    #[test]
    fn greedy_walk_delivers_around_single_fault() {
        // A single failed eastward link: every pair must still deliver
        // within a generous hop bound when we walk preferring productive
        // moves.
        let mesh = Mesh::new_2d(5, 5);
        let mut faults = FaultSet::new(&mesh);
        faults.fail_link(&mesh, mesh.node_at_coords(&[2, 2]), Direction::EAST);
        let routed = FaultAware::new(mesh2d::west_first(RoutingMode::Minimal), &mesh, faults);
        let limit = 8 * 25;
        for s in 0..25u32 {
            for d in 0..25u32 {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId(s), NodeId(d));
                let mut cur = src;
                let mut arrived = None;
                let mut hops = 0;
                while cur != dst {
                    let dirs = routed.route(&mesh, cur, dst, arrived);
                    // Prefer a productive direction, else take any.
                    let productive = mesh.productive_dirs(cur, dst);
                    let step = dirs
                        .iter()
                        .find(|&x| productive.contains(x))
                        .or_else(|| dirs.iter().next())
                        .unwrap_or_else(|| panic!("dead end at {cur} for {src}->{dst}"));
                    cur = mesh.neighbor(cur, step).unwrap();
                    arrived = Some(step);
                    hops += 1;
                    assert!(hops <= limit, "walk {src}->{dst} exceeded {limit} hops");
                }
            }
        }
    }

    #[test]
    fn wrapper_matches_verifier_model() {
        // The static wrapper and the verifier's internal mask embody the
        // same relation: the verifier must certify the wrapper's inner
        // algorithm deadlock free under the same pattern.
        let mesh = Mesh::new_2d(6, 6);
        let mut faults = FaultSet::new(&mesh);
        faults.fail_link(&mesh, mesh.node_at_coords(&[3, 3]), Direction::NORTH);
        faults.fail_node(&mesh, mesh.node_at_coords(&[1, 4]));
        let algos: [Box<dyn RoutingFunction>; 4] = [
            Box::new(mesh2d::xy()),
            Box::new(mesh2d::west_first(RoutingMode::Minimal)),
            Box::new(mesh2d::north_last(RoutingMode::Minimal)),
            Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
        ];
        for algo in &algos {
            let report = verify_under_faults(&mesh, algo, &faults);
            assert!(report.all_ok(), "{report}");
        }
    }
}
