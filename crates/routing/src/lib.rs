//! Concrete wormhole routing algorithms from the turn-model paper.
//!
//! The partially adaptive algorithms of Sections 3–5 — west-first,
//! north-last, negative-first, all-but-one-negative-first (ABONF),
//! all-but-one-positive-last (ABOPL), and p-cube — are all instances of a
//! single *two-phase* scheme ([`TwoPhase`]): a set of phase-1 directions is
//! routed (adaptively) before the remaining phase-2 directions, and every
//! turn from a phase-2 direction back into a phase-1 direction is
//! prohibited. The nonadaptive baselines (xy, e-cube) are
//! [`DimensionOrder`] routing. Torus adaptations of Section 4.2 live in
//! [`torus`], and the hexagonal-mesh extension the paper sketches as
//! future work lives in [`hex`].
//!
//! # Example
//!
//! ```
//! use turnroute_routing::mesh2d;
//! use turnroute_routing::RoutingMode;
//! use turnroute_model::RoutingFunction;
//! use turnroute_topology::{Mesh, Topology, Direction};
//!
//! let mesh = Mesh::new_2d(8, 8);
//! let wf = mesh2d::west_first(RoutingMode::Minimal);
//! let src = mesh.node_at_coords(&[5, 5]);
//! let dst = mesh.node_at_coords(&[2, 7]); // north-west of src
//! // Westward hops must come first: the only legal move is west.
//! let dirs = wf.route(&mesh, src, dst, None);
//! assert_eq!(dirs.len(), 1);
//! assert!(dirs.contains(Direction::WEST));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dimension_order;
mod fault;
mod fully_adaptive;
pub mod hex;
pub mod hypercube;
pub mod mesh2d;
pub mod ndmesh;
pub mod torus;
mod two_phase;

pub use dimension_order::DimensionOrder;
pub use fault::FaultAware;
pub use fully_adaptive::FullyAdaptive;
pub use two_phase::TwoPhase;

// Re-exported so downstream crates name one routing vocabulary.
pub use turnroute_model::RoutingFunction;

/// Whether an algorithm offers only shortest-path moves or also the
/// nonminimal moves the paper allows for extra adaptiveness and fault
/// tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingMode {
    /// Offer only moves that reduce the distance to the destination.
    Minimal,
    /// Additionally offer legal misroutes (e.g. overshooting west under
    /// west-first). The simulator bounds misroutes per packet to preserve
    /// progress.
    Nonminimal,
}

impl std::fmt::Display for RoutingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingMode::Minimal => write!(f, "minimal"),
            RoutingMode::Nonminimal => write!(f, "nonminimal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(RoutingMode::Minimal.to_string(), "minimal");
        assert_eq!(RoutingMode::Nonminimal.to_string(), "nonminimal");
    }
}
