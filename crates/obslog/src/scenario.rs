//! The canonical seeded recording scenario `turnstat`, the tests, and the
//! CI gate all share.
//!
//! One fixed shape — a 2D mesh under west-first minimal routing and
//! uniform traffic, with one scheduled transient link fault so fault
//! transitions appear in the log — parameterized only by seed and a
//! quick/full size switch. Keeping the scenario in one place is what lets
//! the CI gate assert byte-identity between independently recorded runs.

use crate::aggregates::ReplayableAggregates;
use crate::log::LogObserver;
use turnroute_model::RoutingFunction;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{FaultPlan, Sim, SimConfig, SimReport};
use turnroute_topology::{Direction, Mesh, NodeId};
use turnroute_traffic::Uniform;

/// The canonical scenario's inputs, ready to hand to the engine.
pub struct Scenario {
    /// The mesh.
    pub mesh: Mesh,
    /// West-first minimal routing.
    pub routing: Box<dyn RoutingFunction>,
    /// Uniform traffic.
    pub pattern: Uniform,
    /// Full configuration (seed, sizes, fault plan).
    pub cfg: SimConfig,
}

/// Build the canonical scenario for `seed`. `quick` shrinks the mesh and
/// the cycle counts for tests and CI; both sizes schedule one transient
/// link fault so the log exercises fault events.
pub fn canonical(seed: u64, quick: bool) -> Scenario {
    let (side, warmup, measure, drain, fault_node, fault_start, fault_len) = if quick {
        (6u16, 100u64, 400u64, 400u64, 14u32, 150u64, 100u64)
    } else {
        (8, 200, 1_000, 800, 27, 300, 200)
    };
    Scenario {
        mesh: Mesh::new_2d(side, side),
        routing: Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        pattern: Uniform::new(),
        cfg: SimConfig::builder()
            .injection_rate(0.08)
            .seed(seed)
            .warmup_cycles(warmup)
            .measure_cycles(measure)
            .drain_cycles(drain)
            .fault_plan(FaultPlan::new().transient_link(
                NodeId(fault_node),
                Direction::EAST,
                fault_start,
                fault_len,
            ))
            .build(),
    }
}

/// The frame cadence the canonical scenario records at, by size.
pub fn frame_cadence(quick: bool) -> u64 {
    if quick {
        100
    } else {
        250
    }
}

/// Everything one recorded run produces.
pub struct Recording {
    /// The sealed binary log (telemetry frames included).
    pub bytes: Vec<u8>,
    /// The aggregate stack that rode the run live.
    pub aggregates: ReplayableAggregates,
    /// Telemetry frames sealed live during the run.
    pub frames: Vec<turnroute_sim::TelemetryFrame>,
    /// Early-warning alerts raised live during the run.
    pub alerts: Vec<turnroute_sim::Alert>,
    /// The engine's own report.
    pub report: SimReport,
}

/// Run the canonical scenario and record it: live aggregates plus the
/// sealed log, with telemetry frames at the canonical cadence.
pub fn record(seed: u64, quick: bool) -> Recording {
    let s = canonical(seed, quick);
    let layout = ChannelLayout::for_topology(&s.mesh);
    let log = LogObserver::start_with_frames(
        &s.mesh,
        &*s.routing,
        &s.pattern,
        &s.cfg,
        "sim",
        frame_cadence(quick),
    );
    let live = ReplayableAggregates::new(layout);
    let mut sim = Sim::with_observer(&s.mesh, &*s.routing, &s.pattern, s.cfg, (log, live));
    let report = sim.run();
    let (log, mut aggregates) = sim.into_observer();
    // Frames and alerts are sealed inside the recorder, not fired through
    // the engine's hook chain — feed them to the live aggregates so its
    // counters match what a replay of the log reproduces.
    use turnroute_sim::SimObserver;
    for f in log.frames() {
        aggregates.on_frame(f.window_end, f);
    }
    for a in log.alerts() {
        aggregates.on_alert(a.cycle, a);
    }
    Recording {
        frames: log.frames().to_vec(),
        alerts: log.alerts().to_vec(),
        bytes: log.finish(),
        aggregates,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::verify_bytes;

    #[test]
    fn canonical_recording_is_reproducible_and_valid() {
        let a = record(7, true);
        let b = record(7, true);
        assert_eq!(a.bytes, b.bytes, "same (config, seed) => identical logs");
        assert_eq!(a.aggregates.snapshot_json(), b.aggregates.snapshot_json());
        let summary = verify_bytes(&a.bytes).expect("valid");
        assert_eq!(summary.header.seed, 7);
        assert_eq!(summary.header.fault_events, 2);
        assert!(summary.count("fault") >= 2);
        assert!(a.report.delivered_packets > 0);
        // Telemetry frames ride the canonical log: one per cadence window,
        // and the live aggregates agree with the stream's event counts.
        assert_eq!(summary.count("frame"), a.frames.len() as u64);
        assert!(!a.frames.is_empty());
        assert_eq!(summary.count("blame"), summary.count("deliver"));
        assert_eq!(a.aggregates.frames_seen(), a.frames.len() as u64);
        // A replayed aggregate stack matches the live one exactly, frames
        // and blame included.
        let s = canonical(7, true);
        let mut replayed = ReplayableAggregates::new(ChannelLayout::for_topology(&s.mesh));
        crate::replay::replay(&a.bytes, &mut replayed).expect("replays");
        assert_eq!(a.aggregates.snapshot_json(), replayed.snapshot_json());
        assert!(replayed.blamed_packets() > 0);
        assert_eq!(replayed.blame.total(), replayed.latency.sum());
    }

    #[test]
    fn mid_run_snapshot_restore_keeps_log_byte_identical() {
        // The engine's snapshot boundary excludes the observer by design:
        // a snapshot/restore round trip mid-run must leave the recorded
        // TTRL stream and the report byte-identical to an undisturbed
        // same-seed run.
        let a = record(9, true);
        let s = canonical(9, true);
        let log = LogObserver::start_with_frames(
            &s.mesh,
            &*s.routing,
            &s.pattern,
            &s.cfg,
            "sim",
            frame_cadence(true),
        );
        let mut sim = Sim::with_observer(&s.mesh, &*s.routing, &s.pattern, s.cfg, log);
        sim.set_measure_window(100, 500);
        for _ in 0..450 {
            sim.step();
        }
        let snap = sim.snapshot();
        sim.restore(&snap);
        assert_eq!(sim.snapshot(), snap, "restore round trip is lossless");
        while sim.now() < 900 && !sim.deadlocked() {
            sim.step();
        }
        let report = sim.report();
        let bytes = sim.into_observer().finish();
        assert_eq!(report, a.report, "snapshot/restore perturbed the report");
        assert_eq!(bytes, a.bytes, "snapshot/restore perturbed the TTRL log");
    }
}
