//! Binary codec for telemetry frames embedded in the event log.
//!
//! A frame event is framed as `FRAME tag | payload_len varint | payload`,
//! and the payload itself starts with a schema version varint, so the
//! frame layout can evolve without bumping the whole log format. Decoding
//! is *strict*: the payload must parse completely and exactly — a declared
//! length that disagrees with the content by even one byte is rejected.
//! That strictness is load-bearing: the `turnstat frames --inject-bad`
//! self-test tampers with a frame's declared length behind a re-sealed
//! checksum, and only this check can catch it.
//!
//! The latency sketch rides along as its exact internal representation
//! (`sum`, `min`, `max`, non-empty raw buckets), so a decoded frame
//! compares equal to the sealed one — quantiles included — which is what
//! lets `turnstat frames --check` demand decoded == re-derived.

use crate::log::write_varint;
use turnroute_sim::obs::{ChannelWindow, StreamingHistogram};
use turnroute_sim::TelemetryFrame;

/// Current frame payload schema version.
pub const FRAME_VERSION: u64 = 1;

/// Serialize `frame` as a frame payload (version varint first, no outer
/// length prefix — the log writer adds that).
pub fn encode_frame_payload(frame: &TelemetryFrame) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + 8 * frame.channels.len());
    write_varint(&mut p, FRAME_VERSION);
    for v in [
        frame.seq,
        frame.window_start,
        frame.window_end,
        frame.injected_packets,
        frame.delivered_packets,
        frame.dropped_packets,
        frame.in_flight_packets,
        frame.open_heal_epochs,
    ] {
        write_varint(&mut p, v);
    }
    write_varint(&mut p, frame.latency.sum());
    write_varint(&mut p, frame.latency.min());
    write_varint(&mut p, frame.latency.max());
    let pairs: Vec<(u64, u64)> = frame.latency.raw_buckets().collect();
    write_varint(&mut p, pairs.len() as u64);
    for (bucket, count) in pairs {
        write_varint(&mut p, bucket);
        write_varint(&mut p, count);
    }
    write_varint(&mut p, frame.channels.len() as u64);
    for c in &frame.channels {
        write_varint(&mut p, c.slot as u64);
        write_varint(&mut p, c.util);
        write_varint(&mut p, c.blocked);
    }
    p
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn varint(&mut self) -> Result<u64, String> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "frame payload ends mid-varint".to_string())?;
            self.pos += 1;
            if shift >= 64 {
                return Err("frame payload varint overflows u64".to_string());
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }
}

/// Decode a frame payload produced by [`encode_frame_payload`].
///
/// Strict: every byte of `bytes` must be consumed, and the schema version
/// must be the current one. Any disagreement between the log's declared
/// payload length and the actual content is an error, never a guess.
pub fn decode_frame_payload(bytes: &[u8]) -> Result<TelemetryFrame, String> {
    let mut r = Reader { bytes, pos: 0 };
    let version = r.varint()?;
    if version != FRAME_VERSION {
        return Err(format!("unsupported frame version {version}"));
    }
    let seq = r.varint()?;
    let window_start = r.varint()?;
    let window_end = r.varint()?;
    let injected_packets = r.varint()?;
    let delivered_packets = r.varint()?;
    let dropped_packets = r.varint()?;
    let in_flight_packets = r.varint()?;
    let open_heal_epochs = r.varint()?;
    let (sum, min, max) = (r.varint()?, r.varint()?, r.varint()?);
    let n_pairs = r.varint()? as usize;
    let mut pairs = Vec::with_capacity(n_pairs.min(4096));
    for _ in 0..n_pairs {
        pairs.push((r.varint()?, r.varint()?));
    }
    let latency = StreamingHistogram::from_raw(sum, min, max, &pairs);
    let n_channels = r.varint()? as usize;
    let mut channels = Vec::with_capacity(n_channels.min(4096));
    for _ in 0..n_channels {
        channels.push(ChannelWindow {
            slot: r.varint()? as usize,
            util: r.varint()?,
            blocked: r.varint()?,
        });
    }
    if r.pos != bytes.len() {
        return Err(format!(
            "frame payload length mismatch: {} bytes declared, {} consumed",
            bytes.len(),
            r.pos
        ));
    }
    Ok(TelemetryFrame {
        seq,
        window_start,
        window_end,
        injected_packets,
        delivered_packets,
        dropped_packets,
        in_flight_packets,
        open_heal_epochs,
        latency,
        channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetryFrame {
        let mut latency = StreamingHistogram::new();
        for v in [3u64, 40, 40, 1_000] {
            latency.record(v);
        }
        TelemetryFrame {
            seq: 4,
            window_start: 400,
            window_end: 499,
            injected_packets: 12,
            delivered_packets: 9,
            dropped_packets: 1,
            in_flight_packets: 30,
            open_heal_epochs: 2,
            latency,
            channels: vec![
                ChannelWindow {
                    slot: 3,
                    util: 17,
                    blocked: 0,
                },
                ChannelWindow {
                    slot: 90,
                    util: 2,
                    blocked: 88,
                },
            ],
        }
    }

    #[test]
    fn frame_payload_round_trips_exactly() {
        let f = sample();
        let p = encode_frame_payload(&f);
        let back = decode_frame_payload(&p).expect("decodes");
        assert_eq!(back, f);
        assert_eq!(back.latency.p90(), f.latency.p90());
        // An empty frame round-trips too.
        let empty = TelemetryFrame {
            latency: StreamingHistogram::new(),
            channels: Vec::new(),
            ..f
        };
        let back = decode_frame_payload(&encode_frame_payload(&empty)).expect("decodes");
        assert_eq!(back, empty);
    }

    #[test]
    fn length_disagreement_is_rejected() {
        let p = encode_frame_payload(&sample());
        // One byte short and one byte long must both fail the strict
        // consume-everything check (or the varint reader).
        assert!(decode_frame_payload(&p[..p.len() - 1]).is_err());
        let mut long = p.clone();
        long.push(0);
        assert!(decode_frame_payload(&long)
            .unwrap_err()
            .contains("length mismatch"));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut p = encode_frame_payload(&sample());
        p[0] = 9;
        assert!(decode_frame_payload(&p)
            .unwrap_err()
            .contains("unsupported frame version"));
    }
}
