//! The replay-equivalence aggregate stack.
//!
//! [`ReplayableAggregates`] derives everything it reports *purely from
//! observer hooks* — never from engine internals — which is exactly what
//! makes it replayable: drive it live beside a [`crate::LogObserver`] or
//! re-drive it from the recorded log, and it lands in the same state, byte
//! for byte. It carries the PR 1 collectors (latency histogram, channel
//! heatmap, turn census) plus hook-derived counters.

use crate::artifact::JsonObject;
use crate::metrics::{self, Registry};
use turnroute_model::Turn;
use turnroute_sim::obs::{
    ChannelHeatmap, ChannelLayout, DeadlockSnapshot, StallReason, StreamingHistogram, TurnCensus,
};
use turnroute_sim::{Alert, BlameTotals, PacketBlame, PacketId, SimObserver, TelemetryFrame};
use turnroute_topology::{Direction, NodeId};

/// Hook-derived aggregates that replay bit-identically from a log.
#[derive(Debug, Clone)]
pub struct ReplayableAggregates {
    /// Per-channel load and stall-attribution heatmap.
    pub heatmap: ChannelHeatmap,
    /// Turns taken, by direction pair.
    pub census: TurnCensus,
    /// Latency of every delivered packet (creation to tail consumption).
    pub latency: StreamingHistogram,
    /// Hops of every delivered packet.
    pub hops: StreamingHistogram,
    /// Latency blame summed over every blamed delivery.
    pub blame: BlameTotals,
    injected_packets: u64,
    injected_flits: u64,
    sourced_flits: u64,
    delivered_packets: u64,
    consumed_flits: u64,
    misroutes: u64,
    faults: u64,
    drops: u64,
    unroutable_drops: u64,
    purges: u64,
    blamed_packets: u64,
    frames: u64,
    alerts: u64,
    deadlocked: bool,
    last_cycle: u64,
}

impl ReplayableAggregates {
    /// An empty stack over `layout`'s channel numbering.
    pub fn new(layout: ChannelLayout) -> ReplayableAggregates {
        ReplayableAggregates {
            heatmap: ChannelHeatmap::new(layout),
            census: TurnCensus::new(layout.num_dims),
            latency: StreamingHistogram::new(),
            hops: StreamingHistogram::new(),
            blame: BlameTotals::default(),
            injected_packets: 0,
            injected_flits: 0,
            sourced_flits: 0,
            delivered_packets: 0,
            consumed_flits: 0,
            misroutes: 0,
            faults: 0,
            drops: 0,
            unroutable_drops: 0,
            purges: 0,
            blamed_packets: 0,
            frames: 0,
            alerts: 0,
            deadlocked: false,
            last_cycle: 0,
        }
    }

    /// Packets that started streaming into the network.
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Packets whose tail was consumed at its destination.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Whether a deadlock snapshot was observed.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// Final cycle the stack saw (via `on_cycle_end`).
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    /// Deliveries that carried a latency-blame decomposition.
    pub fn blamed_packets(&self) -> u64 {
        self.blamed_packets
    }

    /// Telemetry frames observed (decoded from a replayed log, or fired
    /// live by a frame-enabled recorder sharing the run).
    pub fn frames_seen(&self) -> u64 {
        self.frames
    }

    /// Early-warning alerts observed.
    pub fn alerts_seen(&self) -> u64 {
        self.alerts
    }

    /// The whole stack as one canonical, key-ordered JSON artifact — the
    /// byte string `turnstat verify` compares between live and replayed
    /// runs.
    pub fn snapshot_json(&self) -> String {
        let mut counters = JsonObject::new();
        counters
            .set("alerts", self.alerts.to_string())
            .set("blamed_packets", self.blamed_packets.to_string())
            .set("consumed_flits", self.consumed_flits.to_string())
            .set("delivered_packets", self.delivered_packets.to_string())
            .set("drops", self.drops.to_string())
            .set("faults", self.faults.to_string())
            .set("frames", self.frames.to_string())
            .set("injected_flits", self.injected_flits.to_string())
            .set("injected_packets", self.injected_packets.to_string())
            .set("misroutes", self.misroutes.to_string())
            .set("purges", self.purges.to_string())
            .set("sourced_flits", self.sourced_flits.to_string())
            .set("unroutable_drops", self.unroutable_drops.to_string());
        let mut blame = JsonObject::new();
        blame
            .set("blocked_cycles", self.blame.blocked_cycles.to_string())
            .set("misroute_cycles", self.blame.misroute_cycles.to_string())
            .set("queue_cycles", self.blame.queue_cycles.to_string())
            .set("service_cycles", self.blame.service_cycles.to_string());
        let mut root = JsonObject::new();
        root.set("blame", blame.render())
            .set("census", self.census.to_json())
            .set("counters", counters.render())
            .set("deadlocked", self.deadlocked.to_string())
            .set("heatmap", self.heatmap.to_json())
            .set("hops", self.hops.to_json())
            .set("last_cycle", self.last_cycle.to_string())
            .set("latency", self.latency.to_json());
        root.render()
    }

    /// Export the stack onto a fresh metrics [`Registry`].
    pub fn to_registry(&self) -> Registry {
        let mut reg = Registry::new();
        metrics::export_heatmap(&mut reg, &self.heatmap);
        metrics::export_census(&mut reg, &self.census);
        metrics::export_latency(&mut reg, &self.latency);
        for (name, help, v) in [
            (
                "turnroute_injected_packets_total",
                "Packets that started streaming into the network",
                self.injected_packets,
            ),
            (
                "turnroute_delivered_packets_total",
                "Packets whose tail was consumed at its destination",
                self.delivered_packets,
            ),
            (
                "turnroute_misroutes_total",
                "Unproductive hops taken",
                self.misroutes,
            ),
            (
                "turnroute_fault_transitions_total",
                "Channel fault state changes observed",
                self.faults,
            ),
            (
                "turnroute_dropped_packets_total",
                "Packets dropped after exhausting lifetime and retries",
                self.drops,
            ),
            (
                "turnroute_purges_total",
                "Packets purged from the network",
                self.purges,
            ),
            (
                "turnroute_frames_total",
                "Telemetry frames observed",
                self.frames,
            ),
            (
                "turnroute_alerts_total",
                "Early-warning alerts observed",
                self.alerts,
            ),
        ] {
            reg.counter_add(name, help, &[], v);
        }
        for (component, v) in [
            ("queue", self.blame.queue_cycles),
            ("blocked", self.blame.blocked_cycles),
            ("service", self.blame.service_cycles),
            ("misroute", self.blame.misroute_cycles),
        ] {
            reg.counter_add(
                "turnroute_blame_cycles_total",
                "Latency blame attributed to delivered packets, by component",
                &[("component", component)],
                v,
            );
        }
        reg.gauge_set(
            "turnroute_deadlocked",
            "1 when a deadlock snapshot was observed",
            &[],
            f64::from(u8::from(self.deadlocked)),
        );
        reg.gauge_set(
            "turnroute_last_cycle",
            "Final simulated cycle observed",
            &[],
            self.last_cycle as f64,
        );
        reg
    }
}

impl SimObserver for ReplayableAggregates {
    fn on_inject(&mut self, _now: u64, _packet: PacketId, _src: NodeId, _dst: NodeId, len: u32) {
        self.injected_packets += 1;
        self.injected_flits += u64::from(len);
    }

    fn on_flit_advance(
        &mut self,
        now: u64,
        from: usize,
        to: Option<usize>,
        packet: PacketId,
        is_tail: bool,
    ) {
        if to.is_none() {
            self.consumed_flits += 1;
        }
        self.heatmap.on_flit_advance(now, from, to, packet, is_tail);
    }

    fn on_turn(&mut self, now: u64, packet: PacketId, at: NodeId, turn: Turn) {
        self.census.on_turn(now, packet, at, turn);
    }

    fn on_misroute(&mut self, _now: u64, _packet: PacketId, _at: NodeId, _dir: Direction) {
        self.misroutes += 1;
    }

    fn on_stall(&mut self, now: u64, slot: usize, packet: PacketId, reason: StallReason) {
        self.heatmap.on_stall(now, slot, packet, reason);
    }

    fn on_deliver(&mut self, _now: u64, _packet: PacketId, latency: u64, hops: u32) {
        self.delivered_packets += 1;
        self.latency.record(latency);
        self.hops.record(u64::from(hops));
    }

    fn on_deadlock(&mut self, _now: u64, _snapshot: &DeadlockSnapshot) {
        self.deadlocked = true;
    }

    fn on_fault(&mut self, _now: u64, _slot: usize, _active: bool) {
        self.faults += 1;
    }

    fn on_drop(&mut self, _now: u64, _packet: PacketId, unroutable: bool) {
        self.drops += 1;
        if unroutable {
            self.unroutable_drops += 1;
        }
    }

    fn on_flit_source(&mut self, _now: u64, _slot: usize, _packet: PacketId, _is_tail: bool) {
        self.sourced_flits += 1;
    }

    fn on_purge(&mut self, _now: u64, _packet: PacketId) {
        self.purges += 1;
    }

    fn on_blame(&mut self, _now: u64, _packet: PacketId, blame: PacketBlame) {
        self.blamed_packets += 1;
        self.blame.queue_cycles += blame.queue_cycles;
        self.blame.blocked_cycles += blame.blocked_cycles;
        self.blame.service_cycles += blame.service_cycles;
        self.blame.misroute_cycles += blame.misroute_cycles;
    }

    fn on_frame(&mut self, _now: u64, _frame: &TelemetryFrame) {
        self.frames += 1;
    }

    fn on_alert(&mut self, _now: u64, _alert: &Alert) {
        self.alerts += 1;
    }

    fn on_cycle_end(&mut self, now: u64) {
        self.last_cycle = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogObserver;
    use crate::replay::replay;
    use turnroute_routing::{mesh2d, RoutingMode};
    use turnroute_sim::{FaultPlan, Sim, SimConfig};
    use turnroute_topology::Mesh;
    use turnroute_traffic::Uniform;

    #[test]
    fn replayed_aggregates_match_live_byte_for_byte() {
        let mesh = Mesh::new_2d(6, 6);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.08)
            .seed(42)
            .warmup_cycles(100)
            .measure_cycles(400)
            .drain_cycles(400)
            .fault_plan(FaultPlan::new().transient_link(NodeId(14), Direction::EAST, 150, 100))
            .build();
        let layout = ChannelLayout::for_topology(&mesh);
        let log = LogObserver::start(&mesh, &routing, &pattern, &cfg, "sim");
        let live = ReplayableAggregates::new(layout);
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, (log, live));
        let report = sim.run();
        let (log, live) = sim.into_observer();
        let bytes = log.finish();

        let mut replayed = ReplayableAggregates::new(layout);
        replay(&bytes, &mut replayed).expect("replays");
        assert_eq!(live.snapshot_json(), replayed.snapshot_json());
        assert_eq!(
            live.to_registry().prometheus_text(),
            replayed.to_registry().prometheus_text()
        );
        assert_eq!(
            live.to_registry().json_snapshot(),
            replayed.to_registry().json_snapshot()
        );
        // The stack saw real traffic and the scheduled fault transitions.
        // The report counts only measurement-window packets; the observer
        // sees every delivery, so it is a superset.
        assert!(live.delivered_packets() >= report.delivered_packets);
        assert!(report.delivered_packets > 0);
        assert!(live.faults >= 2);
        assert!(!live.deadlocked());
        assert!(turnroute_sim::obs::json::validate(&live.snapshot_json()));
    }

    #[test]
    fn snapshot_json_is_stable_for_an_empty_stack() {
        let a = ReplayableAggregates::new(ChannelLayout::new(4, 2));
        let b = ReplayableAggregates::new(ChannelLayout::new(4, 2));
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        assert!(a.snapshot_json().contains("\"deadlocked\":false"));
    }
}
