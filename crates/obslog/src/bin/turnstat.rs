//! `turnstat` — record, summarize, replay, diff, and verify turntrace
//! event logs.
//!
//! Usage:
//!
//! ```text
//! turnstat record --out DIR [--seed N] [--quick]
//!     run the canonical scenario, writing DIR/run.ttr (binary log),
//!     DIR/aggregates.json (replayable aggregate artifact), and
//!     DIR/metrics.prom (Prometheus text exposition)
//!
//! turnstat summarize FILE
//!     print a log's header and per-event-kind counts
//!
//! turnstat replay FILE --out FILE
//!     re-drive the aggregate stack from the log (no simulation) and
//!     write its aggregates.json
//!
//! turnstat diff A B
//!     compare two logs; exit zero iff they are byte-identical
//!
//! turnstat verify FILE [--against AGG.json] [--inject-bad]
//!     full integrity walk (framing, checksum, every event); with
//!     --against, additionally require the replayed aggregates to be
//!     byte-identical to a live-recorded artifact; with --inject-bad,
//!     corrupt the log in memory (truncation + bit flips) and require
//!     every corruption to be rejected (self-test: exits nonzero)
//!
//! turnstat profile [--seed N] [--quick]
//!     run the canonical scenario with the engine phase profiler and
//!     print the per-phase wall-clock table
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use turnroute_obslog::{artifact, replay, scenario, verify_bytes, ReplayableAggregates};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{PhaseProfiler, Sim};

fn usage() -> ExitCode {
    eprintln!(
        "usage: turnstat record --out DIR [--seed N] [--quick]\n\
         \x20      turnstat summarize FILE\n\
         \x20      turnstat replay FILE --out FILE\n\
         \x20      turnstat diff A B\n\
         \x20      turnstat verify FILE [--against AGG.json] [--inject-bad]\n\
         \x20      turnstat profile [--seed N] [--quick]"
    );
    ExitCode::FAILURE
}

fn read_log(path: &Path) -> Result<Vec<u8>, ExitCode> {
    std::fs::read(path).map_err(|e| {
        eprintln!("turnstat: cannot read {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

fn write_text(path: &Path, content: &str) -> Result<(), ExitCode> {
    artifact::write_artifact(path, content).map_err(|e| {
        eprintln!("turnstat: cannot write {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

struct Common {
    seed: u64,
    quick: bool,
    out: Option<PathBuf>,
    against: Option<PathBuf>,
    inject_bad: bool,
    files: Vec<PathBuf>,
}

fn parse(mut args: std::env::Args) -> Option<Common> {
    let mut c = Common {
        seed: 7,
        quick: false,
        out: None,
        against: None,
        inject_bad: false,
        files: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => c.quick = true,
            "--inject-bad" => c.inject_bad = true,
            "--seed" => c.seed = args.next()?.parse().ok()?,
            "--out" => c.out = Some(PathBuf::from(args.next()?)),
            "--against" => c.against = Some(PathBuf::from(args.next()?)),
            _ if arg.starts_with("--") => return None,
            _ => c.files.push(PathBuf::from(arg)),
        }
    }
    Some(c)
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let Some(cmd) = args.next() else {
        return usage();
    };
    let Some(c) = parse(args) else {
        return usage();
    };
    match (cmd.as_str(), c.files.len()) {
        ("record", 0) => record(&c),
        ("summarize", 1) => summarize(&c),
        ("replay", 1) => replay_cmd(&c),
        ("diff", 2) => diff(&c),
        ("verify", 1) => verify(&c),
        ("profile", 0) => profile(&c),
        _ => usage(),
    }
}

fn record(c: &Common) -> ExitCode {
    let Some(dir) = &c.out else {
        eprintln!("turnstat record: --out DIR is required");
        return ExitCode::FAILURE;
    };
    let rec = scenario::record(c.seed, c.quick);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("turnstat: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    // The log is binary: raw bytes, no newline normalization.
    let log_path = dir.join("run.ttr");
    if let Err(e) = std::fs::write(&log_path, &rec.bytes) {
        eprintln!("turnstat: cannot write {}: {e}", log_path.display());
        return ExitCode::FAILURE;
    }
    if write_text(
        &dir.join("aggregates.json"),
        &rec.aggregates.snapshot_json(),
    )
    .is_err()
        || write_text(
            &dir.join("metrics.prom"),
            &rec.aggregates.to_registry().prometheus_text(),
        )
        .is_err()
    {
        return ExitCode::FAILURE;
    }
    eprintln!(
        "turnstat: recorded seed {} ({} bytes, {} packets delivered) into {}",
        c.seed,
        rec.bytes.len(),
        rec.report.delivered_packets,
        dir.display()
    );
    ExitCode::SUCCESS
}

fn summarize(c: &Common) -> ExitCode {
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    match turnroute_obslog::summarize(&bytes) {
        Ok(s) => {
            print!("{}", s.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            ExitCode::FAILURE
        }
    }
}

fn replay_into_aggregates(bytes: &[u8]) -> Result<ReplayableAggregates, ExitCode> {
    let header = match turnroute_obslog::summarize(bytes) {
        Ok(s) => s.header,
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let layout = ChannelLayout::new(header.nodes as usize, header.dims as usize);
    let mut agg = ReplayableAggregates::new(layout);
    match replay(bytes, &mut agg) {
        Ok(_) => Ok(agg),
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn replay_cmd(c: &Common) -> ExitCode {
    let Some(out) = &c.out else {
        eprintln!("turnstat replay: --out FILE is required");
        return ExitCode::FAILURE;
    };
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let agg = match replay_into_aggregates(&bytes) {
        Ok(a) => a,
        Err(code) => return code,
    };
    if write_text(out, &agg.snapshot_json()).is_err() {
        return ExitCode::FAILURE;
    }
    eprintln!("turnstat: replayed aggregates written to {}", out.display());
    ExitCode::SUCCESS
}

fn diff(c: &Common) -> ExitCode {
    let (a, b) = match (read_log(&c.files[0]), read_log(&c.files[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    if a == b {
        println!("identical ({} bytes)", a.len());
        return ExitCode::SUCCESS;
    }
    println!("logs differ: {} vs {} bytes", a.len(), b.len());
    if let Some(at) = a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        println!("first differing byte at offset {at}");
    }
    // Field-level context when both parse.
    if let (Ok(sa), Ok(sb)) = (
        turnroute_obslog::summarize(&a),
        turnroute_obslog::summarize(&b),
    ) {
        for key in ["seed", "config_hash"] {
            let (va, vb) = match key {
                "seed" => (sa.header.seed, sb.header.seed),
                _ => (sa.header.config_hash, sb.header.config_hash),
            };
            if va != vb {
                println!("header {key}: {va:#x} vs {vb:#x}");
            }
        }
        for (kind, na) in &sa.counts {
            let nb = sb.count(kind);
            if *na != nb {
                println!("events {kind}: {na} vs {nb}");
            }
        }
    }
    ExitCode::FAILURE
}

fn verify(c: &Common) -> ExitCode {
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    if c.inject_bad {
        return verify_inject_bad(&bytes);
    }
    let summary = match verify_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "verified: {} events over {} cycles, checksum ok",
        summary.events, summary.cycles
    );
    if let Some(against) = &c.against {
        let expected = match std::fs::read_to_string(against) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("turnstat: cannot read {}: {e}", against.display());
                return ExitCode::FAILURE;
            }
        };
        let agg = match replay_into_aggregates(&bytes) {
            Ok(a) => a,
            Err(code) => return code,
        };
        let replayed = artifact::normalized(agg.snapshot_json());
        if replayed == artifact::normalized(expected) {
            println!(
                "verified: replayed aggregates byte-identical to {}",
                against.display()
            );
        } else {
            eprintln!(
                "turnstat: replayed aggregates DIFFER from {} — log and artifact disagree",
                against.display()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Self-test: corrupt the (valid) log several ways in memory; every
/// corruption must be rejected. Mirrors `turnlint --inject-bad`: the
/// command exits nonzero so CI can assert the detector actually detects.
fn verify_inject_bad(bytes: &[u8]) -> ExitCode {
    if let Err(e) = verify_bytes(bytes) {
        eprintln!("turnstat: input log is itself invalid ({e}); nothing to self-test");
        return ExitCode::FAILURE;
    }
    fn caught(name: &str, corrupted: &[u8]) -> bool {
        match verify_bytes(corrupted) {
            Err(e) => {
                eprintln!("turnstat: {name}: rejected: {e}");
                true
            }
            Ok(_) => {
                eprintln!("turnstat: {name}: ACCEPTED — corruption went undetected");
                false
            }
        }
    }
    let mut all_caught = true;
    all_caught &= caught("truncated-75%", &bytes[..bytes.len() * 3 / 4]);
    all_caught &= caught("truncated-mid-trailer", &bytes[..bytes.len() - 4]);
    for (name, at) in [
        ("bit-flip-header", 16usize),
        ("bit-flip-body", bytes.len() / 2),
        ("bit-flip-checksum", bytes.len() - 2),
    ] {
        let mut bad = bytes.to_vec();
        bad[at] ^= 0x20;
        all_caught &= caught(name, &bad);
    }
    if all_caught {
        eprintln!("turnstat: self-test ok: every injected corruption was rejected");
        ExitCode::FAILURE // inject-bad runs report failure by design
    } else {
        ExitCode::SUCCESS // detector is blind: let CI's inversion catch it
    }
}

fn profile(c: &Common) -> ExitCode {
    let s = scenario::canonical(c.seed, c.quick);
    let mut prof = PhaseProfiler::new();
    let mut sim = Sim::new(&s.mesh, &*s.routing, &s.pattern, s.cfg);
    let report = sim.run_profiled(&mut prof);
    print!("{}", prof.render());
    println!(
        "delivered {} packets, avg latency {:.1} cycles",
        report.delivered_packets, report.avg_latency_cycles
    );
    ExitCode::SUCCESS
}
