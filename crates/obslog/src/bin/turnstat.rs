//! `turnstat` — record, summarize, replay, diff, and verify turntrace
//! event logs.
//!
//! Usage:
//!
//! ```text
//! turnstat record --out DIR [--seed N] [--quick]
//!     run the canonical scenario, writing DIR/run.ttr (binary log,
//!     telemetry frames included), DIR/aggregates.json (replayable
//!     aggregate artifact), and DIR/metrics.prom (Prometheus text)
//!
//! turnstat summarize FILE [--from N] [--to N]
//!     print a log's header and per-event-kind counts; with --from/--to,
//!     count only events inside the cycle window (integrity is still
//!     checked over the whole stream)
//!
//! turnstat frames FILE [--out FILE] [--prom FILE] [--check] [--inject-bad]
//!     export the log's telemetry frames and alerts as JSON-lines (to
//!     --out, else stdout) and optionally as windowed Prometheus text
//!     (--prom); with --check, re-derive the frames and alerts from the
//!     raw hook stream and require them to match the logged ones exactly;
//!     with --inject-bad, tamper with frame framing in memory and plant a
//!     synthetic saturation ramp, requiring every corruption to be
//!     rejected and the blocked-mass detector to fire (self-test: exits
//!     nonzero)
//!
//! turnstat replay FILE --out FILE
//!     re-drive the aggregate stack from the log (no simulation) and
//!     write its aggregates.json
//!
//! turnstat diff A B
//!     compare two logs; exit zero iff they are byte-identical
//!
//! turnstat verify FILE [--against AGG.json] [--inject-bad]
//!     full integrity walk (framing, checksum, every event); with
//!     --against, additionally require the replayed aggregates to be
//!     byte-identical to a live-recorded artifact; with --inject-bad,
//!     corrupt the log in memory (truncation + bit flips) and require
//!     every corruption to be rejected (self-test: exits nonzero)
//!
//! turnstat profile [--seed N] [--quick]
//!     run the canonical scenario with the engine phase profiler and
//!     print the per-phase wall-clock table
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use turnroute_obslog::log::fnv1a64;
use turnroute_obslog::{
    artifact, frame_offsets, metrics, replay, scenario, verify_bytes, Registry,
    ReplayableAggregates,
};
use turnroute_sim::obs::{ChannelLayout, ChannelWindow, StallReason, StreamingHistogram};
use turnroute_sim::{
    Alert, AlertKind, DetectorBank, FrameCollector, HealEvent, NoopObserver, PacketId,
    PhaseProfiler, Sim, SimObserver, TelemetryFrame,
};
use turnroute_topology::NodeId;

fn usage() -> ExitCode {
    eprintln!(
        "usage: turnstat record --out DIR [--seed N] [--quick]\n\
         \x20      turnstat summarize FILE [--from N] [--to N]\n\
         \x20      turnstat frames FILE [--out FILE] [--prom FILE] [--check] [--inject-bad]\n\
         \x20      turnstat replay FILE --out FILE\n\
         \x20      turnstat diff A B\n\
         \x20      turnstat verify FILE [--against AGG.json] [--inject-bad]\n\
         \x20      turnstat profile [--seed N] [--quick]"
    );
    ExitCode::FAILURE
}

fn read_log(path: &Path) -> Result<Vec<u8>, ExitCode> {
    std::fs::read(path).map_err(|e| {
        eprintln!("turnstat: cannot read {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

fn write_text(path: &Path, content: &str) -> Result<(), ExitCode> {
    artifact::write_artifact(path, content).map_err(|e| {
        eprintln!("turnstat: cannot write {}: {e}", path.display());
        ExitCode::FAILURE
    })
}

struct Common {
    seed: u64,
    quick: bool,
    out: Option<PathBuf>,
    against: Option<PathBuf>,
    prom: Option<PathBuf>,
    from: Option<u64>,
    to: Option<u64>,
    check: bool,
    inject_bad: bool,
    files: Vec<PathBuf>,
}

fn parse(mut args: std::env::Args) -> Option<Common> {
    let mut c = Common {
        seed: 7,
        quick: false,
        out: None,
        against: None,
        prom: None,
        from: None,
        to: None,
        check: false,
        inject_bad: false,
        files: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => c.quick = true,
            "--check" => c.check = true,
            "--inject-bad" => c.inject_bad = true,
            "--seed" => c.seed = args.next()?.parse().ok()?,
            "--from" => c.from = Some(args.next()?.parse().ok()?),
            "--to" => c.to = Some(args.next()?.parse().ok()?),
            "--out" => c.out = Some(PathBuf::from(args.next()?)),
            "--against" => c.against = Some(PathBuf::from(args.next()?)),
            "--prom" => c.prom = Some(PathBuf::from(args.next()?)),
            _ if arg.starts_with("--") => return None,
            _ => c.files.push(PathBuf::from(arg)),
        }
    }
    Some(c)
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let Some(cmd) = args.next() else {
        return usage();
    };
    let Some(c) = parse(args) else {
        return usage();
    };
    match (cmd.as_str(), c.files.len()) {
        ("record", 0) => record(&c),
        ("summarize", 1) => summarize(&c),
        ("frames", 1) => frames_cmd(&c),
        ("replay", 1) => replay_cmd(&c),
        ("diff", 2) => diff(&c),
        ("verify", 1) => verify(&c),
        ("profile", 0) => profile(&c),
        _ => usage(),
    }
}

fn record(c: &Common) -> ExitCode {
    let Some(dir) = &c.out else {
        eprintln!("turnstat record: --out DIR is required");
        return ExitCode::FAILURE;
    };
    let rec = scenario::record(c.seed, c.quick);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("turnstat: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    // The log is binary: raw bytes, no newline normalization.
    let log_path = dir.join("run.ttr");
    if let Err(e) = std::fs::write(&log_path, &rec.bytes) {
        eprintln!("turnstat: cannot write {}: {e}", log_path.display());
        return ExitCode::FAILURE;
    }
    if write_text(
        &dir.join("aggregates.json"),
        &rec.aggregates.snapshot_json(),
    )
    .is_err()
        || write_text(
            &dir.join("metrics.prom"),
            &rec.aggregates.to_registry().prometheus_text(),
        )
        .is_err()
    {
        return ExitCode::FAILURE;
    }
    eprintln!(
        "turnstat: recorded seed {} ({} bytes, {} packets delivered, {} frames) into {}",
        c.seed,
        rec.bytes.len(),
        rec.report.delivered_packets,
        rec.frames.len(),
        dir.display()
    );
    ExitCode::SUCCESS
}

fn summarize(c: &Common) -> ExitCode {
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let windowed = c.from.is_some() || c.to.is_some();
    let (from, to) = (c.from.unwrap_or(0), c.to.unwrap_or(u64::MAX));
    let result = if windowed {
        turnroute_obslog::replay_bounded(&bytes, &mut NoopObserver, from, to)
    } else {
        turnroute_obslog::summarize(&bytes)
    };
    match result {
        Ok(s) => {
            if windowed {
                println!(
                    "window: cycles {from}..{} (integrity checked over the whole stream)",
                    if to == u64::MAX {
                        "end".to_string()
                    } else {
                        to.to_string()
                    }
                );
            }
            print!("{}", s.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Collects the frame and alert events a log carries, as decoded by the
/// replayer.
#[derive(Default)]
struct FrameStream {
    frames: Vec<TelemetryFrame>,
    alerts: Vec<Alert>,
}

impl SimObserver for FrameStream {
    fn on_frame(&mut self, _now: u64, frame: &TelemetryFrame) {
        self.frames.push(frame.clone());
    }
    fn on_alert(&mut self, _now: u64, alert: &Alert) {
        self.alerts.push(*alert);
    }
}

/// Re-derives frames and alerts from the raw hook stream, ignoring the
/// logged frame/alert events entirely. Starts deliberately undersized
/// (one channel slot) — the collector and bank grow themselves from the
/// slots the stream actually touches, so a matching result really is
/// re-derived, not copied.
struct Rederive {
    collector: FrameCollector,
    bank: DetectorBank,
    frames: Vec<TelemetryFrame>,
    alerts: Vec<Alert>,
}

impl SimObserver for Rederive {
    fn on_inject(&mut self, now: u64, packet: PacketId, src: NodeId, dst: NodeId, len: u32) {
        self.collector.on_inject(now, packet, src, dst, len);
    }
    fn on_flit_advance(
        &mut self,
        now: u64,
        from: usize,
        to: Option<usize>,
        packet: PacketId,
        is_tail: bool,
    ) {
        self.collector
            .on_flit_advance(now, from, to, packet, is_tail);
    }
    fn on_stall(&mut self, now: u64, slot: usize, packet: PacketId, reason: StallReason) {
        self.collector.on_stall(now, slot, packet, reason);
    }
    fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, hops: u32) {
        self.collector.on_deliver(now, packet, latency, hops);
    }
    fn on_drop(&mut self, now: u64, packet: PacketId, unroutable: bool) {
        self.collector.on_drop(now, packet, unroutable);
    }
    fn on_purge(&mut self, now: u64, packet: PacketId) {
        self.collector.on_purge(now, packet);
    }
    fn on_heal(&mut self, now: u64, ev: HealEvent) {
        self.collector.on_heal(now, ev);
    }
    fn on_cycle_end(&mut self, now: u64) {
        self.collector.on_cycle_end(now);
        for frame in self.collector.take_frames() {
            self.alerts.extend(self.bank.push(&frame));
            self.frames.push(frame);
        }
    }
}

fn frames_cmd(c: &Common) -> ExitCode {
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    if c.inject_bad {
        return frames_inject_bad(&bytes);
    }
    let mut stream = FrameStream::default();
    if let Err(e) = replay(&bytes, &mut stream) {
        eprintln!("turnstat: rejected: {e}");
        return ExitCode::FAILURE;
    }
    if stream.frames.is_empty() {
        eprintln!("turnstat frames: log carries no telemetry frames (record without frames?)");
        return ExitCode::FAILURE;
    }
    let mut jsonl = String::new();
    for f in &stream.frames {
        jsonl.push_str(&f.to_json());
        jsonl.push('\n');
    }
    for a in &stream.alerts {
        jsonl.push_str(&a.to_json());
        jsonl.push('\n');
    }
    match &c.out {
        Some(out) => {
            if write_text(out, &jsonl).is_err() {
                return ExitCode::FAILURE;
            }
        }
        None => print!("{jsonl}"),
    }
    if let Some(prom) = &c.prom {
        let mut reg = Registry::new();
        metrics::export_frames(&mut reg, &stream.frames, &stream.alerts);
        if write_text(prom, &reg.prometheus_text()).is_err() {
            return ExitCode::FAILURE;
        }
    }
    if c.check {
        // Frame 0 opens at cycle 0, so its window length *is* the cadence
        // — no out-of-band configuration needed to re-derive.
        let cadence = stream.frames[0].window_len();
        let mut re = Rederive {
            collector: FrameCollector::new(1, cadence),
            bank: DetectorBank::new(1),
            frames: Vec::new(),
            alerts: Vec::new(),
        };
        if let Err(e) = replay(&bytes, &mut re) {
            eprintln!("turnstat: rejected: {e}");
            return ExitCode::FAILURE;
        }
        if re.frames != stream.frames {
            eprintln!(
                "turnstat frames: re-derived frames DIFFER from logged frames ({} vs {})",
                re.frames.len(),
                stream.frames.len()
            );
            return ExitCode::FAILURE;
        }
        if re.alerts != stream.alerts {
            eprintln!(
                "turnstat frames: re-derived alerts DIFFER from logged alerts ({} vs {})",
                re.alerts.len(),
                stream.alerts.len()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "frames match: {} frames, {} alerts re-derived identically",
            stream.frames.len(),
            stream.alerts.len()
        );
    }
    eprintln!(
        "turnstat: {} frames, {} alerts",
        stream.frames.len(),
        stream.alerts.len()
    );
    ExitCode::SUCCESS
}

/// Re-seal a checksum-stripped body so only content-level validation can
/// catch the tampering.
fn reseal(mut body: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a64(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// First byte index after the varint starting at `at`.
fn varint_end(bytes: &[u8], mut at: usize) -> usize {
    while bytes[at] & 0x80 != 0 {
        at += 1;
    }
    at + 1
}

/// Self-test for the turnscope layer: tamper with frame framing behind a
/// freshly re-sealed checksum (the checksum cannot save us — only strict
/// frame decoding can), and plant a synthetic saturation ramp that the
/// blocked-mass growth detector must flag. Mirrors `turnstat verify
/// --inject-bad`: exits nonzero when every check passes so CI can invert.
fn frames_inject_bad(bytes: &[u8]) -> ExitCode {
    if let Err(e) = verify_bytes(bytes) {
        eprintln!("turnstat: input log is itself invalid ({e}); nothing to self-test");
        return ExitCode::FAILURE;
    }
    let offsets = match frame_offsets(bytes) {
        Ok(o) if !o.is_empty() => o,
        Ok(_) => {
            eprintln!("turnstat frames: log carries no telemetry frames; nothing to self-test");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    fn caught(name: &str, corrupted: &[u8]) -> bool {
        match verify_bytes(corrupted) {
            Err(e) => {
                eprintln!("turnstat: {name}: rejected: {e}");
                true
            }
            Ok(_) => {
                eprintln!("turnstat: {name}: ACCEPTED — corruption went undetected");
                false
            }
        }
    }
    let mut all_caught = true;
    // 1. Shrink/grow the first frame's declared payload length by one and
    //    re-seal: the payload no longer decodes to exactly its length.
    let mut bad = bytes[..bytes.len() - 8].to_vec();
    let len_at = offsets[0] + 1;
    if bad[len_at] & 0x7f != 0 {
        bad[len_at] -= 1;
    } else {
        bad[len_at] += 1;
    }
    all_caught &= caught("frame-length-tamper", &reseal(bad));
    // 2. Flip the frame's schema version byte (first payload byte) and
    //    re-seal: strict decoding refuses unknown versions.
    let mut bad = bytes[..bytes.len() - 8].to_vec();
    let payload_at = varint_end(&bad, offsets[0] + 1);
    bad[payload_at] ^= 0x7f;
    all_caught &= caught("frame-version-tamper", &reseal(bad));
    // 3. Plant a saturation ramp — blocked-cycle mass strictly rising
    //    across windows, well past the slope floor — and require the
    //    blocked-mass growth detector to fire before the ramp tops out.
    let mut bank = DetectorBank::new(2);
    let mut fired = None;
    for (seq, mass) in [100u64, 220, 380, 560, 900].into_iter().enumerate() {
        let seq = seq as u64;
        let frame = TelemetryFrame {
            seq,
            window_start: seq * 1_000,
            window_end: seq * 1_000 + 999,
            injected_packets: 40,
            delivered_packets: 35,
            dropped_packets: 0,
            in_flight_packets: 5,
            open_heal_epochs: 0,
            latency: StreamingHistogram::new(),
            channels: vec![
                ChannelWindow {
                    slot: 0,
                    util: 400,
                    blocked: mass / 2,
                },
                ChannelWindow {
                    slot: 1,
                    util: 400,
                    blocked: mass - mass / 2,
                },
            ],
        };
        for alert in bank.push(&frame) {
            if alert.kind == AlertKind::BlockedMassGrowth && fired.is_none() {
                fired = Some(alert);
            }
        }
    }
    match fired {
        Some(a) => eprintln!(
            "turnstat: planted-saturation: blocked-mass detector fired at seq {} (mass {} >= floor {})",
            a.seq, a.value, a.threshold
        ),
        None => {
            eprintln!("turnstat: planted-saturation: detector STAYED SILENT through the ramp");
            all_caught = false;
        }
    }
    if all_caught {
        eprintln!("turnstat: self-test ok: every injected corruption was rejected");
        ExitCode::FAILURE // inject-bad runs report failure by design
    } else {
        ExitCode::SUCCESS // detector is blind: let CI's inversion catch it
    }
}

fn replay_into_aggregates(bytes: &[u8]) -> Result<ReplayableAggregates, ExitCode> {
    let header = match turnroute_obslog::summarize(bytes) {
        Ok(s) => s.header,
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let layout = ChannelLayout::new(header.nodes as usize, header.dims as usize);
    let mut agg = ReplayableAggregates::new(layout);
    match replay(bytes, &mut agg) {
        Ok(_) => Ok(agg),
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn replay_cmd(c: &Common) -> ExitCode {
    let Some(out) = &c.out else {
        eprintln!("turnstat replay: --out FILE is required");
        return ExitCode::FAILURE;
    };
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let agg = match replay_into_aggregates(&bytes) {
        Ok(a) => a,
        Err(code) => return code,
    };
    if write_text(out, &agg.snapshot_json()).is_err() {
        return ExitCode::FAILURE;
    }
    eprintln!("turnstat: replayed aggregates written to {}", out.display());
    ExitCode::SUCCESS
}

fn diff(c: &Common) -> ExitCode {
    let (a, b) = match (read_log(&c.files[0]), read_log(&c.files[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    if a == b {
        println!("identical ({} bytes)", a.len());
        return ExitCode::SUCCESS;
    }
    println!("logs differ: {} vs {} bytes", a.len(), b.len());
    if let Some(at) = a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        println!("first differing byte at offset {at}");
    }
    // Field-level context when both parse.
    if let (Ok(sa), Ok(sb)) = (
        turnroute_obslog::summarize(&a),
        turnroute_obslog::summarize(&b),
    ) {
        for key in ["seed", "config_hash"] {
            let (va, vb) = match key {
                "seed" => (sa.header.seed, sb.header.seed),
                _ => (sa.header.config_hash, sb.header.config_hash),
            };
            if va != vb {
                println!("header {key}: {va:#x} vs {vb:#x}");
            }
        }
        for (kind, na) in &sa.counts {
            let nb = sb.count(kind);
            if *na != nb {
                println!("events {kind}: {na} vs {nb}");
            }
        }
    }
    ExitCode::FAILURE
}

fn verify(c: &Common) -> ExitCode {
    let bytes = match read_log(&c.files[0]) {
        Ok(b) => b,
        Err(code) => return code,
    };
    if c.inject_bad {
        return verify_inject_bad(&bytes);
    }
    let summary = match verify_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("turnstat: rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "verified: {} events over {} cycles, checksum ok",
        summary.events, summary.cycles
    );
    if let Some(against) = &c.against {
        let expected = match std::fs::read_to_string(against) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("turnstat: cannot read {}: {e}", against.display());
                return ExitCode::FAILURE;
            }
        };
        let agg = match replay_into_aggregates(&bytes) {
            Ok(a) => a,
            Err(code) => return code,
        };
        let replayed = artifact::normalized(agg.snapshot_json());
        if replayed == artifact::normalized(expected) {
            println!(
                "verified: replayed aggregates byte-identical to {}",
                against.display()
            );
        } else {
            eprintln!(
                "turnstat: replayed aggregates DIFFER from {} — log and artifact disagree",
                against.display()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Self-test: corrupt the (valid) log several ways in memory; every
/// corruption must be rejected. Mirrors `turnlint --inject-bad`: the
/// command exits nonzero so CI can assert the detector actually detects.
fn verify_inject_bad(bytes: &[u8]) -> ExitCode {
    if let Err(e) = verify_bytes(bytes) {
        eprintln!("turnstat: input log is itself invalid ({e}); nothing to self-test");
        return ExitCode::FAILURE;
    }
    fn caught(name: &str, corrupted: &[u8]) -> bool {
        match verify_bytes(corrupted) {
            Err(e) => {
                eprintln!("turnstat: {name}: rejected: {e}");
                true
            }
            Ok(_) => {
                eprintln!("turnstat: {name}: ACCEPTED — corruption went undetected");
                false
            }
        }
    }
    let mut all_caught = true;
    all_caught &= caught("truncated-75%", &bytes[..bytes.len() * 3 / 4]);
    all_caught &= caught("truncated-mid-trailer", &bytes[..bytes.len() - 4]);
    for (name, at) in [
        ("bit-flip-header", 16usize),
        ("bit-flip-body", bytes.len() / 2),
        ("bit-flip-checksum", bytes.len() - 2),
    ] {
        let mut bad = bytes.to_vec();
        bad[at] ^= 0x20;
        all_caught &= caught(name, &bad);
    }
    if all_caught {
        eprintln!("turnstat: self-test ok: every injected corruption was rejected");
        ExitCode::FAILURE // inject-bad runs report failure by design
    } else {
        ExitCode::SUCCESS // detector is blind: let CI's inversion catch it
    }
}

fn profile(c: &Common) -> ExitCode {
    let s = scenario::canonical(c.seed, c.quick);
    let mut prof = PhaseProfiler::new();
    let mut sim = Sim::new(&s.mesh, &*s.routing, &s.pattern, s.cfg);
    let report = sim.run_profiled(&mut prof);
    print!("{}", prof.render());
    println!(
        "delivered {} packets, avg latency {:.1} cycles",
        report.delivered_packets, report.avg_latency_cycles
    );
    ExitCode::SUCCESS
}
