//! The append-only binary event log and the observer that records it.
//!
//! # Framing
//!
//! A log is one contiguous byte stream (see DESIGN.md §10):
//!
//! ```text
//! magic "TTRL" | version u16 LE | header_len u32 LE | header text
//! | event* | END tag | event_count varint | FNV-1a-64 checksum u64 LE
//! ```
//!
//! The header is line-oriented `key=value` text in a fixed key order, so
//! it is both human-readable (`strings run.ttr | head`) and trivially
//! parseable without a JSON reader. It carries everything needed to
//! interpret the body — engine, topology shape, routing algorithm and its
//! declared turn set, traffic pattern, seed, the full canonical
//! configuration (fault plan included) and its hash.
//!
//! Events are a tag byte followed by LEB128 varint fields. Cycle numbers
//! are delta-encoded: a `CycleAdvance` event moves the clock, and every
//! following event implicitly happens at the current cycle. Recording the
//! same `(config, seed)` twice yields byte-identical logs because the
//! engine is deterministic and this encoding has exactly one form per
//! event stream.
//!
//! Arbitration outcomes are captured by the existing hook vocabulary:
//! winners appear as `Turn` events (the grant names the turn taken) and
//! losers as `Stall` events with the `NotRouted` reason.
//!
//! # Telemetry frames
//!
//! A recorder built with [`LogObserver::with_frames`] additionally rides
//! a [`FrameCollector`] and a [`DetectorBank`]: every `cadence` cycles it
//! seals a telemetry frame and writes it into the stream as a `Frame`
//! event (length-prefixed, see [`crate::frame_codec`]), followed by any
//! early-warning `Alert` events the detectors raise on that frame. Frames
//! are derived purely from the same hooks the log records, so replaying
//! the log through a fresh collector re-seals byte-identical frames —
//! `turnstat frames --check` enforces exactly that. Per-packet latency
//! blame decompositions arrive through the `on_blame` hook and serialize
//! as `Blame` events whether or not frames are enabled.

use turnroute_model::{RoutingFunction, Turn};
use turnroute_sim::obs::{ChannelLayout, DeadlockSnapshot, StallReason};
use turnroute_sim::{
    Alert, DetectorBank, FaultTarget, FrameCollector, HealEvent, LengthDist, PacketBlame, PacketId,
    SimConfig, TelemetryFrame,
};
use turnroute_topology::{Direction, NodeId, Topology};
use turnroute_traffic::TrafficPattern;

/// First four bytes of every log file.
pub const MAGIC: [u8; 4] = *b"TTRL";
/// Current format version.
pub const VERSION: u16 = 1;

/// Event tag bytes. Tag 0 terminates the stream.
pub mod tag {
    /// End of stream; followed by the event count and checksum.
    pub const END: u8 = 0;
    /// Advance the implicit cycle clock by a varint delta.
    pub const CYCLE_ADVANCE: u8 = 1;
    /// A packet started streaming into the network.
    pub const INJECT: u8 = 2;
    /// A flit was pushed into an injection buffer.
    pub const FLIT_SOURCE: u8 = 3;
    /// A flit crossed between channel buffers (or was consumed).
    pub const ADVANCE: u8 = 4;
    /// A header won arbitration and turned at a router.
    pub const TURN: u8 = 5;
    /// A header took an unproductive channel.
    pub const MISROUTE: u8 = 6;
    /// An occupied channel advanced nothing (arbitration loser or
    /// backpressure).
    pub const STALL: u8 = 7;
    /// A packet's tail was consumed at its destination.
    pub const DELIVER: u8 = 8;
    /// A scheduled fault changed a channel's state.
    pub const FAULT: u8 = 9;
    /// A packet was dropped after exhausting lifetime and retries.
    pub const DROP: u8 = 10;
    /// A packet's flits were purged from the network (retry or drop).
    pub const PURGE: u8 = 11;
    /// The engine finished every phase of the current cycle.
    pub const CYCLE_END: u8 = 12;
    /// Deadlock detection tripped; carries the frozen waits-for graph.
    pub const DEADLOCK: u8 = 13;
    /// A fault transition opened (or extended) a reconfiguration epoch.
    pub const HEAL_EPOCH: u8 = 14;
    /// An epoch's re-proof finished (latency, incremental, verdict).
    pub const HEAL_PROOF: u8 = 15;
    /// The checker validated an epoch's certificate; carries its hash.
    pub const HEAL_CERT: u8 = 16;
    /// Routing swapped to an epoch's newly certified masked relation.
    pub const HEAL_SWAP: u8 = 17;
    /// A channel entered or left quarantine (escape-path-only mode).
    pub const HEAL_QUARANTINE: u8 = 18;
    /// A delivered packet's latency blame decomposition.
    pub const BLAME: u8 = 19;
    /// A sealed telemetry frame; length-prefixed versioned payload.
    pub const FRAME: u8 = 20;
    /// An early-warning detector fired on the frame stream.
    pub const ALERT: u8 = 21;
}

/// Append `v` as an LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical one-line rendering of a configuration — the string the
/// header's `config_hash` is computed over. Every field participates, so
/// two configs hash equal iff they are equal.
pub fn canonical_config(cfg: &SimConfig) -> String {
    let lengths = match cfg.lengths {
        LengthDist::Fixed(n) => format!("fixed({n})"),
        LengthDist::Bimodal { short, long } => format!("bimodal({short},{long})"),
    };
    format!(
        "rate={};lengths={};warmup={};measure={};drain={};seed={};input={:?};output={:?};\
         misroute_budget={};deadlock_threshold={};buffer_depth={};routing_delay={};\
         record_paths={};timeout={};retries={};faults={}",
        cfg.injection_rate,
        lengths,
        cfg.warmup_cycles,
        cfg.measure_cycles,
        cfg.drain_cycles,
        cfg.seed,
        cfg.input_policy,
        cfg.output_policy,
        cfg.misroute_budget,
        cfg.deadlock_threshold,
        cfg.buffer_depth,
        cfg.routing_delay,
        cfg.record_paths,
        cfg.packet_timeout,
        cfg.max_retries,
        canonical_fault_plan(cfg),
    )
}

/// Canonical rendering of the scheduled fault plan.
fn canonical_fault_plan(cfg: &SimConfig) -> String {
    let mut out = String::from("[");
    for (i, f) in cfg.fault_plan.faults().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match f.target {
            FaultTarget::Link { node, dir } => {
                out.push_str(&format!("link({},{})", node.0, dir.index()));
            }
            FaultTarget::Node(v) => out.push_str(&format!("node({})", v.0)),
        }
        match f.duration {
            Some(d) => out.push_str(&format!("@{}+{}", f.start, d)),
            None => out.push_str(&format!("@{}+inf", f.start)),
        }
    }
    out.push(']');
    out
}

/// Human description of a topology's shape: radices joined by `x`, with a
/// wrap marker when any dimension wraps around.
pub fn describe_topology(topo: &dyn Topology) -> String {
    let radices: Vec<String> = (0..topo.num_dims())
        .map(|d| topo.radix(d).to_string())
        .collect();
    let wrap = (0..topo.num_dims()).any(|d| topo.has_wraparound(d));
    format!("{}{}", radices.join("x"), if wrap { " wrap" } else { "" })
}

/// The self-describing header at the front of every log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHeader {
    /// Which engine recorded the run (`sim` or `vc`).
    pub engine: String,
    /// Topology shape, e.g. `8x8`.
    pub topology: String,
    /// Node count (sizes the replay [`turnroute_sim::obs::ChannelLayout`]).
    pub nodes: u64,
    /// Dimension count (the other half of the layout).
    pub dims: u64,
    /// Routing algorithm name.
    pub routing: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// The routing function's declared turn set, or `-` when it has none.
    pub turns: String,
    /// The run's RNG seed (also inside `config`; surfaced for tooling).
    pub seed: u64,
    /// Canonical configuration string, fault plan included.
    pub config: String,
    /// FNV-1a 64 hash of `config`.
    pub config_hash: u64,
    /// Number of scheduled fault transitions compiled from the plan.
    pub fault_events: u64,
}

/// Header keys, in serialization order. Parsing requires exactly these
/// keys in exactly this order — one canonical byte form per header.
const HEADER_KEYS: [&str; 11] = [
    "engine",
    "topology",
    "nodes",
    "dims",
    "routing",
    "pattern",
    "turns",
    "seed",
    "config",
    "config_hash",
    "fault_events",
];

impl LogHeader {
    /// Describe a run about to be recorded.
    pub fn describe(
        topo: &dyn Topology,
        routing: &dyn RoutingFunction,
        pattern: &dyn TrafficPattern,
        cfg: &SimConfig,
        engine: &str,
    ) -> LogHeader {
        let config = canonical_config(cfg);
        LogHeader {
            engine: engine.to_string(),
            topology: describe_topology(topo),
            nodes: topo.num_nodes() as u64,
            dims: topo.num_dims() as u64,
            routing: routing.name().to_string(),
            pattern: pattern.name().to_string(),
            turns: routing
                .turn_set(topo.num_dims())
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
            seed: cfg.seed,
            config_hash: fnv1a64(config.as_bytes()),
            config,
            fault_events: 2 * cfg.fault_plan.len() as u64
                - cfg
                    .fault_plan
                    .faults()
                    .iter()
                    .filter(|f| f.duration.is_none())
                    .count() as u64,
        }
    }

    /// The header as `key=value` lines in the fixed key order.
    pub fn to_text(&self) -> String {
        let values = [
            self.engine.clone(),
            self.topology.clone(),
            self.nodes.to_string(),
            self.dims.to_string(),
            self.routing.clone(),
            self.pattern.clone(),
            self.turns.clone(),
            self.seed.to_string(),
            self.config.clone(),
            format!("{:016x}", self.config_hash),
            self.fault_events.to_string(),
        ];
        let mut out = String::new();
        for (key, value) in HEADER_KEYS.iter().zip(values.iter()) {
            debug_assert!(!value.contains('\n'), "header values are single-line");
            out.push_str(key);
            out.push('=');
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// Parse the `key=value` text back; inverse of [`LogHeader::to_text`].
    pub fn parse(text: &str) -> Result<LogHeader, String> {
        let mut values: Vec<&str> = Vec::with_capacity(HEADER_KEYS.len());
        let mut lines = text.lines();
        for key in HEADER_KEYS {
            let line = lines.next().ok_or_else(|| format!("missing key {key}"))?;
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            if k != key {
                return Err(format!("expected key {key}, found {k}"));
            }
            values.push(v);
        }
        if lines.next().is_some() {
            return Err("trailing header lines".to_string());
        }
        let int = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| format!("bad integer for {what}: {s:?}"))
        };
        Ok(LogHeader {
            engine: values[0].to_string(),
            topology: values[1].to_string(),
            nodes: int(values[2], "nodes")?,
            dims: int(values[3], "dims")?,
            routing: values[4].to_string(),
            pattern: values[5].to_string(),
            turns: values[6].to_string(),
            seed: int(values[7], "seed")?,
            config: values[8].to_string(),
            config_hash: u64::from_str_radix(values[9], 16)
                .map_err(|_| format!("bad config_hash: {:?}", values[9]))?,
            fault_events: int(values[10], "fault_events")?,
        })
    }
}

/// A [`turnroute_sim::SimObserver`] that serializes every hook firing into
/// the binary log format. Compose it with other collectors via the tuple
/// observer; call [`LogObserver::finish`] after the run to seal the log
/// with its trailer and checksum.
#[derive(Debug, Clone)]
pub struct LogObserver {
    buf: Vec<u8>,
    cycle: u64,
    events: u64,
    frames: Option<FrameScope>,
}

/// The streaming-telemetry attachment of a frame-enabled recorder: the
/// collector that seals windows, the detector bank that watches them, and
/// copies of everything emitted (for in-process consumers like the CI
/// live-vs-replayed comparison).
#[derive(Debug, Clone)]
struct FrameScope {
    collector: FrameCollector,
    bank: DetectorBank,
    sealed: Vec<TelemetryFrame>,
    alerts: Vec<Alert>,
}

impl LogObserver {
    /// Start a log for a run of `routing` on `topo` under `pattern`,
    /// deriving the header from the run's inputs.
    pub fn start(
        topo: &dyn Topology,
        routing: &dyn RoutingFunction,
        pattern: &dyn TrafficPattern,
        cfg: &SimConfig,
        engine: &str,
    ) -> LogObserver {
        LogObserver::with_header(&LogHeader::describe(topo, routing, pattern, cfg, engine))
    }

    /// Start a log with an explicit header.
    pub fn with_header(header: &LogHeader) -> LogObserver {
        let mut buf = Vec::with_capacity(64 * 1024);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        let text = header.to_text();
        buf.extend_from_slice(&(text.len() as u32).to_le_bytes());
        buf.extend_from_slice(text.as_bytes());
        LogObserver {
            buf,
            cycle: 0,
            events: 0,
            frames: None,
        }
    }

    /// Start a frame-enabled log: in addition to raw events, seal a
    /// telemetry frame every `cadence` cycles, run the early-warning
    /// detectors on it, and write both into the stream as `Frame` and
    /// `Alert` events.
    ///
    /// The embedded collector is pre-sized from the header's layout and
    /// grows on demand, so engines that number extra virtual-channel
    /// slots (the `vc` engine) record correctly too.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn with_frames(header: &LogHeader, cadence: u64) -> LogObserver {
        let mut log = LogObserver::with_header(header);
        let layout = ChannelLayout::new(header.nodes as usize, header.dims as usize);
        log.frames = Some(FrameScope {
            collector: FrameCollector::new(layout.num_channels, cadence),
            bank: DetectorBank::new(layout.num_channels),
            sealed: Vec::new(),
            alerts: Vec::new(),
        });
        log
    }

    /// [`LogObserver::with_frames`] with the header derived from the
    /// run's inputs, like [`LogObserver::start`].
    pub fn start_with_frames(
        topo: &dyn Topology,
        routing: &dyn RoutingFunction,
        pattern: &dyn TrafficPattern,
        cfg: &SimConfig,
        engine: &str,
        cadence: u64,
    ) -> LogObserver {
        LogObserver::with_frames(
            &LogHeader::describe(topo, routing, pattern, cfg, engine),
            cadence,
        )
    }

    /// Events recorded so far (cycle advances included).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Telemetry frames sealed so far (empty unless frame-enabled).
    pub fn frames(&self) -> &[TelemetryFrame] {
        self.frames.as_ref().map_or(&[], |s| &s.sealed)
    }

    /// Early-warning alerts raised so far (empty unless frame-enabled).
    pub fn alerts(&self) -> &[Alert] {
        self.frames.as_ref().map_or(&[], |s| &s.alerts)
    }

    /// Bytes buffered so far (header included, trailer not).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Seal the log: append the end tag, event count, and whole-stream
    /// FNV-1a-64 checksum, and return the complete byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.push(tag::END);
        write_varint(&mut self.buf, self.events);
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    fn sync_cycle(&mut self, now: u64) {
        if now != self.cycle {
            debug_assert!(now > self.cycle, "simulated time is monotone");
            self.buf.push(tag::CYCLE_ADVANCE);
            write_varint(&mut self.buf, now - self.cycle);
            self.cycle = now;
            self.events += 1;
        }
    }

    fn event(&mut self, now: u64, tag: u8, fields: &[u64]) {
        self.sync_cycle(now);
        self.buf.push(tag);
        for &f in fields {
            write_varint(&mut self.buf, f);
        }
        self.events += 1;
    }
}

/// `Option<usize>` slots are encoded shifted by one: 0 is `None`.
fn opt_slot(s: Option<usize>) -> u64 {
    match s {
        Some(s) => s as u64 + 1,
        None => 0,
    }
}

impl turnroute_sim::SimObserver for LogObserver {
    fn on_inject(&mut self, now: u64, packet: PacketId, src: NodeId, dst: NodeId, len: u32) {
        self.event(
            now,
            tag::INJECT,
            &[
                u64::from(packet.0),
                u64::from(src.0),
                u64::from(dst.0),
                u64::from(len),
            ],
        );
        if let Some(s) = &mut self.frames {
            s.collector.on_inject(now, packet, src, dst, len);
        }
    }

    fn on_flit_advance(
        &mut self,
        now: u64,
        from: usize,
        to: Option<usize>,
        packet: PacketId,
        is_tail: bool,
    ) {
        self.event(
            now,
            tag::ADVANCE,
            &[
                from as u64,
                opt_slot(to),
                u64::from(packet.0),
                u64::from(is_tail),
            ],
        );
        if let Some(s) = &mut self.frames {
            s.collector.on_flit_advance(now, from, to, packet, is_tail);
        }
    }

    fn on_turn(&mut self, now: u64, packet: PacketId, at: NodeId, turn: Turn) {
        self.event(
            now,
            tag::TURN,
            &[
                u64::from(packet.0),
                u64::from(at.0),
                turn.from_dir().index() as u64,
                turn.to_dir().index() as u64,
            ],
        );
    }

    fn on_misroute(&mut self, now: u64, packet: PacketId, at: NodeId, dir: Direction) {
        self.event(
            now,
            tag::MISROUTE,
            &[u64::from(packet.0), u64::from(at.0), dir.index() as u64],
        );
    }

    fn on_stall(&mut self, now: u64, slot: usize, packet: PacketId, reason: StallReason) {
        let code = match reason {
            StallReason::NotRouted => 0,
            StallReason::Backpressure => 1,
        };
        self.event(now, tag::STALL, &[slot as u64, u64::from(packet.0), code]);
        if let Some(s) = &mut self.frames {
            s.collector.on_stall(now, slot, packet, reason);
        }
    }

    fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, hops: u32) {
        self.event(
            now,
            tag::DELIVER,
            &[u64::from(packet.0), latency, u64::from(hops)],
        );
        if let Some(s) = &mut self.frames {
            s.collector.on_deliver(now, packet, latency, hops);
        }
    }

    fn on_blame(&mut self, now: u64, packet: PacketId, blame: PacketBlame) {
        self.event(
            now,
            tag::BLAME,
            &[
                u64::from(packet.0),
                blame.queue_cycles,
                blame.blocked_cycles,
                blame.service_cycles,
                blame.misroute_cycles,
            ],
        );
    }

    fn on_deadlock(&mut self, now: u64, snapshot: &DeadlockSnapshot) {
        self.sync_cycle(now);
        self.buf.push(tag::DEADLOCK);
        write_varint(&mut self.buf, snapshot.edges.len() as u64);
        for e in &snapshot.edges {
            write_varint(&mut self.buf, e.channel as u64);
            write_varint(&mut self.buf, u64::from(e.packet));
            write_varint(&mut self.buf, e.buffered as u64);
            write_varint(&mut self.buf, u64::from(e.head_waiting));
            write_varint(&mut self.buf, opt_slot(e.waits_for));
        }
        self.events += 1;
    }

    fn on_fault(&mut self, now: u64, slot: usize, active: bool) {
        self.event(now, tag::FAULT, &[slot as u64, u64::from(active)]);
    }

    fn on_drop(&mut self, now: u64, packet: PacketId, unroutable: bool) {
        self.event(
            now,
            tag::DROP,
            &[u64::from(packet.0), u64::from(unroutable)],
        );
        if let Some(s) = &mut self.frames {
            s.collector.on_drop(now, packet, unroutable);
        }
    }

    fn on_flit_source(&mut self, now: u64, slot: usize, packet: PacketId, is_tail: bool) {
        self.event(
            now,
            tag::FLIT_SOURCE,
            &[slot as u64, u64::from(packet.0), u64::from(is_tail)],
        );
    }

    fn on_purge(&mut self, now: u64, packet: PacketId) {
        self.event(now, tag::PURGE, &[u64::from(packet.0)]);
        if let Some(s) = &mut self.frames {
            s.collector.on_purge(now, packet);
        }
    }

    fn on_cycle_end(&mut self, now: u64) {
        self.event(now, tag::CYCLE_END, &[]);
        // Drive the frame collector after the cycle-end event so sealed
        // frames (and the alerts they trip) land right behind it in the
        // stream, at the same cycle.
        let Some(mut scope) = self.frames.take() else {
            return;
        };
        scope.collector.on_cycle_end(now);
        for frame in scope.collector.take_frames() {
            let payload = crate::frame_codec::encode_frame_payload(&frame);
            self.sync_cycle(now);
            self.buf.push(tag::FRAME);
            write_varint(&mut self.buf, payload.len() as u64);
            self.buf.extend_from_slice(&payload);
            self.events += 1;
            for alert in scope.bank.push(&frame) {
                self.event(
                    now,
                    tag::ALERT,
                    &[
                        alert.kind.code(),
                        alert.seq,
                        alert.cycle,
                        opt_slot(alert.slot),
                        alert.value,
                        alert.threshold,
                    ],
                );
                scope.alerts.push(alert);
            }
            scope.sealed.push(frame);
        }
        self.frames = Some(scope);
    }

    fn on_heal(&mut self, now: u64, ev: HealEvent) {
        if let Some(s) = &mut self.frames {
            s.collector.on_heal(now, ev);
        }
        match ev {
            HealEvent::EpochOpen { epoch, transitions } => self.event(
                now,
                tag::HEAL_EPOCH,
                &[u64::from(epoch), u64::from(transitions)],
            ),
            HealEvent::Proof {
                epoch,
                latency,
                incremental,
                acyclic,
            } => self.event(
                now,
                tag::HEAL_PROOF,
                &[
                    u64::from(epoch),
                    latency,
                    u64::from(incremental),
                    u64::from(acyclic),
                ],
            ),
            HealEvent::Certificate { epoch, hash } => {
                self.event(now, tag::HEAL_CERT, &[u64::from(epoch), hash]);
            }
            HealEvent::TableSwap { epoch } => {
                self.event(now, tag::HEAL_SWAP, &[u64::from(epoch)]);
            }
            HealEvent::Quarantine { epoch, slot, on } => self.event(
                now,
                tag::HEAL_QUARANTINE,
                &[u64::from(epoch), u64::from(slot), u64::from(on)],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_sim::FaultPlan;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            let mut out = 0u64;
            let mut shift = 0;
            loop {
                let b = buf[pos];
                pos += 1;
                out |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            assert_eq!(out, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn canonical_config_covers_fault_plan() {
        let plan = FaultPlan::new()
            .permanent_link(NodeId(5), Direction::EAST, 100)
            .transient_node(NodeId(9), 2_000, 500);
        let a = SimConfig::builder().seed(7).build();
        let b = SimConfig::builder().seed(7).fault_plan(plan).build();
        assert_ne!(canonical_config(&a), canonical_config(&b));
        assert_ne!(
            fnv1a64(canonical_config(&a).as_bytes()),
            fnv1a64(canonical_config(&b).as_bytes())
        );
        assert!(canonical_config(&b).contains("node(9)@2000+500"));
    }

    #[test]
    fn header_text_round_trips() {
        use turnroute_routing::{mesh2d, RoutingMode};
        use turnroute_topology::Mesh;
        use turnroute_traffic::Uniform;
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let cfg = SimConfig::builder().seed(3).build();
        let h = LogHeader::describe(&mesh, &routing, &Uniform::new(), &cfg, "sim");
        assert_eq!(h.topology, "4x4");
        assert_eq!(h.nodes, 16);
        assert_eq!(h.seed, 3);
        assert_ne!(h.turns, "-");
        let parsed = LogHeader::parse(&h.to_text()).expect("parses");
        assert_eq!(parsed, h);
    }

    #[test]
    fn frame_enabled_recording_is_deterministic_and_seals_frames() {
        use turnroute_routing::{mesh2d, RoutingMode};
        use turnroute_sim::Sim;
        use turnroute_topology::Mesh;
        use turnroute_traffic::Uniform;
        let record = || {
            let mesh = Mesh::new_2d(4, 4);
            let routing = mesh2d::west_first(RoutingMode::Minimal);
            let pattern = Uniform::new();
            let cfg = SimConfig::builder()
                .injection_rate(0.05)
                .seed(11)
                .warmup_cycles(50)
                .measure_cycles(200)
                .drain_cycles(200)
                .build();
            let log = LogObserver::start_with_frames(&mesh, &routing, &pattern, &cfg, "sim", 64);
            let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, log);
            sim.run();
            let log = sim.into_observer();
            let frames = log.frames().to_vec();
            (log.finish(), frames)
        };
        let (a, frames) = record();
        let (b, _) = record();
        assert_eq!(a, b, "frame-enabled recording is deterministic");
        assert!(frames.len() >= 4, "sealed {} frames", frames.len());
        assert_eq!(frames[0].window_end - frames[0].window_start + 1, 64);
        assert!(frames.iter().any(|f| f.delivered_packets > 0));
        // The frame-enabled log strictly contains the plain log's bytes
        // plus frame events: same run without frames must be shorter.
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.05)
            .seed(11)
            .warmup_cycles(50)
            .measure_cycles(200)
            .drain_cycles(200)
            .build();
        let log = LogObserver::start(&mesh, &routing, &pattern, &cfg, "sim");
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, log);
        sim.run();
        let plain = sim.into_observer().finish();
        assert!(plain.len() < a.len());
    }

    #[test]
    fn header_parse_rejects_mangled_text() {
        use turnroute_routing::mesh2d;
        use turnroute_topology::Mesh;
        use turnroute_traffic::Uniform;
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::xy();
        let cfg = SimConfig::default();
        let text = LogHeader::describe(&mesh, &routing, &Uniform::new(), &cfg, "sim").to_text();
        assert!(LogHeader::parse(&text.replace("engine=", "motor=")).is_err());
        // Drop the last line entirely: a key goes missing.
        let cut = text.trim_end_matches('\n').rfind('\n').unwrap();
        assert!(LogHeader::parse(&text[..cut + 1]).is_err());
        assert!(LogHeader::parse(&format!("{text}extra=1\n")).is_err());
    }
}
