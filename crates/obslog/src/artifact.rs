//! The one shared results-artifact writer.
//!
//! Every text artifact the workspace's binaries emit (`exp`, `turnlint`,
//! `turnprove`, `turnstat`) goes through [`write_artifact`], which is the
//! single place byte-stability is enforced: parent directories are
//! created, and the file always ends with exactly one trailing newline.
//! [`JsonObject`] complements it for hand-rolled JSON: fields render in
//! sorted key order regardless of insertion order, so an artifact's bytes
//! never depend on code motion in its producer.

use std::io;
use std::path::Path;

/// `content` with exactly one trailing newline.
pub fn normalized(mut content: String) -> String {
    while content.ends_with('\n') {
        content.pop();
    }
    content.push('\n');
    content
}

/// Write a text artifact: create parent directories, normalize to exactly
/// one trailing newline, write atomically-enough for CI (single write).
pub fn write_artifact(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, normalized(content.to_string()))
}

/// A JSON object builder that renders its fields in sorted key order.
///
/// Values are raw JSON fragments (use [`string`] for string values), so
/// nested objects compose: build the inner object first and pass its
/// rendering as the value.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

/// Escape a string as a JSON string literal (shared with the simulator's
/// emitters — one escaping implementation in the workspace).
pub fn string(s: &str) -> String {
    turnroute_sim::obs::json::string(s)
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Add a field with a raw JSON fragment as its value.
    ///
    /// # Panics
    ///
    /// Panics if `key` was already set — duplicate keys in an artifact are
    /// always a producer bug.
    pub fn set(&mut self, key: &str, raw_value: impl Into<String>) -> &mut JsonObject {
        assert!(
            self.fields.iter().all(|(k, _)| k != key),
            "duplicate artifact key {key:?}"
        );
        self.fields.push((key.to_string(), raw_value.into()));
        self
    }

    /// Add a string-valued field (escaped).
    pub fn set_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.set(key, string(value))
    }

    /// Render the object with keys in sorted order.
    pub fn render(&self) -> String {
        let mut fields: Vec<&(String, String)> = self.fields.iter().collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_enforces_exactly_one_newline() {
        assert_eq!(normalized("x".into()), "x\n");
        assert_eq!(normalized("x\n".into()), "x\n");
        assert_eq!(normalized("x\n\n\n".into()), "x\n");
        assert_eq!(normalized(String::new()), "\n");
    }

    #[test]
    fn json_object_sorts_keys_and_escapes() {
        let mut o = JsonObject::new();
        o.set("zeta", "1")
            .set_str("alpha", "a\"b")
            .set("mid", "[2]");
        assert_eq!(o.render(), "{\"alpha\":\"a\\\"b\",\"mid\":[2],\"zeta\":1}");
        assert!(turnroute_sim::obs::json::validate(&o.render()));
    }

    #[test]
    #[should_panic(expected = "duplicate artifact key")]
    fn json_object_rejects_duplicate_keys() {
        let mut o = JsonObject::new();
        o.set("k", "1").set("k", "2");
    }

    #[test]
    fn write_artifact_creates_dirs_and_normalizes() {
        let dir = std::env::temp_dir().join("turntrace-artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.json");
        write_artifact(&path, "{\"a\":1}\n\n").expect("writes");
        let back = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(back, "{\"a\":1}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
