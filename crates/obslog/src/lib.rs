//! `turntrace`: recording/replay observability for the turn-model
//! simulators.
//!
//! Four pieces, layered on the engines' existing
//! [`turnroute_sim::SimObserver`] hooks:
//!
//! * [`log`] — an append-only binary event log. A [`log::LogObserver`]
//!   rides a run and serializes every hook firing (injections, turns,
//!   arbitration outcomes, fault transitions, drops, deliveries) behind a
//!   versioned header that names the configuration hash, seed, fault
//!   plan, and turn set, so a `.ttr` file is self-describing.
//! * [`replay()`] — a reader that re-drives *any* observer stack from a log
//!   without re-simulating. Recording the same `(config, seed)` twice
//!   yields byte-identical logs, and replaying a log through
//!   [`ReplayableAggregates`] reproduces the live run's aggregate
//!   artifacts byte for byte — the determinism contract `turnstat
//!   verify` enforces.
//! * [`frame_codec`] — the strict binary codec for the `turnscope`
//!   streaming telemetry frames a frame-enabled recorder
//!   ([`LogObserver::with_frames`]) seals into the stream, alongside
//!   per-packet latency-blame events and early-warning detector alerts.
//!   `turnstat frames` exports the stream as JSON-lines or windowed
//!   Prometheus text and cross-checks logged frames against re-derived
//!   ones.
//! * [`metrics`] — a labeled metrics registry (counters, gauges,
//!   streaming histograms) with Prometheus-style text exposition and
//!   key-ordered JSON snapshots; the PR 1 collectors (latency histogram,
//!   channel heatmap, turn census) export onto it.
//! * [`artifact`] — the one shared results-artifact writer: every file
//!   the workspace's binaries emit goes through it, which is where
//!   trailing-newline and key-ordering byte-stability is enforced.
//!
//! The `turnstat` binary in this crate records, summarizes, replays,
//! diffs, and verifies logs; `ci/check.sh` gates on it.
//!
//! # Example
//!
//! ```
//! use turnroute_obslog::{LogObserver, ReplayableAggregates, replay};
//! use turnroute_sim::{Sim, SimConfig};
//! use turnroute_sim::obs::ChannelLayout;
//! use turnroute_routing::{mesh2d, RoutingMode};
//! use turnroute_topology::Mesh;
//! use turnroute_traffic::Uniform;
//!
//! let mesh = Mesh::new_2d(4, 4);
//! let routing = mesh2d::west_first(RoutingMode::Minimal);
//! let pattern = Uniform::new();
//! let cfg = SimConfig::builder().injection_rate(0.05).seed(7)
//!     .warmup_cycles(50).measure_cycles(200).drain_cycles(200).build();
//! let layout = ChannelLayout::for_topology(&mesh);
//!
//! // Record a run with aggregates collected live.
//! let log = LogObserver::start(&mesh, &routing, &pattern, &cfg, "sim");
//! let live = ReplayableAggregates::new(layout);
//! let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, (log, live));
//! sim.run();
//! let (log, live) = sim.into_observer();
//! let bytes = log.finish();
//!
//! // Replay the log — no simulation — into a fresh aggregate stack.
//! let mut replayed = ReplayableAggregates::new(layout);
//! replay(&bytes, &mut replayed).unwrap();
//! assert_eq!(live.snapshot_json(), replayed.snapshot_json());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregates;
pub mod artifact;
pub mod frame_codec;
pub mod log;
pub mod metrics;
pub mod replay;
pub mod scenario;

pub use aggregates::ReplayableAggregates;
pub use log::{LogHeader, LogObserver};
pub use metrics::Registry;
pub use replay::{
    frame_offsets, replay, replay_bounded, summarize, verify_bytes, LogError, LogSummary,
};
