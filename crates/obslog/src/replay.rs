//! Replay: re-drive any observer stack from a recorded log, without
//! re-simulating.
//!
//! The reader validates the whole stream before dispatching a single
//! event: magic, version, header shape, the trailing FNV-1a-64 checksum,
//! and (while walking) every tag and varint. A log that fails any check is
//! rejected with a [`LogError`] — truncation and bit flips cannot silently
//! produce plausible-but-wrong aggregates.
//!
//! # Trust boundary
//!
//! A log is *evidence about a run*, not the run itself: replay reproduces
//! exactly what the recording observer saw (the hook stream), nothing
//! more. Anything an observer can compute — histograms, heatmaps, turn
//! censuses, counters — replays bit-identically; engine internals that
//! never crossed a hook (queue contents, RNG state) are not in the log and
//! cannot be reconstructed from it. `turnstat verify` checks integrity
//! and determinism; it does not prove the recorder was honest about the
//! simulation — trust in the log is trust in whoever recorded it.

use crate::log::{fnv1a64, tag, LogHeader, MAGIC, VERSION};
use turnroute_model::Turn;
use turnroute_sim::obs::{ChannelLayout, DeadlockSnapshot, StallReason, WaitEdge};
use turnroute_sim::{
    Alert, AlertKind, HealEvent, NoopObserver, PacketBlame, PacketId, SimObserver,
};
use turnroute_topology::{Direction, NodeId};

/// Why a byte stream was rejected as a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The stream does not start with the `TTRL` magic.
    BadMagic,
    /// The format version is one this reader does not understand.
    BadVersion(u16),
    /// The stream ends before its framing says it should.
    Truncated,
    /// The trailing FNV-1a-64 checksum does not match the stream.
    ChecksumMismatch,
    /// The header text is malformed.
    BadHeader(String),
    /// An unknown event tag was encountered.
    BadTag {
        /// Byte offset of the offending tag.
        offset: usize,
        /// The tag byte found there.
        tag: u8,
    },
    /// The trailer's event count disagrees with the events present.
    EventCountMismatch {
        /// Count declared in the trailer.
        declared: u64,
        /// Events actually decoded.
        actual: u64,
    },
    /// Bytes remain after the checksum.
    TrailingData,
    /// An embedded telemetry frame failed strict decoding (its declared
    /// payload length disagrees with its content, or its schema version
    /// is unknown).
    BadFrame {
        /// Byte offset of the frame event's tag.
        offset: usize,
        /// What the frame decoder objected to.
        why: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a turntrace log (bad magic)"),
            LogError::BadVersion(v) => write!(f, "unsupported log version {v}"),
            LogError::Truncated => write!(f, "log is truncated"),
            LogError::ChecksumMismatch => write!(f, "checksum mismatch (log is corrupt)"),
            LogError::BadHeader(why) => write!(f, "malformed header: {why}"),
            LogError::BadTag { offset, tag } => {
                write!(f, "unknown event tag {tag} at byte {offset}")
            }
            LogError::EventCountMismatch { declared, actual } => write!(
                f,
                "event count mismatch: trailer declares {declared}, found {actual}"
            ),
            LogError::TrailingData => write!(f, "trailing bytes after checksum"),
            LogError::BadFrame { offset, why } => {
                write!(f, "bad telemetry frame at byte {offset}: {why}")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// What a walk over a log established.
#[derive(Debug, Clone)]
pub struct LogSummary {
    /// The parsed header.
    pub header: LogHeader,
    /// Total events decoded (cycle advances included).
    pub events: u64,
    /// Final value of the cycle clock.
    pub cycles: u64,
    /// Total stream length in bytes.
    pub bytes: usize,
    /// Per-event-kind counts, in tag order.
    pub counts: Vec<(&'static str, u64)>,
}

impl LogSummary {
    /// The count for one event kind (0 if absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |&(_, n)| n)
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let h = &self.header;
        let mut out = format!(
            "turntrace log v{VERSION}: {} bytes, {} events, {} cycles\n\
             engine={} topology={} nodes={} dims={}\n\
             routing={} pattern={} seed={}\n\
             turns={}\n\
             config_hash={:016x} fault_events={}\n",
            self.bytes,
            self.events,
            self.cycles,
            h.engine,
            h.topology,
            h.nodes,
            h.dims,
            h.routing,
            h.pattern,
            h.seed,
            h.turns,
            h.config_hash,
            h.fault_events,
        );
        for (kind, n) in &self.counts {
            if *n > 0 {
                out.push_str(&format!("  {kind:>13} {n}\n"));
            }
        }
        out
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, LogError> {
        let b = *self.bytes.get(self.pos).ok_or(LogError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, LogError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(LogError::Truncated);
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn slot(&mut self) -> Result<usize, LogError> {
        Ok(self.varint()? as usize)
    }

    fn opt_slot(&mut self) -> Result<Option<usize>, LogError> {
        let v = self.varint()?;
        Ok(if v == 0 { None } else { Some(v as usize - 1) })
    }
}

/// Validate framing and checksum and parse the header, returning the
/// header and the byte range holding the event stream (trailer excluded).
fn parse_frame(bytes: &[u8]) -> Result<(LogHeader, usize), LogError> {
    if bytes.len() < MAGIC.len() + 2 + 4 {
        return Err(
            if bytes.starts_with(&MAGIC) || MAGIC.starts_with(&bytes[..bytes.len().min(4)]) {
                LogError::Truncated
            } else {
                LogError::BadMagic
            },
        );
    }
    if bytes[..4] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(LogError::BadVersion(version));
    }
    // Checksum first: it covers everything up to itself, so any damage —
    // header or body — surfaces as one unambiguous error.
    if bytes.len() < 10 + 8 {
        return Err(LogError::Truncated);
    }
    let body_end = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if fnv1a64(&bytes[..body_end]) != declared {
        return Err(LogError::ChecksumMismatch);
    }
    let header_len = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
    let events_at = 10 + header_len;
    if events_at > body_end {
        return Err(LogError::Truncated);
    }
    let text = std::str::from_utf8(&bytes[10..events_at])
        .map_err(|_| LogError::BadHeader("header is not UTF-8".to_string()))?;
    let header = LogHeader::parse(text).map_err(LogError::BadHeader)?;
    Ok((header, events_at))
}

/// Walk a validated log and re-fire every recorded hook into `obs`.
///
/// Events are dispatched exactly as the engine originally fired them, so
/// any [`SimObserver`] that derives its state purely from hooks (the
/// [`crate::ReplayableAggregates`] stack, a heatmap, a census…) ends up in
/// the same state it would have reached riding the live run.
pub fn replay<O: SimObserver>(bytes: &[u8], obs: &mut O) -> Result<LogSummary, LogError> {
    walk(bytes, obs, 0, u64::MAX, None)
}

/// [`replay`] restricted to the cycle window `[from, to]` (inclusive).
///
/// The *whole* stream is still parsed and validated — framing, checksum,
/// every tag, the trailer count — but hooks are dispatched, and events
/// counted in the summary, only for cycles inside the window. This backs
/// `turnstat summarize --from/--to`: integrity is never windowed, only
/// attention.
pub fn replay_bounded<O: SimObserver>(
    bytes: &[u8],
    obs: &mut O,
    from: u64,
    to: u64,
) -> Result<LogSummary, LogError> {
    walk(bytes, obs, from, to, None)
}

/// Byte offsets of every `Frame` event's tag in a valid log, in stream
/// order. Used by the `turnstat frames --inject-bad` self-test to tamper
/// with a frame's declared payload length precisely.
pub fn frame_offsets(bytes: &[u8]) -> Result<Vec<usize>, LogError> {
    let mut offsets = Vec::new();
    walk(bytes, &mut NoopObserver, 0, u64::MAX, Some(&mut offsets))?;
    Ok(offsets)
}

fn walk<O: SimObserver>(
    bytes: &[u8],
    obs: &mut O,
    from: u64,
    to: u64,
    mut frame_tags: Option<&mut Vec<usize>>,
) -> Result<LogSummary, LogError> {
    let (header, events_at) = parse_frame(bytes)?;
    let layout = ChannelLayout::new(header.nodes as usize, header.dims as usize);
    let mut cur = Cursor {
        bytes: &bytes[..bytes.len() - 8],
        pos: events_at,
    };
    let mut now = 0u64;
    let mut total = 0u64;
    let mut events = 0u64;
    let mut counts = [0u64; 22];
    loop {
        let at = cur.pos;
        let t = cur.u8()?;
        if t == tag::END {
            let declared = cur.varint()?;
            if declared != total {
                return Err(LogError::EventCountMismatch {
                    declared,
                    actual: total,
                });
            }
            if cur.pos != cur.bytes.len() {
                return Err(LogError::TrailingData);
            }
            break;
        }
        total += 1;
        if t == tag::CYCLE_ADVANCE {
            now += cur.varint()?;
            if now >= from && now <= to {
                events += 1;
                counts[usize::from(tag::CYCLE_ADVANCE)] += 1;
            }
            continue;
        }
        let in_bounds = now >= from && now <= to;
        if in_bounds {
            events += 1;
            counts[usize::from(t.min(21))] += 1;
        }
        match t {
            tag::INJECT => {
                let (p, src, dst, len) =
                    (cur.varint()?, cur.varint()?, cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_inject(
                        now,
                        PacketId(p as u32),
                        NodeId(src as u32),
                        NodeId(dst as u32),
                        len as u32,
                    );
                }
            }
            tag::FLIT_SOURCE => {
                let (slot, p, tail) = (cur.slot()?, cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_flit_source(now, slot, PacketId(p as u32), tail != 0);
                }
            }
            tag::ADVANCE => {
                let (from, to, p, tail) =
                    (cur.slot()?, cur.opt_slot()?, cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_flit_advance(now, from, to, PacketId(p as u32), tail != 0);
                }
            }
            tag::TURN => {
                let (p, node, from, to) = (cur.varint()?, cur.varint()?, cur.slot()?, cur.slot()?);
                if in_bounds {
                    obs.on_turn(
                        now,
                        PacketId(p as u32),
                        NodeId(node as u32),
                        Turn::new(Direction::from_index(from), Direction::from_index(to)),
                    );
                }
            }
            tag::MISROUTE => {
                let (p, node, dir) = (cur.varint()?, cur.varint()?, cur.slot()?);
                if in_bounds {
                    obs.on_misroute(
                        now,
                        PacketId(p as u32),
                        NodeId(node as u32),
                        Direction::from_index(dir),
                    );
                }
            }
            tag::STALL => {
                let (slot, p, reason) = (cur.slot()?, cur.varint()?, cur.varint()?);
                let reason = match reason {
                    0 => StallReason::NotRouted,
                    1 => StallReason::Backpressure,
                    _ => return Err(LogError::BadTag { offset: at, tag: t }),
                };
                if in_bounds {
                    obs.on_stall(now, slot, PacketId(p as u32), reason);
                }
            }
            tag::DELIVER => {
                let (p, latency, hops) = (cur.varint()?, cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_deliver(now, PacketId(p as u32), latency, hops as u32);
                }
            }
            tag::BLAME => {
                let (p, queue, blocked, service, misroute) = (
                    cur.varint()?,
                    cur.varint()?,
                    cur.varint()?,
                    cur.varint()?,
                    cur.varint()?,
                );
                if in_bounds {
                    obs.on_blame(
                        now,
                        PacketId(p as u32),
                        PacketBlame {
                            queue_cycles: queue,
                            blocked_cycles: blocked,
                            service_cycles: service,
                            misroute_cycles: misroute,
                        },
                    );
                }
            }
            tag::FRAME => {
                if let Some(offsets) = frame_tags.as_deref_mut() {
                    offsets.push(at);
                }
                let len = cur.varint()? as usize;
                let start = cur.pos;
                let end = start.checked_add(len).ok_or(LogError::Truncated)?;
                if end > cur.bytes.len() {
                    return Err(LogError::Truncated);
                }
                let frame = crate::frame_codec::decode_frame_payload(&cur.bytes[start..end])
                    .map_err(|why| LogError::BadFrame { offset: at, why })?;
                cur.pos = end;
                if in_bounds {
                    obs.on_frame(now, &frame);
                }
            }
            tag::ALERT => {
                let (code, seq, cycle, slot, value, threshold) = (
                    cur.varint()?,
                    cur.varint()?,
                    cur.varint()?,
                    cur.opt_slot()?,
                    cur.varint()?,
                    cur.varint()?,
                );
                let kind = AlertKind::from_code(code).ok_or_else(|| LogError::BadFrame {
                    offset: at,
                    why: format!("unknown alert kind {code}"),
                })?;
                if in_bounds {
                    obs.on_alert(
                        now,
                        &Alert {
                            kind,
                            seq,
                            cycle,
                            slot,
                            value,
                            threshold,
                        },
                    );
                }
            }
            tag::FAULT => {
                let (slot, active) = (cur.slot()?, cur.varint()?);
                if in_bounds {
                    obs.on_fault(now, slot, active != 0);
                }
            }
            tag::DROP => {
                let (p, unroutable) = (cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_drop(now, PacketId(p as u32), unroutable != 0);
                }
            }
            tag::PURGE => {
                let p = cur.varint()?;
                if in_bounds {
                    obs.on_purge(now, PacketId(p as u32));
                }
            }
            tag::CYCLE_END => {
                if in_bounds {
                    obs.on_cycle_end(now);
                }
            }
            tag::DEADLOCK => {
                let n = cur.varint()? as usize;
                let mut edges = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    edges.push(WaitEdge {
                        channel: cur.slot()?,
                        packet: cur.varint()? as u32,
                        buffered: cur.slot()?,
                        head_waiting: cur.varint()? != 0,
                        waits_for: cur.opt_slot()?,
                    });
                }
                if in_bounds {
                    let snapshot = DeadlockSnapshot { now, layout, edges };
                    obs.on_deadlock(now, &snapshot);
                }
            }
            tag::HEAL_EPOCH => {
                let (epoch, transitions) = (cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_heal(
                        now,
                        HealEvent::EpochOpen {
                            epoch: epoch as u32,
                            transitions: transitions as u32,
                        },
                    );
                }
            }
            tag::HEAL_PROOF => {
                let (epoch, latency, incremental, acyclic) =
                    (cur.varint()?, cur.varint()?, cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_heal(
                        now,
                        HealEvent::Proof {
                            epoch: epoch as u32,
                            latency,
                            incremental: incremental != 0,
                            acyclic: acyclic != 0,
                        },
                    );
                }
            }
            tag::HEAL_CERT => {
                let (epoch, hash) = (cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_heal(
                        now,
                        HealEvent::Certificate {
                            epoch: epoch as u32,
                            hash,
                        },
                    );
                }
            }
            tag::HEAL_SWAP => {
                let epoch = cur.varint()?;
                if in_bounds {
                    obs.on_heal(
                        now,
                        HealEvent::TableSwap {
                            epoch: epoch as u32,
                        },
                    );
                }
            }
            tag::HEAL_QUARANTINE => {
                let (epoch, slot, on) = (cur.varint()?, cur.varint()?, cur.varint()?);
                if in_bounds {
                    obs.on_heal(
                        now,
                        HealEvent::Quarantine {
                            epoch: epoch as u32,
                            slot: slot as u32,
                            on: on != 0,
                        },
                    );
                }
            }
            _ => return Err(LogError::BadTag { offset: at, tag: t }),
        }
    }
    Ok(LogSummary {
        header,
        events,
        cycles: now,
        bytes: bytes.len(),
        counts: vec![
            ("cycle_advance", counts[1]),
            ("inject", counts[2]),
            ("flit_source", counts[3]),
            ("advance", counts[4]),
            ("turn", counts[5]),
            ("misroute", counts[6]),
            ("stall", counts[7]),
            ("deliver", counts[8]),
            ("fault", counts[9]),
            ("drop", counts[10]),
            ("purge", counts[11]),
            ("cycle_end", counts[12]),
            ("deadlock", counts[13]),
            ("heal_epoch", counts[14]),
            ("heal_proof", counts[15]),
            ("heal_cert", counts[16]),
            ("heal_swap", counts[17]),
            ("heal_quarantine", counts[18]),
            ("blame", counts[19]),
            ("frame", counts[20]),
            ("alert", counts[21]),
        ],
    })
}

/// Walk a log without driving any observer; returns the summary.
pub fn summarize(bytes: &[u8]) -> Result<LogSummary, LogError> {
    replay(bytes, &mut NoopObserver)
}

/// Full integrity check: framing, checksum, header, and a complete walk of
/// every event. Alias of [`summarize`] — validation *is* the walk.
pub fn verify_bytes(bytes: &[u8]) -> Result<LogSummary, LogError> {
    summarize(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogObserver;
    use turnroute_routing::{mesh2d, RoutingMode};
    use turnroute_sim::{Sim, SimConfig};
    use turnroute_topology::Mesh;
    use turnroute_traffic::Uniform;

    fn record(seed: u64) -> Vec<u8> {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.05)
            .seed(seed)
            .warmup_cycles(50)
            .measure_cycles(200)
            .drain_cycles(200)
            .build();
        let log = LogObserver::start(&mesh, &routing, &pattern, &cfg, "sim");
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, log);
        sim.run();
        sim.into_observer().finish()
    }

    #[test]
    fn recorded_log_verifies_and_summarizes() {
        let bytes = record(11);
        let s = verify_bytes(&bytes).expect("valid log");
        assert_eq!(s.header.seed, 11);
        assert!(s.count("inject") > 0);
        assert!(s.count("deliver") > 0);
        assert!(s.count("cycle_end") > 0);
        // 50 + 200 + 200 cycles, numbered 0..=449.
        assert_eq!(s.cycles, 449);
        assert!(s.render().contains("deliver"));
    }

    #[test]
    fn same_seed_twice_is_byte_identical_different_seed_is_not() {
        let a = record(11);
        let b = record(11);
        let c = record(12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn truncation_is_rejected_at_any_length() {
        let bytes = record(3);
        for cut in [
            0,
            2,
            6,
            9,
            bytes.len() / 2,
            bytes.len() - 9,
            bytes.len() - 1,
        ] {
            assert!(
                verify_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected_everywhere() {
        let bytes = record(3);
        // Flip one bit in the magic, the header, the body, and the
        // trailer; every single one must be caught.
        for at in [0, 12, bytes.len() / 2, bytes.len() - 4] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(
                verify_bytes(&bad).is_err(),
                "bit flip at byte {at} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = record(3);
        bytes.push(0xab);
        assert!(verify_bytes(&bytes).is_err());
    }

    #[test]
    fn event_count_mismatch_is_detected() {
        // Re-seal a log with a wrong trailer count but a fresh (valid)
        // checksum: only the count walk can catch it.
        let bytes = record(3);
        let mut bad = bytes[..bytes.len() - 8].to_vec();
        // Trailer is END tag + varint count; bump the first count byte's
        // low bits without touching continuation. Find the END tag by
        // re-walking is overkill — instead append a fresh END with a bogus
        // count after stripping the old trailer bytes.
        // Strip existing END+varint: walk back over the varint.
        let mut i = bad.len() - 1;
        while bad[i] & 0x80 != 0 {
            i -= 1;
        }
        // i now points at the last varint byte; scan back to the END tag.
        let mut j = i;
        while j > 0 && bad[j - 1] & 0x80 != 0 {
            j -= 1;
        }
        bad.truncate(j - 1);
        bad.push(super::tag::END);
        crate::log::write_varint(&mut bad, 1);
        let sum = fnv1a64(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            verify_bytes(&bad),
            Err(LogError::EventCountMismatch { declared: 1, .. })
        ));
    }

    #[test]
    fn heal_events_round_trip_through_the_log() {
        use crate::log::LogHeader;
        use turnroute_sim::HealEvent;

        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let cfg = SimConfig::builder().seed(1).build();
        let header = LogHeader::describe(&mesh, &routing, &Uniform::new(), &cfg, "sim");
        let fired = vec![
            (
                0u64,
                HealEvent::EpochOpen {
                    epoch: 0,
                    transitions: 0,
                },
            ),
            (
                0,
                HealEvent::Proof {
                    epoch: 0,
                    latency: 3,
                    incremental: false,
                    acyclic: true,
                },
            ),
            (
                0,
                HealEvent::Certificate {
                    epoch: 0,
                    hash: 0xdead_beef_cafe_f00d,
                },
            ),
            (0, HealEvent::TableSwap { epoch: 0 }),
            (
                500,
                HealEvent::EpochOpen {
                    epoch: 1,
                    transitions: 2,
                },
            ),
            (
                517,
                HealEvent::Proof {
                    epoch: 1,
                    latency: 17,
                    incremental: true,
                    acyclic: false,
                },
            ),
            (
                517,
                HealEvent::Quarantine {
                    epoch: 1,
                    slot: 42,
                    on: true,
                },
            ),
            (
                900,
                HealEvent::Quarantine {
                    epoch: 2,
                    slot: 42,
                    on: false,
                },
            ),
        ];
        let mut log = LogObserver::with_header(&header);
        for &(now, ev) in &fired {
            log.on_heal(now, ev);
        }
        let bytes = log.finish();

        struct Collect(Vec<(u64, HealEvent)>);
        impl SimObserver for Collect {
            fn on_heal(&mut self, now: u64, ev: HealEvent) {
                self.0.push((now, ev));
            }
        }
        let mut got = Collect(Vec::new());
        let s = replay(&bytes, &mut got).expect("valid log");
        assert_eq!(got.0, fired, "replay must reconstruct every heal event");
        assert_eq!(s.count("heal_epoch"), 2);
        assert_eq!(s.count("heal_proof"), 2);
        assert_eq!(s.count("heal_cert"), 1);
        assert_eq!(s.count("heal_swap"), 1);
        assert_eq!(s.count("heal_quarantine"), 2);
        assert_eq!(s.cycles, 900);
        assert!(s.render().contains("heal_cert"));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(LogError::BadMagic.to_string().contains("magic"));
        assert!(LogError::ChecksumMismatch.to_string().contains("corrupt"));
        assert!(LogError::BadVersion(9).to_string().contains('9'));
        assert!(LogError::BadFrame {
            offset: 7,
            why: "nope".to_string()
        }
        .to_string()
        .contains("byte 7"));
    }

    /// Record the standard small run with frames at cadence 64 and return
    /// (bytes, live frames, live alerts).
    fn record_with_frames(
        seed: u64,
    ) -> (
        Vec<u8>,
        Vec<turnroute_sim::TelemetryFrame>,
        Vec<turnroute_sim::Alert>,
    ) {
        let mesh = Mesh::new_2d(4, 4);
        let routing = mesh2d::west_first(RoutingMode::Minimal);
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.05)
            .seed(seed)
            .warmup_cycles(50)
            .measure_cycles(200)
            .drain_cycles(200)
            .build();
        let log = LogObserver::start_with_frames(&mesh, &routing, &pattern, &cfg, "sim", 64);
        let mut sim = Sim::with_observer(&mesh, &routing, &pattern, cfg, log);
        sim.run();
        let log = sim.into_observer();
        let frames = log.frames().to_vec();
        let alerts = log.alerts().to_vec();
        (log.finish(), frames, alerts)
    }

    /// Collects decoded frame/alert events and re-derives frames from the
    /// raw hook stream at the same time.
    struct FrameCompare {
        logged: Vec<turnroute_sim::TelemetryFrame>,
        logged_alerts: Vec<turnroute_sim::Alert>,
        rederived: turnroute_sim::FrameCollector,
        blames: u64,
    }

    impl SimObserver for FrameCompare {
        fn on_inject(&mut self, now: u64, packet: PacketId, src: NodeId, dst: NodeId, len: u32) {
            self.rederived.on_inject(now, packet, src, dst, len);
        }
        fn on_flit_advance(
            &mut self,
            now: u64,
            from: usize,
            to: Option<usize>,
            packet: PacketId,
            is_tail: bool,
        ) {
            self.rederived
                .on_flit_advance(now, from, to, packet, is_tail);
        }
        fn on_stall(&mut self, now: u64, slot: usize, packet: PacketId, reason: StallReason) {
            self.rederived.on_stall(now, slot, packet, reason);
        }
        fn on_deliver(&mut self, now: u64, packet: PacketId, latency: u64, hops: u32) {
            self.rederived.on_deliver(now, packet, latency, hops);
        }
        fn on_drop(&mut self, now: u64, packet: PacketId, unroutable: bool) {
            self.rederived.on_drop(now, packet, unroutable);
        }
        fn on_purge(&mut self, now: u64, packet: PacketId) {
            self.rederived.on_purge(now, packet);
        }
        fn on_heal(&mut self, now: u64, ev: HealEvent) {
            self.rederived.on_heal(now, ev);
        }
        fn on_cycle_end(&mut self, now: u64) {
            self.rederived.on_cycle_end(now);
        }
        fn on_blame(&mut self, _now: u64, _packet: PacketId, blame: PacketBlame) {
            self.blames += 1;
            assert!(blame.total() > 0);
        }
        fn on_frame(&mut self, _now: u64, frame: &turnroute_sim::TelemetryFrame) {
            self.logged.push(frame.clone());
        }
        fn on_alert(&mut self, _now: u64, alert: &turnroute_sim::Alert) {
            self.logged_alerts.push(*alert);
        }
    }

    #[test]
    fn replayed_frames_match_live_frames_exactly() {
        let (bytes, live_frames, live_alerts) = record_with_frames(11);
        assert!(!live_frames.is_empty());
        let mut cmp = FrameCompare {
            logged: Vec::new(),
            logged_alerts: Vec::new(),
            // Deliberately undersized: the collector must grow itself
            // from the hook stream.
            rederived: turnroute_sim::FrameCollector::new(1, 64),
            blames: 0,
        };
        let s = replay(&bytes, &mut cmp).expect("valid log");
        assert_eq!(cmp.logged, live_frames, "decoded frames == live frames");
        assert_eq!(cmp.logged_alerts, live_alerts);
        assert_eq!(
            cmp.rederived.frames(),
            &live_frames[..],
            "hook-rederived frames == live frames"
        );
        assert_eq!(s.count("frame"), live_frames.len() as u64);
        assert_eq!(s.count("blame"), s.count("deliver"));
        assert_eq!(cmp.blames, s.count("deliver"));
    }

    #[test]
    fn bounded_replay_windows_attention_not_integrity() {
        let (bytes, _, _) = record_with_frames(11);
        let full = summarize(&bytes).expect("valid");
        let s = replay_bounded(&bytes, &mut NoopObserver, 100, 199).expect("valid");
        assert_eq!(s.count("cycle_end"), 100);
        assert!(s.events < full.events);
        assert!(s.count("deliver") < full.count("deliver"));
        assert_eq!(s.cycles, full.cycles, "final clock is not windowed");
        // An empty window still validates the whole stream.
        let empty = replay_bounded(&bytes, &mut NoopObserver, 10_000, 20_000).expect("valid");
        assert_eq!(empty.events, 0);
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(replay_bounded(&bad, &mut NoopObserver, 10_000, 20_000).is_err());
    }

    #[test]
    fn tampered_frame_length_is_rejected_even_behind_a_fresh_checksum() {
        let (bytes, live_frames, _) = record_with_frames(11);
        let offsets = frame_offsets(&bytes).expect("valid log");
        assert_eq!(offsets.len(), live_frames.len());
        // Shrink the first frame's declared payload length by one and
        // re-seal the checksum: only strict frame decoding can catch it.
        let mut bad = bytes[..bytes.len() - 8].to_vec();
        // Nudge the declared length by one (the low bits of the first
        // varint byte), whatever the varint's width.
        let len_at = offsets[0] + 1;
        if bad[len_at] & 0x7f != 0 {
            bad[len_at] -= 1;
        } else {
            bad[len_at] += 1;
        }
        let sum = fnv1a64(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        let err = verify_bytes(&bad).expect_err("tampered frame length must be rejected");
        assert!(
            matches!(
                err,
                LogError::BadFrame { .. } | LogError::BadTag { .. } | LogError::Truncated
            ),
            "unexpected rejection {err:?}"
        );
    }
}
