//! A labeled metrics registry with Prometheus-style text exposition and
//! key-ordered JSON snapshots.
//!
//! Metrics are named series of counters, gauges, or streaming histograms,
//! each optionally labeled. Storage is `BTreeMap`-backed and label sets
//! are canonicalized (sorted by key), so both expositions are
//! byte-deterministic: the same recorded values render the same bytes, no
//! matter in what order code touched the registry.

use crate::artifact;
use std::collections::BTreeMap;
use turnroute_sim::obs::{ChannelHeatmap, StreamingHistogram, TurnCensus};
use turnroute_sim::{Alert, SimReport, TelemetryFrame};

/// One recorded value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(StreamingHistogram),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Metric {
    help: String,
    /// Keyed by the canonical label rendering (`k="v",k2="v2"`), which
    /// sorts series deterministically.
    series: BTreeMap<String, Value>,
}

/// A registry of labeled metrics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

/// Canonical label rendering: sorted by key, Prometheus-style quoting.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut labels: Vec<&(&str, &str)> = labels.iter().collect();
    labels.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

/// Render a float for both expositions: Rust's shortest-round-trip
/// `Display` is deterministic and never uses scientific notation in the
/// ranges these metrics occupy.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn entry(&mut self, name: &str, help: &str) -> &mut Metric {
        debug_assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name:?}"
        );
        self.metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric {
                help: help.to_string(),
                series: BTreeMap::new(),
            })
    }

    /// Add `v` to a counter series, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        let slot = self
            .entry(name, help)
            .series
            .entry(label_key(labels))
            .or_insert(Value::Counter(0));
        match slot {
            Value::Counter(c) => *c += v,
            other => panic!("{name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Set a gauge series to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let slot = self
            .entry(name, help)
            .series
            .entry(label_key(labels))
            .or_insert(Value::Gauge(0.0));
        match slot {
            Value::Gauge(g) => *g = v,
            other => panic!("{name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Record one sample into a histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn histogram_record(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        let slot = self
            .entry(name, help)
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Value::Histogram(StreamingHistogram::new()));
        match slot {
            Value::Histogram(h) => h.record(v),
            other => panic!("{name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Merge a whole [`StreamingHistogram`] into a histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different type.
    pub fn histogram_merge(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        other: &StreamingHistogram,
    ) {
        let slot = self
            .entry(name, help)
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Value::Histogram(StreamingHistogram::new()));
        match slot {
            Value::Histogram(h) => h.merge(other),
            other => panic!("{name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Number of registered metric names.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Prometheus text exposition (`# HELP` / `# TYPE` / samples).
    /// Histograms expose cumulative `_bucket{le=...}`, `_sum`, and
    /// `_count` samples using the streaming histogram's own bucket upper
    /// bounds.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            let type_name = m.series.values().next().map_or("gauge", Value::type_name);
            out.push_str(&format!("# HELP {name} {}\n", m.help.replace('\n', " ")));
            out.push_str(&format!("# TYPE {name} {type_name}\n"));
            for (labels, value) in &m.series {
                match value {
                    Value::Counter(c) => {
                        out.push_str(&sample(name, labels, &c.to_string()));
                    }
                    Value::Gauge(g) => {
                        out.push_str(&sample(name, labels, &fmt_f64(*g)));
                    }
                    Value::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (_, hi, c) in h.buckets() {
                            cumulative += c;
                            let le = format!("le=\"{hi}\"");
                            let all = if labels.is_empty() {
                                le
                            } else {
                                format!("{labels},{le}")
                            };
                            out.push_str(&sample(
                                &format!("{name}_bucket"),
                                &all,
                                &cumulative.to_string(),
                            ));
                        }
                        let le = "le=\"+Inf\"".to_string();
                        let all = if labels.is_empty() {
                            le
                        } else {
                            format!("{labels},{le}")
                        };
                        out.push_str(&sample(
                            &format!("{name}_bucket"),
                            &all,
                            &h.count().to_string(),
                        ));
                        out.push_str(&sample(
                            &format!("{name}_sum"),
                            labels,
                            &h.sum().to_string(),
                        ));
                        out.push_str(&sample(
                            &format!("{name}_count"),
                            labels,
                            &h.count().to_string(),
                        ));
                    }
                }
            }
        }
        out
    }

    /// The registry as one key-ordered JSON object.
    pub fn json_snapshot(&self) -> String {
        let mut metrics = artifact::JsonObject::new();
        for (name, m) in &self.metrics {
            let mut series = String::from("[");
            for (i, (labels, value)) in m.series.iter().enumerate() {
                if i > 0 {
                    series.push(',');
                }
                let value_json = match value {
                    Value::Counter(c) => c.to_string(),
                    Value::Gauge(g) => fmt_f64(*g),
                    Value::Histogram(h) => h.to_json(),
                };
                series.push_str(&format!(
                    "{{\"labels\":{},\"value\":{}}}",
                    artifact::string(labels),
                    value_json
                ));
            }
            series.push(']');
            let mut obj = artifact::JsonObject::new();
            obj.set_str("help", &m.help);
            obj.set_str(
                "type",
                m.series.values().next().map_or("gauge", Value::type_name),
            );
            obj.set("series", series);
            metrics.set(name, obj.render());
        }
        let mut root = artifact::JsonObject::new();
        root.set("metrics", metrics.render());
        root.render()
    }
}

fn sample(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

/// Export a [`ChannelHeatmap`] onto `reg`: total and per-channel load and
/// stall counters labeled by channel name.
pub fn export_heatmap(reg: &mut Registry, heatmap: &ChannelHeatmap) {
    let layout = heatmap.layout();
    reg.counter_add(
        "turnroute_flits_total",
        "Flits that entered any channel buffer",
        &[],
        heatmap.total_load(),
    );
    reg.counter_add(
        "turnroute_stall_cycles_total",
        "Cycles any occupied channel failed to advance",
        &[],
        heatmap.total_stall_cycles(),
    );
    for slot in 0..layout.num_channels {
        let load = heatmap.load(slot);
        let stalls = heatmap.stall_cycles(slot);
        if load == 0 && stalls == 0 {
            continue;
        }
        let name = layout.describe(slot);
        if load > 0 {
            reg.counter_add(
                "turnroute_channel_load_total",
                "Flits that entered this channel's buffer",
                &[("channel", &name)],
                load,
            );
        }
        if heatmap.stall_not_routed(slot) > 0 {
            reg.counter_add(
                "turnroute_channel_stall_cycles_total",
                "Stall cycles on this channel, by cause",
                &[("channel", &name), ("reason", "not_routed")],
                heatmap.stall_not_routed(slot),
            );
        }
        if heatmap.stall_backpressure(slot) > 0 {
            reg.counter_add(
                "turnroute_channel_stall_cycles_total",
                "Stall cycles on this channel, by cause",
                &[("channel", &name), ("reason", "backpressure")],
                heatmap.stall_backpressure(slot),
            );
        }
    }
}

/// Export a [`TurnCensus`] onto `reg`: totals by kind and per-turn
/// counters labeled by the turn's rendering.
pub fn export_census(reg: &mut Registry, census: &TurnCensus) {
    let (straight, ninety, one_eighty) = census.by_kind();
    for (kind, n) in [
        ("straight", straight),
        ("ninety", ninety),
        ("one_eighty", one_eighty),
    ] {
        reg.counter_add(
            "turnroute_turns_total",
            "Turns taken by headers, by turn kind",
            &[("kind", kind)],
            n,
        );
    }
    for (turn, n) in census.nonzero() {
        reg.counter_add(
            "turnroute_turn_taken_total",
            "Times this direction pair was taken",
            &[("turn", &turn.to_string())],
            n,
        );
    }
}

/// Export a latency histogram onto `reg` as `turnroute_latency_cycles`.
pub fn export_latency(reg: &mut Registry, hist: &StreamingHistogram) {
    reg.histogram_merge(
        "turnroute_latency_cycles",
        "Packet latency, creation to tail consumption, in cycles",
        &[],
        hist,
    );
}

/// Export a telemetry frame stream onto `reg` as *windowed* series:
/// per-frame gauges and latency histograms labeled by frame `seq`, plus
/// alert counters by detector kind. This is the `turnstat frames --prom`
/// exposition — one sample per window, so a scraper (or a human with
/// grep) can see the congestion trajectory, not just run totals.
pub fn export_frames(reg: &mut Registry, frames: &[TelemetryFrame], alerts: &[Alert]) {
    for f in frames {
        let seq = f.seq.to_string();
        let labels: [(&str, &str); 1] = [("seq", seq.as_str())];
        for (name, help, v) in [
            (
                "turnroute_frame_injected_packets",
                "Packets injected during the frame window",
                f.injected_packets,
            ),
            (
                "turnroute_frame_delivered_packets",
                "Packets delivered during the frame window",
                f.delivered_packets,
            ),
            (
                "turnroute_frame_dropped_packets",
                "Packets dropped during the frame window",
                f.dropped_packets,
            ),
            (
                "turnroute_frame_in_flight_packets",
                "Packets in flight at frame seal time",
                f.in_flight_packets,
            ),
            (
                "turnroute_frame_open_heal_epochs",
                "Healing epochs open at frame seal time",
                f.open_heal_epochs,
            ),
            (
                "turnroute_frame_blocked_mass",
                "Blocked-cycle mass across all channels in the window",
                f.blocked_mass(),
            ),
            (
                "turnroute_frame_window_end",
                "Last cycle the frame window covers",
                f.window_end,
            ),
        ] {
            reg.gauge_set(name, help, &labels, v as f64);
        }
        if f.latency.count() > 0 {
            reg.histogram_merge(
                "turnroute_frame_latency_cycles",
                "Latency of deliveries inside the frame window, in cycles",
                &labels,
                &f.latency,
            );
        }
    }
    reg.counter_add(
        "turnroute_frames_exported_total",
        "Telemetry frames in this exposition",
        &[],
        frames.len() as u64,
    );
    for a in alerts {
        reg.counter_add(
            "turnroute_alerts_by_kind_total",
            "Early-warning alerts, by detector kind",
            &[("kind", a.kind.name())],
            1,
        );
    }
}

/// Export a [`SimReport`]'s headline numbers onto `reg` as gauges.
pub fn export_report(reg: &mut Registry, report: &SimReport) {
    let g = [
        (
            "turnroute_report_generated_packets",
            "Packets generated",
            report.generated_packets as f64,
        ),
        (
            "turnroute_report_delivered_packets",
            "Packets delivered",
            report.delivered_packets as f64,
        ),
        (
            "turnroute_report_dropped_packets",
            "Packets dropped",
            report.dropped_packets as f64,
        ),
        (
            "turnroute_report_avg_latency_cycles",
            "Mean packet latency in cycles",
            report.avg_latency_cycles,
        ),
        (
            "turnroute_report_p99_latency_cycles",
            "p99 packet latency in cycles",
            report.p99_latency_cycles,
        ),
        (
            "turnroute_report_avg_hops",
            "Mean hops per delivered packet",
            report.avg_hops,
        ),
        (
            "turnroute_report_deadlocked",
            "1 when the run ended in deadlock",
            f64::from(u8::from(report.deadlocked)),
        ),
    ];
    for (name, help, v) in g {
        reg.gauge_set(name, help, &[], v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_deterministic_under_insertion_order() {
        let mut a = Registry::new();
        a.counter_add("z_total", "z", &[("b", "2"), ("a", "1")], 5);
        a.gauge_set("a_gauge", "a", &[], 1.5);
        let mut b = Registry::new();
        b.gauge_set("a_gauge", "a", &[], 1.5);
        b.counter_add("z_total", "z", &[("a", "1"), ("b", "2")], 5);
        assert_eq!(a.prometheus_text(), b.prometheus_text());
        assert_eq!(a.json_snapshot(), b.json_snapshot());
        assert!(a.prometheus_text().starts_with("# HELP a_gauge a\n"));
        assert!(a.prometheus_text().contains("z_total{a=\"1\",b=\"2\"} 5\n"));
    }

    #[test]
    fn histogram_exposes_cumulative_buckets() {
        let mut r = Registry::new();
        for v in [1u64, 1, 5, 40] {
            r.histogram_record("lat", "latency", &[], v);
        }
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"5\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_sum 47\n"));
        assert!(text.contains("lat_count 4\n"));
        assert!(turnroute_sim::obs::json::validate(&r.json_snapshot()));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.counter_add("c_total", "c", &[("name", "a\"b\\c")], 1);
        assert!(r
            .prometheus_text()
            .contains("c_total{name=\"a\\\"b\\\\c\"} 1\n"));
        assert!(turnroute_sim::obs::json::validate(&r.json_snapshot()));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = Registry::new();
        r.gauge_set("m", "m", &[], 1.0);
        r.counter_add("m", "m", &[], 1);
    }

    #[test]
    fn collector_exports_land_on_the_registry() {
        use turnroute_sim::obs::ChannelLayout;
        use turnroute_sim::PacketId;
        use turnroute_sim::SimObserver;
        let layout = ChannelLayout::new(4, 2);
        let mut heatmap = ChannelHeatmap::new(layout);
        heatmap.on_flit_advance(0, 0, Some(5), PacketId(0), false);
        let mut census = TurnCensus::new(2);
        census.on_turn(
            0,
            PacketId(0),
            turnroute_topology::NodeId(0),
            turnroute_model::Turn::new(
                turnroute_topology::Direction::EAST,
                turnroute_topology::Direction::NORTH,
            ),
        );
        let mut hist = StreamingHistogram::new();
        hist.record(10);
        let mut reg = Registry::new();
        export_heatmap(&mut reg, &heatmap);
        export_census(&mut reg, &census);
        export_latency(&mut reg, &hist);
        let text = reg.prometheus_text();
        assert!(text.contains("turnroute_flits_total 1"));
        assert!(text.contains("turnroute_turns_total{kind=\"ninety\"} 1"));
        assert!(text.contains("turnroute_latency_cycles_count 1"));
    }

    #[test]
    fn empty_registry_exposes_empty_but_valid_documents() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.prometheus_text(), "");
        assert_eq!(r.json_snapshot(), "{\"metrics\":{}}");
        assert!(turnroute_sim::obs::json::validate(&r.json_snapshot()));
    }

    #[test]
    fn every_escapable_label_character_is_escaped() {
        // Backslash, double quote, and newline each have a dedicated
        // escape in the Prometheus exposition; all three must survive a
        // round trip through one label value without colliding.
        let mut r = Registry::new();
        r.counter_add("esc_total", "e", &[("v", "back\\slash")], 1);
        r.counter_add("esc_total", "e", &[("v", "quo\"te")], 2);
        r.counter_add("esc_total", "e", &[("v", "new\nline")], 3);
        let text = r.prometheus_text();
        assert!(text.contains("esc_total{v=\"back\\\\slash\"} 1\n"));
        assert!(text.contains("esc_total{v=\"quo\\\"te\"} 2\n"));
        assert!(text.contains("esc_total{v=\"new\\nline\"} 3\n"));
        // The raw newline must NOT appear inside any sample line.
        for line in text.lines() {
            assert!(!line.contains("new\nline"));
        }
        assert!(turnroute_sim::obs::json::validate(&r.json_snapshot()));
    }

    #[test]
    fn zero_observation_histogram_exposes_consistent_zeros() {
        let mut r = Registry::new();
        r.histogram_merge("lat", "latency", &[], &StreamingHistogram::new());
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("lat_sum 0\n"));
        assert!(text.contains("lat_count 0\n"));
        // No finite bucket may claim observations.
        for line in text.lines() {
            if line.starts_with("lat_bucket") {
                assert!(line.ends_with(" 0"), "nonzero bucket in {line}");
            }
        }
        assert!(turnroute_sim::obs::json::validate(&r.json_snapshot()));
    }

    #[test]
    fn frame_stream_exports_windowed_series() {
        use turnroute_sim::obs::ChannelWindow;
        use turnroute_sim::{Alert, AlertKind};
        let mut latency = StreamingHistogram::new();
        latency.record(12);
        let frames = [
            TelemetryFrame {
                seq: 0,
                window_start: 0,
                window_end: 99,
                injected_packets: 4,
                delivered_packets: 3,
                dropped_packets: 0,
                in_flight_packets: 1,
                open_heal_epochs: 0,
                latency,
                channels: vec![ChannelWindow {
                    slot: 2,
                    util: 7,
                    blocked: 40,
                }],
            },
            TelemetryFrame {
                seq: 1,
                window_start: 100,
                window_end: 199,
                injected_packets: 0,
                delivered_packets: 0,
                dropped_packets: 0,
                in_flight_packets: 1,
                open_heal_epochs: 0,
                latency: StreamingHistogram::new(),
                channels: Vec::new(),
            },
        ];
        let alerts = [Alert {
            kind: AlertKind::BlockedMassGrowth,
            seq: 1,
            cycle: 199,
            slot: None,
            value: 999,
            threshold: 512,
        }];
        let mut reg = Registry::new();
        export_frames(&mut reg, &frames, &alerts);
        let text = reg.prometheus_text();
        assert!(text.contains("turnroute_frame_blocked_mass{seq=\"0\"} 40\n"));
        assert!(text.contains("turnroute_frame_blocked_mass{seq=\"1\"} 0\n"));
        assert!(text.contains("turnroute_frame_delivered_packets{seq=\"0\"} 3\n"));
        assert!(text.contains("turnroute_frame_latency_cycles_count{seq=\"0\"} 1\n"));
        assert!(text.contains("turnroute_frames_exported_total 2\n"));
        assert!(text.contains("turnroute_alerts_by_kind_total{kind=\"blocked_mass_growth\"} 1\n"));
        assert!(turnroute_sim::obs::json::validate(&reg.json_snapshot()));
    }
}
