//! Synthetic traffic patterns for interconnection-network simulation.
//!
//! Section 6 of the turn-model paper evaluates three workloads — uniform,
//! matrix-transpose (mesh and hypercube variants), and reverse-flip — all
//! implemented here, plus the common extras (bit-complement, tornado,
//! hotspot, fixed permutations) used by the example applications.
//!
//! A [`TrafficPattern`] maps a source node to a destination for each
//! generated message. Patterns that map a node to itself return `None`:
//! such messages are consumed locally and never enter the network (the
//! diagonal of a matrix transpose, for example).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use turnroute_rng::Rng;
use turnroute_rng::RngCore;
use turnroute_topology::{Coord, NodeId, Topology};

/// A synthetic traffic pattern: where does a message generated at `src`
/// go?
pub trait TrafficPattern {
    /// A short human-readable name, e.g. `"uniform"`.
    fn name(&self) -> &str;

    /// The destination of a message generated at `src`, or `None` if the
    /// pattern maps `src` to itself (the message is consumed locally and
    /// generates no network traffic).
    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId>;
}

impl<T: TrafficPattern + ?Sized> TrafficPattern for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        (**self).dest(topo, src, rng)
    }
}

impl<T: TrafficPattern + ?Sized> TrafficPattern for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        (**self).dest(topo, src, rng)
    }
}

/// Uniform traffic: each message goes to any *other* node with equal
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Uniform;

impl Uniform {
    /// Create the uniform pattern.
    pub fn new() -> Uniform {
        Uniform
    }
}

impl TrafficPattern for Uniform {
    fn name(&self) -> &str {
        "uniform"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_nodes() as u32;
        debug_assert!(n >= 2);
        // Sample uniformly among the n-1 other nodes.
        let mut d = rng.gen_range(0..n - 1);
        if d >= src.0 {
            d += 1;
        }
        Some(NodeId(d))
    }
}

/// Matrix-transpose traffic on a square 2D mesh, in the paper's
/// convention: the node at row *i*, column *j* sends to the node at row
/// *j*, column *i*, with rows counted from the top (so row *i* sits at
/// `y = k-1-i`). In coordinates this is the *anti-diagonal* reflection
/// `(x, y) -> (k-1-y, k-1-x)`, under which both per-dimension offsets
/// always share a sign — the reason negative-first is fully adaptive on
/// this workload. The paper's own hypercube embedding formula
/// (`x̄4, x5, x6, x7, x̄0, …`) decodes, via the reflected Gray code, to
/// exactly this reflection; see [`HypercubeTranspose`].
///
/// Nodes on the anti-diagonal map to themselves (no traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeshTranspose;

impl MeshTranspose {
    /// Create the mesh matrix-transpose pattern.
    pub fn new() -> MeshTranspose {
        MeshTranspose
    }
}

impl TrafficPattern for MeshTranspose {
    fn name(&self) -> &str {
        "matrix-transpose"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        assert_eq!(topo.num_dims(), 2, "mesh transpose needs a 2D topology");
        assert_eq!(
            topo.radix(0),
            topo.radix(1),
            "mesh transpose needs a square mesh"
        );
        let k = topo.radix(0) as u16;
        let c = topo.coord_of(src);
        let (x, y) = (c.get(0), c.get(1));
        if x + y == k - 1 {
            return None;
        }
        Some(topo.node_at(&Coord::new(vec![k - 1 - y, k - 1 - x])))
    }
}

/// The main-diagonal transpose `(x, y) -> (y, x)`: the coordinate-swap
/// reading of "transpose", kept for comparison with [`MeshTranspose`].
/// Under this reflection every packet has mixed-sign offsets, so
/// negative-first degenerates to a single path per pair — a useful
/// ablation of how much the workload convention matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiagonalTranspose;

impl DiagonalTranspose {
    /// Create the main-diagonal transpose pattern.
    pub fn new() -> DiagonalTranspose {
        DiagonalTranspose
    }
}

impl TrafficPattern for DiagonalTranspose {
    fn name(&self) -> &str {
        "diagonal-transpose"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        assert_eq!(topo.num_dims(), 2, "mesh transpose needs a 2D topology");
        assert_eq!(
            topo.radix(0),
            topo.radix(1),
            "mesh transpose needs a square mesh"
        );
        let c = topo.coord_of(src);
        let (x, y) = (c.get(0), c.get(1));
        if x == y {
            return None;
        }
        Some(topo.node_at(&Coord::new(vec![y, x])))
    }
}

/// The paper's hypercube matrix-transpose: a 16×16 mesh is embedded in the
/// 8-cube so that mesh neighbors are cube neighbors, and messages follow
/// the mesh transpose. The resulting pattern sends `(x_0, …, x_{n-1})` to
/// `(x̄_{n/2}, x_{n/2+1}, …, x_{n-1}, x̄_0, x_1, …, x_{n/2-1})`: the address
/// halves are swapped and the first bit of each half complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HypercubeTranspose;

impl HypercubeTranspose {
    /// Create the hypercube transpose pattern.
    pub fn new() -> HypercubeTranspose {
        HypercubeTranspose
    }
}

impl TrafficPattern for HypercubeTranspose {
    fn name(&self) -> &str {
        "matrix-transpose"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        assert!(
            n.is_multiple_of(2),
            "hypercube transpose needs an even dimension count"
        );
        let c = topo.coord_of(src);
        let half = n / 2;
        let mut d = Coord::origin(n);
        for i in 0..n {
            let source_dim = (i + half) % n;
            let mut bit = c.get(source_dim);
            if i.is_multiple_of(half) {
                bit ^= 1; // complement the leading bit of each half
            }
            d.set(i, bit);
        }
        let dest = topo.node_at(&d);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

/// Reverse-flip traffic on a hypercube: `(x_0, …, x_{n-1})` sends to
/// `(x̄_{n-1}, …, x̄_0)` — the address reversed and every bit complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReverseFlip;

impl ReverseFlip {
    /// Create the reverse-flip pattern.
    pub fn new() -> ReverseFlip {
        ReverseFlip
    }
}

impl TrafficPattern for ReverseFlip {
    fn name(&self) -> &str {
        "reverse-flip"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        let c = topo.coord_of(src);
        let d: Coord = (0..n).map(|i| c.get(n - 1 - i) ^ 1).collect();
        let dest = topo.node_at(&d);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

/// Bit-complement traffic: every coordinate is mirrored across its
/// dimension (`x_i -> k_i - 1 - x_i`). On a hypercube this complements the
/// address. A classic adversarial pattern for dimension-order routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitComplement;

impl BitComplement {
    /// Create the bit-complement pattern.
    pub fn new() -> BitComplement {
        BitComplement
    }
}

impl TrafficPattern for BitComplement {
    fn name(&self) -> &str {
        "bit-complement"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let c = topo.coord_of(src);
        let d: Coord = (0..topo.num_dims())
            .map(|i| (topo.radix(i) - 1) as u16 - c.get(i))
            .collect();
        let dest = topo.node_at(&d);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

/// Hotspot traffic: with probability `fraction`, a message goes to the
/// hotspot node; otherwise it is uniform. Models the contended-server
/// workloads adaptive routing is meant to help with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    hotspot: NodeId,
    fraction: f64,
}

impl Hotspot {
    /// Create a hotspot pattern directing `fraction` of traffic at
    /// `hotspot`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    pub fn new(hotspot: NodeId, fraction: f64) -> Hotspot {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be a probability"
        );
        Hotspot { hotspot, fraction }
    }

    /// The hotspot node.
    pub fn hotspot(&self) -> NodeId {
        self.hotspot
    }
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> &str {
        "hotspot"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        if src != self.hotspot && rng.gen_bool(self.fraction) {
            return Some(self.hotspot);
        }
        Uniform.dest(topo, src, rng)
    }
}

/// Tornado traffic on a torus: each node sends nearly halfway around
/// dimension 0, the classic worst case for wraparound load balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tornado;

impl Tornado {
    /// Create the tornado pattern.
    pub fn new() -> Tornado {
        Tornado
    }
}

impl TrafficPattern for Tornado {
    fn name(&self) -> &str {
        "tornado"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let k = topo.radix(0);
        let offset = (k / 2).saturating_sub(1).max(1);
        let mut c = topo.coord_of(src);
        c.set(0, ((usize::from(c.get(0)) + offset) % k) as u16);
        let dest = topo.node_at(&c);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

/// Perfect-shuffle traffic on a hypercube: the address is rotated left by
/// one bit (`(x_0, …, x_{n-1}) -> (x_{n-1}, x_0, …, x_{n-2})` in tuple
/// form). The classic FFT/ sorting-network permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Shuffle;

impl Shuffle {
    /// Create the perfect-shuffle pattern.
    pub fn new() -> Shuffle {
        Shuffle
    }
}

impl TrafficPattern for Shuffle {
    fn name(&self) -> &str {
        "shuffle"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        let c = topo.coord_of(src);
        let d: Coord = (0..n).map(|i| c.get((i + n - 1) % n)).collect();
        let dest = topo.node_at(&d);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

/// Bit-reversal traffic on a hypercube: the address bits are reversed
/// (`x_i -> x_{n-1-i}`), without the complement of [`ReverseFlip`]. The
/// classic FFT data-exchange pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitReverse;

impl BitReverse {
    /// Create the bit-reversal pattern.
    pub fn new() -> BitReverse {
        BitReverse
    }
}

impl TrafficPattern for BitReverse {
    fn name(&self) -> &str {
        "bit-reverse"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let n = topo.num_dims();
        let c = topo.coord_of(src);
        let d: Coord = (0..n).map(|i| c.get(n - 1 - i)).collect();
        let dest = topo.node_at(&d);
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

/// Nearest-neighbor traffic: each message goes to a uniformly random
/// neighboring node — the local, stencil-style communication of many
/// scientific workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NearestNeighbor;

impl NearestNeighbor {
    /// Create the nearest-neighbor pattern.
    pub fn new() -> NearestNeighbor {
        NearestNeighbor
    }
}

impl TrafficPattern for NearestNeighbor {
    fn name(&self) -> &str {
        "nearest-neighbor"
    }

    fn dest(&self, topo: &dyn Topology, src: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        use turnroute_topology::Direction;
        let neighbors: Vec<NodeId> = Direction::all(topo.num_dims())
            .filter_map(|d| topo.neighbor(src, d))
            .collect();
        debug_assert!(!neighbors.is_empty());
        Some(neighbors[rng.gen_range(0..neighbors.len())])
    }
}

/// An arbitrary fixed permutation supplied as a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    name: String,
    table: Vec<NodeId>,
}

impl Permutation {
    /// Create a permutation pattern from a destination table (entry `i` is
    /// the destination of node `i`; a node mapping to itself generates no
    /// traffic).
    pub fn new(name: impl Into<String>, table: Vec<NodeId>) -> Permutation {
        Permutation {
            name: name.into(),
            table,
        }
    }
}

impl TrafficPattern for Permutation {
    fn name(&self) -> &str {
        &self.name
    }

    fn dest(&self, _topo: &dyn Topology, src: NodeId, _rng: &mut dyn RngCore) -> Option<NodeId> {
        let dest = self.table[src.index()];
        if dest == src {
            None
        } else {
            Some(dest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_rng::rngs::StdRng;
    use turnroute_rng::SeedableRng;
    use turnroute_topology::{Hypercube, Mesh, Torus};

    #[test]
    fn uniform_never_self_and_covers_nodes() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let src = NodeId(5);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = Uniform.dest(&mesh, src, &mut rng).unwrap();
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn mesh_transpose_reflects_across_the_anti_diagonal() {
        let mesh = Mesh::new_2d(16, 16);
        let mut rng = StdRng::seed_from_u64(0);
        let src = mesh.node_at_coords(&[3, 11]);
        let dst = MeshTranspose.dest(&mesh, src, &mut rng).unwrap();
        assert_eq!(mesh.coord_of(dst).as_slice(), &[4, 12]);
        // Anti-diagonal nodes generate no traffic.
        let fixed = mesh.node_at_coords(&[5, 10]);
        assert_eq!(MeshTranspose.dest(&mesh, fixed, &mut rng), None);
    }

    #[test]
    fn mesh_transpose_offsets_share_a_sign() {
        // The property that makes negative-first fully adaptive on this
        // workload: both per-dimension displacements are equal.
        let mesh = Mesh::new_2d(16, 16);
        let mut rng = StdRng::seed_from_u64(0);
        for id in 0..mesh.num_nodes() {
            let src = NodeId(id as u32);
            if let Some(d) = MeshTranspose.dest(&mesh, src, &mut rng) {
                let (cs, cd) = (mesh.coord_of(src), mesh.coord_of(d));
                let dx = i32::from(cd.get(0)) - i32::from(cs.get(0));
                let dy = i32::from(cd.get(1)) - i32::from(cs.get(1));
                assert_eq!(dx, dy, "offsets must match at {src}");
            }
        }
    }

    #[test]
    fn mesh_transpose_is_involutive() {
        let mesh = Mesh::new_2d(8, 8);
        let mut rng = StdRng::seed_from_u64(0);
        for id in 0..mesh.num_nodes() {
            let src = NodeId(id as u32);
            if let Some(d) = MeshTranspose.dest(&mesh, src, &mut rng) {
                assert_eq!(MeshTranspose.dest(&mesh, d, &mut rng), Some(src));
            }
        }
    }

    #[test]
    fn diagonal_transpose_swaps_coordinates() {
        let mesh = Mesh::new_2d(16, 16);
        let mut rng = StdRng::seed_from_u64(0);
        let src = mesh.node_at_coords(&[3, 11]);
        let dst = DiagonalTranspose.dest(&mesh, src, &mut rng).unwrap();
        assert_eq!(mesh.coord_of(dst).as_slice(), &[11, 3]);
        let diag = mesh.node_at_coords(&[5, 5]);
        assert_eq!(DiagonalTranspose.dest(&mesh, diag, &mut rng), None);
    }

    #[test]
    fn hypercube_transpose_is_gray_embedded_mesh_transpose() {
        // Embed the 16x16 mesh into the 8-cube with a reflected Gray code
        // per 4-bit half: tuple positions x0..x3 hold gray(y) MSB-first,
        // x4..x7 hold gray(x) MSB-first. Mesh neighbors become cube
        // neighbors, and the paper's cube formula must equal the embedded
        // anti-diagonal mesh transpose (x, y) -> (15-y, 15-x) — because
        // gray(15-v) = gray(v) XOR MSB, which is exactly the formula's
        // "swap halves and complement the leading bit of each".
        fn gray4(v: u16) -> u16 {
            v ^ (v >> 1)
        }
        fn embed(cube: &Hypercube, x: u16, y: u16) -> NodeId {
            let (g1, g2) = (gray4(y), gray4(x));
            let comps: Vec<u16> = (0..8)
                .map(|i| {
                    if i < 4 {
                        (g1 >> (3 - i)) & 1 // x0..x3, MSB first
                    } else {
                        (g2 >> (7 - i)) & 1 // x4..x7, MSB first
                    }
                })
                .collect();
            cube.node_at(&Coord::new(comps))
        }

        let mesh = Mesh::new_2d(16, 16);
        let cube = Hypercube::new(8);
        let mut rng = StdRng::seed_from_u64(0);
        for x in 0..16u16 {
            for y in 0..16u16 {
                let src_mesh = mesh.node_at_coords(&[x, y]);
                let mesh_dst = MeshTranspose.dest(&mesh, src_mesh, &mut rng);
                let cube_dst = HypercubeTranspose.dest(&cube, embed(&cube, x, y), &mut rng);
                match (mesh_dst, cube_dst) {
                    (None, None) => {}
                    (Some(md), Some(cd)) => {
                        let mc = mesh.coord_of(md);
                        assert_eq!(
                            cd,
                            embed(&cube, mc.get(0), mc.get(1)),
                            "mismatch at ({x},{y})"
                        );
                    }
                    other => panic!("fixed-point mismatch at ({x},{y}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn hypercube_transpose_matches_paper_formula() {
        // (x0..x7) -> (x̄4, x5, x6, x7, x̄0, x1, x2, x3)
        let cube = Hypercube::new(8);
        let mut rng = StdRng::seed_from_u64(0);
        let src = cube.node_at(&Coord::new(vec![1, 0, 1, 1, 0, 0, 1, 0]));
        let dst = HypercubeTranspose.dest(&cube, src, &mut rng).unwrap();
        // d0 = !x4 = 1, d1 = x5 = 0, d2 = x6 = 1, d3 = x7 = 0,
        // d4 = !x0 = 0, d5 = x1 = 0, d6 = x2 = 1, d7 = x3 = 1.
        assert_eq!(cube.coord_of(dst).as_slice(), &[1, 0, 1, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn hypercube_transpose_is_involutive_with_16_fixed_points() {
        // The fixed points are the embedded anti-diagonal of the 16x16
        // mesh: one per diagonal position, 16 in all.
        let cube = Hypercube::new(8);
        let mut rng = StdRng::seed_from_u64(0);
        let mut fixed = 0;
        for id in 0..cube.num_nodes() {
            let src = NodeId(id as u32);
            match HypercubeTranspose.dest(&cube, src, &mut rng) {
                None => fixed += 1,
                Some(d) => {
                    assert_eq!(HypercubeTranspose.dest(&cube, d, &mut rng), Some(src));
                }
            }
        }
        assert_eq!(fixed, 16);
    }

    #[test]
    fn reverse_flip_matches_paper_formula() {
        let cube = Hypercube::new(8);
        let mut rng = StdRng::seed_from_u64(0);
        let src = cube.node_at(&Coord::new(vec![1, 1, 1, 1, 0, 0, 1, 0]));
        let dst = ReverseFlip.dest(&cube, src, &mut rng).unwrap();
        // Reverse: [0,1,0,0,1,1,1,1], complement: [1,0,1,1,0,0,0,0].
        assert_eq!(cube.coord_of(dst).as_slice(), &[1, 0, 1, 1, 0, 0, 0, 0]);
        // Anti-palindromic addresses are fixed points (consumed locally).
        let fixed = cube.node_at(&Coord::new(vec![1, 0, 1, 1, 0, 0, 1, 0]));
        assert_eq!(ReverseFlip.dest(&cube, fixed, &mut rng), None);
    }

    #[test]
    fn reverse_flip_average_distance_matches_paper() {
        // The paper reports 4.27 hops average for reverse-flip in the
        // 8-cube (vs 4.01 for uniform).
        let cube = Hypercube::new(8);
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0usize;
        let mut count = 0usize;
        for id in 0..cube.num_nodes() {
            let src = NodeId(id as u32);
            if let Some(d) = ReverseFlip.dest(&cube, src, &mut rng) {
                total += cube.min_hops(src, d);
                count += 1;
            }
        }
        let avg = total as f64 / count as f64;
        assert!((avg - 4.27).abs() < 0.05, "avg reverse-flip distance {avg}");
    }

    #[test]
    fn bit_complement_mirrors_coordinates() {
        let mesh = Mesh::new_2d(8, 8);
        let mut rng = StdRng::seed_from_u64(0);
        let src = mesh.node_at_coords(&[2, 5]);
        let dst = BitComplement.dest(&mesh, src, &mut rng).unwrap();
        assert_eq!(mesh.coord_of(dst).as_slice(), &[5, 2]);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = StdRng::seed_from_u64(42);
        let hot = NodeId(9);
        let pattern = Hotspot::new(hot, 0.5);
        let mut hits = 0;
        for _ in 0..4000 {
            if pattern.dest(&mesh, NodeId(0), &mut rng) == Some(hot) {
                hits += 1;
            }
        }
        // 50% directed + ~1/15 of the uniform remainder.
        let expected = 4000.0 * (0.5 + 0.5 / 15.0);
        assert!((f64::from(hits) - expected).abs() < 200.0, "hits = {hits}");
        assert_eq!(pattern.hotspot(), hot);
    }

    #[test]
    fn tornado_on_torus() {
        let torus = Torus::new(8, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let src = torus.node_at_coords(&[6, 2]);
        let dst = Tornado.dest(&torus, src, &mut rng).unwrap();
        assert_eq!(torus.coord_of(dst).as_slice(), &[1, 2]); // 6 + 3 mod 8
    }

    #[test]
    fn shuffle_rotates_tuple() {
        let cube = Hypercube::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        // (x0,x1,x2,x3) = (1,0,1,0) -> (0,1,0,1).
        let src = cube.node_at(&Coord::new(vec![1, 0, 1, 0]));
        let dst = Shuffle.dest(&cube, src, &mut rng).unwrap();
        assert_eq!(cube.coord_of(dst).as_slice(), &[0, 1, 0, 1]);
        // All-ones is a fixed point.
        let fixed = cube.node_at(&Coord::new(vec![1, 1, 1, 1]));
        assert_eq!(Shuffle.dest(&cube, fixed, &mut rng), None);
    }

    #[test]
    fn shuffle_orbit_returns_after_n_steps() {
        let cube = Hypercube::new(6);
        let mut rng = StdRng::seed_from_u64(0);
        let start = NodeId(0b101100);
        let mut cur = start;
        for _ in 0..6 {
            cur = Shuffle.dest(&cube, cur, &mut rng).unwrap_or(cur);
        }
        assert_eq!(cur, start);
    }

    #[test]
    fn bit_reverse_is_involutive() {
        let cube = Hypercube::new(6);
        let mut rng = StdRng::seed_from_u64(0);
        for id in 0..cube.num_nodes() {
            let src = NodeId(id as u32);
            if let Some(d) = BitReverse.dest(&cube, src, &mut rng) {
                assert_eq!(BitReverse.dest(&cube, d, &mut rng), Some(src));
            }
        }
        // Palindromic addresses are fixed points.
        let fixed = cube.node_at(&Coord::new(vec![1, 0, 1, 1, 0, 1]));
        assert_eq!(BitReverse.dest(&cube, fixed, &mut rng), None);
    }

    #[test]
    fn nearest_neighbor_always_one_hop() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        for id in 0..mesh.num_nodes() {
            let src = NodeId(id as u32);
            for _ in 0..8 {
                let d = NearestNeighbor.dest(&mesh, src, &mut rng).unwrap();
                assert_eq!(mesh.min_hops(src, d), 1);
            }
        }
    }

    #[test]
    fn permutation_table() {
        let mesh = Mesh::new_2d(2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let p = Permutation::new("swap", vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(p.dest(&mesh, NodeId(0), &mut rng), Some(NodeId(1)));
        assert_eq!(p.dest(&mesh, NodeId(2), &mut rng), None); // self-map
        assert_eq!(p.name(), "swap");
    }

    #[test]
    fn trait_object_and_box_delegate() {
        let mesh = Mesh::new_2d(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let boxed: Box<dyn TrafficPattern> = Box::new(MeshTranspose);
        let by_ref: &dyn TrafficPattern = &MeshTranspose;
        let src = mesh.node_at_coords(&[1, 2]);
        assert_eq!(boxed.name(), "matrix-transpose");
        assert_eq!(
            boxed.dest(&mesh, src, &mut rng),
            by_ref.dest(&mesh, src, &mut rng)
        );
    }
}
