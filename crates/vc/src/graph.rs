//! Channel dependency graphs over virtual channels.

use crate::{VcRoutingFunction, VirtualDirection};
use turnroute_topology::{Mesh, NodeId, Topology};

/// One virtual channel of the double-y mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcChannel {
    /// Dense id.
    pub id: u32,
    /// Router the channel leaves.
    pub src: NodeId,
    /// Router the channel enters.
    pub dst: NodeId,
    /// The virtual direction it routes packets in.
    pub vdir: VirtualDirection,
}

/// The Dally–Seitz dependency graph with *virtual* channels as vertices —
/// the form of the analysis needed once extra channels enter the picture
/// (each virtual channel is a resource of its own).
#[derive(Debug, Clone)]
pub struct VcCdg {
    channels: Vec<VcChannel>,
    adj: Vec<Vec<u32>>,
    num_classes: usize,
    slots_per_node: usize,
    slot_to_id: Vec<u32>,
}

impl VcCdg {
    /// Build the dependency graph induced by `routing` on `mesh`,
    /// quantifying only reachable `(incoming channel, destination)` states
    /// for minimal functions. The routing function declares its class
    /// count and which virtual channels exist; channels are enumerated
    /// node-major in dense [`VirtualDirection::index_in`] order.
    pub fn from_routing(mesh: &Mesh, routing: &dyn VcRoutingFunction) -> VcCdg {
        // Enumerate virtual channels and a slot lookup.
        let num_classes = routing.num_classes();
        let slots_per_node = 2 * mesh.num_dims() * num_classes; // dirs * classes
        let mut slot_to_id = vec![u32::MAX; mesh.num_nodes() * slots_per_node];
        let mut channels = Vec::new();
        for node in 0..mesh.num_nodes() {
            let node = NodeId(node as u32);
            for vd in VirtualDirection::all_classes(mesh.num_dims(), num_classes) {
                if !routing.channel_exists(vd) {
                    continue;
                }
                if let Some(dst) = mesh.neighbor(node, vd.dir()) {
                    let id = channels.len() as u32;
                    slot_to_id[node.index() * slots_per_node + vd.index_in(num_classes)] = id;
                    channels.push(VcChannel {
                        id,
                        src: node,
                        dst,
                        vdir: vd,
                    });
                }
            }
        }
        let minimal = routing.is_minimal();
        let mut adj = vec![Vec::new(); channels.len()];
        for c1 in &channels {
            let mid = c1.dst;
            let mut union: Vec<VirtualDirection> = Vec::new();
            for dest in 0..mesh.num_nodes() {
                let dest = NodeId(dest as u32);
                if dest == mid {
                    continue;
                }
                if minimal && mesh.min_hops(mid, dest) >= mesh.min_hops(c1.src, dest) {
                    continue;
                }
                for vd in routing.route(mesh, mid, dest, Some(c1.vdir)) {
                    if !union.contains(&vd) {
                        union.push(vd);
                    }
                }
            }
            for vd in union {
                let id = slot_to_id[mid.index() * slots_per_node + vd.index_in(num_classes)];
                assert_ne!(id, u32::MAX, "routing offered a nonexistent channel");
                adj[c1.id as usize].push(id);
            }
        }
        VcCdg {
            channels,
            adj,
            num_classes,
            slots_per_node,
            slot_to_id,
        }
    }

    /// Number of virtual-channel classes per physical direction.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Dense virtual-channel slots per node (`2 * dims * classes`).
    pub fn slots_per_node(&self) -> usize {
        self.slots_per_node
    }

    /// The channel id occupying `node`'s slot for `vd`, or `None` if that
    /// virtual channel does not exist (boundary link or pruned class).
    pub fn channel_at(&self, node: NodeId, vd: VirtualDirection) -> Option<u32> {
        let slot = node.index() * self.slots_per_node + vd.index_in(self.num_classes);
        match self.slot_to_id[slot] {
            u32::MAX => None,
            id => Some(id),
        }
    }

    /// The virtual channels (vertices).
    pub fn channels(&self) -> &[VcChannel] {
        &self.channels
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// The successor channel ids of the virtual channel `id` — the
    /// adjacency view external verifiers (the analysis crate's channel-graph
    /// extraction) need to lift this graph into their own representation.
    pub fn successors(&self, id: u32) -> &[u32] {
        &self.adj[id as usize]
    }

    /// Find a dependency cycle, or `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        let n = self.channels.len();
        let mut color = vec![WHITE; n];
        let mut path = Vec::new();
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            color[start] = GRAY;
            path.push(start);
            stack.push((start, 0));
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < self.adj[v].len() {
                    let w = self.adj[v][*next] as usize;
                    *next += 1;
                    match color[w] {
                        WHITE => {
                            color[w] = GRAY;
                            path.push(w);
                            stack.push((w, 0));
                        }
                        GRAY => {
                            let pos = path.iter().position(|&x| x == w).expect("on path");
                            return Some(path[pos..].iter().map(|&i| i as u32).collect());
                        }
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// Whether the graph is acyclic (deadlock free).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DoubleYAdaptive;
    use turnroute_topology::{Direction, Sign};

    #[test]
    fn double_y_is_acyclic_on_assorted_meshes() {
        for (m, n) in [(3u16, 3u16), (4, 4), (8, 8), (5, 3), (3, 7)] {
            let mesh = Mesh::new_2d(m, n);
            let cdg = VcCdg::from_routing(&mesh, &DoubleYAdaptive::new());
            assert!(cdg.is_acyclic(), "cyclic on {m}x{n}");
        }
    }

    #[test]
    fn channel_count_includes_doubled_y() {
        let mesh = Mesh::new_2d(4, 4);
        let cdg = VcCdg::from_routing(&mesh, &DoubleYAdaptive::new());
        // x channels: 2 * 3 * 4 = 24 (one class); y channels: 24 * 2.
        assert_eq!(cdg.channels().len(), 24 + 48);
        assert!(cdg.num_edges() > 0);
    }

    /// A deliberately unrestricted VC routing: fully adaptive on both
    /// classes — which reintroduces the deadlock cycles.
    struct Unrestricted;

    impl VcRoutingFunction for Unrestricted {
        fn name(&self) -> &str {
            "unrestricted"
        }

        fn route(
            &self,
            mesh: &Mesh,
            current: NodeId,
            dest: NodeId,
            _arrived: Option<VirtualDirection>,
        ) -> Vec<VirtualDirection> {
            let mut out = Vec::new();
            let (c, d) = (mesh.coord_of(current), mesh.coord_of(dest));
            if d.get(0) != c.get(0) {
                let sign = if d.get(0) > c.get(0) {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                out.push(VirtualDirection::new(
                    Direction::new(0, sign),
                    crate::VcClass::One,
                ));
            }
            if d.get(1) != c.get(1) {
                let sign = if d.get(1) > c.get(1) {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                out.push(VirtualDirection::new(
                    Direction::new(1, sign),
                    crate::VcClass::One,
                ));
                out.push(VirtualDirection::new(
                    Direction::new(1, sign),
                    crate::VcClass::Two,
                ));
            }
            out
        }

        fn is_minimal(&self) -> bool {
            true
        }
    }

    #[test]
    fn unrestricted_vc_routing_still_deadlocks() {
        // Extra channels alone do not prevent deadlock: the turn rules do.
        let mesh = Mesh::new_2d(4, 4);
        let cdg = VcCdg::from_routing(&mesh, &Unrestricted);
        assert!(cdg.find_cycle().is_some());
    }
}
