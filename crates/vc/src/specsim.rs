//! A seeded saturating simulator over an explicit channel-graph relation.
//!
//! [`SpecSim`] executes the exact resource model the Dally–Seitz analysis
//! reasons about: every channel is a single-packet buffer, a packet holds
//! its current channel until it acquires the next one (hold-and-wait),
//! and the legal next channels come from a per-destination routing
//! relation over injection and channel-holding states — the same shape as
//! the analysis crate's `GraphSpec`. The input is duck-typed (node count,
//! channel endpoints, route tables) so the simulator stays independent of
//! the analysis crate and either side of a synthesized split can be
//! cross-validated: a cyclic relation should deadlock under saturation
//! while its certified escape/adaptive split delivers every packet.

use turnroute_rng::{Rng, SeedableRng, StdRng};

/// An explicit channel-graph relation, borrowed field by field from a
/// `GraphSpec`-shaped owner.
#[derive(Debug, Clone, Copy)]
pub struct SpecView<'a> {
    /// Number of routers.
    pub num_nodes: usize,
    /// Channel endpoints `(src, dst)`, indexed by channel id.
    pub channels: &'a [(u32, u32)],
    /// `routes[dest][state]` = legal next channels, where state `v` in
    /// `0..num_nodes` is injection at router `v` and `num_nodes + c` is
    /// holding channel `c`.
    pub routes: &'a [Vec<Vec<u32>>],
}

/// Outcome of a saturating [`SpecSim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecSimReport {
    /// Packets enqueued (only destinations routable from the source's
    /// injection state count).
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Whether the run ended in deadlock: packets held channels but no
    /// packet moved for the patience window.
    pub deadlocked: bool,
    /// Cycle the run ended on.
    pub end_cycle: u64,
}

/// Saturating single-packet-per-channel simulator over a [`SpecView`].
#[derive(Debug)]
pub struct SpecSim<'a> {
    view: SpecView<'a>,
    rng: StdRng,
    /// Packet occupying each channel (`u32::MAX` = free).
    occupant: Vec<u32>,
    /// Per-packet destination.
    dest: Vec<u32>,
    /// Per-packet state: `u32::MAX` = delivered, otherwise a route state
    /// (`< num_nodes` = waiting to inject at that router, else
    /// `num_nodes + c` = holding channel `c`).
    state: Vec<u32>,
    /// Per-router FIFO of packets waiting to inject.
    inject_queue: Vec<Vec<u32>>,
    injected: u64,
    delivered: u64,
}

const FREE: u32 = u32::MAX;

impl<'a> SpecSim<'a> {
    /// Create a saturating run: `packets_per_node` packets per router,
    /// each with a seeded uniform destination among the routers its
    /// injection state can route to.
    pub fn new(view: SpecView<'a>, seed: u64, packets_per_node: usize) -> SpecSim<'a> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = view.num_nodes;
        let mut dest = Vec::new();
        let mut state = Vec::new();
        let mut inject_queue = vec![Vec::new(); n];
        let mut injected = 0u64;
        for (src, queue) in inject_queue.iter_mut().enumerate() {
            // Destinations the source can start toward at all; a turn set
            // that disconnects some pairs simply injects less.
            let routable: Vec<u32> = (0..n as u32)
                .filter(|&d| d as usize != src && !view.routes[d as usize][src].is_empty())
                .collect();
            if routable.is_empty() {
                continue;
            }
            for _ in 0..packets_per_node {
                let d = routable[rng.gen_range(0..routable.len())];
                let id = dest.len() as u32;
                dest.push(d);
                state.push(src as u32);
                queue.push(id);
                injected += 1;
            }
        }
        SpecSim {
            occupant: vec![FREE; view.channels.len()],
            view,
            rng,
            dest,
            state,
            inject_queue,
            injected,
            delivered: 0,
        }
    }

    /// Attempt one move for packet `p` from `state`; returns `true` if it
    /// moved (acquired a channel or was delivered).
    fn try_move(&mut self, p: u32) -> bool {
        let s = self.state[p as usize];
        let n = self.view.num_nodes;
        let d = self.dest[p as usize];
        if s >= n as u32 {
            let c = (s - n as u32) as usize;
            if self.view.channels[c].1 == d {
                // At the destination: eject and free the channel.
                self.occupant[c] = FREE;
                self.state[p as usize] = u32::MAX;
                self.delivered += 1;
                return true;
            }
        }
        let moves = &self.view.routes[d as usize][s as usize];
        let free: Vec<u32> = moves
            .iter()
            .copied()
            .filter(|&c| self.occupant[c as usize] == FREE)
            .collect();
        if free.is_empty() {
            return false;
        }
        let next = free[self.rng.gen_range(0..free.len())];
        self.occupant[next as usize] = p;
        if s >= n as u32 {
            self.occupant[(s - n as u32) as usize] = FREE;
        } else {
            let q = &mut self.inject_queue[s as usize];
            debug_assert_eq!(q.first(), Some(&p));
            q.remove(0);
        }
        self.state[p as usize] = n as u32 + next;
        true
    }

    /// Run until every packet is delivered or no packet moves for
    /// `patience` consecutive cycles (deadlock if channels are still
    /// held, starvation-free drain otherwise).
    pub fn run(mut self, patience: u64, max_cycles: u64) -> SpecSimReport {
        let mut now = 0u64;
        let mut last_move = 0u64;
        while now < max_cycles && self.delivered < self.injected {
            // Serve in-flight packets in a seeded random order each
            // cycle — an adversarially fair arbiter.
            let mut active: Vec<u32> = (0..self.state.len() as u32)
                .filter(|&p| {
                    let s = self.state[p as usize];
                    s != u32::MAX && s >= self.view.num_nodes as u32
                })
                .collect();
            for i in (1..active.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                active.swap(i, j);
            }
            // Plus the head of each injection FIFO.
            for v in 0..self.view.num_nodes {
                if let Some(&p) = self.inject_queue[v].first() {
                    active.push(p);
                }
            }
            let mut moved = false;
            for p in active {
                if self.state[p as usize] == u32::MAX {
                    continue;
                }
                moved |= self.try_move(p);
            }
            if moved {
                last_move = now;
            } else if now - last_move >= patience {
                break;
            }
            now += 1;
        }
        let holding = self.occupant.iter().any(|&o| o != FREE);
        SpecSimReport {
            injected: self.injected,
            delivered: self.delivered,
            deadlocked: self.delivered < self.injected && holding,
            end_cycle: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-destination routing tables, indexed `[dest][state]`.
    type Routes = Vec<Vec<Vec<u32>>>;

    /// A 4-ring with clockwise-only routing: the classic deadlock.
    fn ring_spec() -> (Vec<(u32, u32)>, Routes) {
        let n = 4u32;
        let channels: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let mut routes = Vec::new();
        for dest in 0..n {
            let mut table = vec![Vec::new(); (2 * n) as usize];
            for v in 0..n {
                if v == dest {
                    continue;
                }
                table[v as usize] = vec![v]; // inject onto channel leaving v
            }
            for c in 0..n {
                let mid = (c + 1) % n;
                if mid == dest {
                    continue;
                }
                table[(n + c) as usize] = vec![mid];
            }
            routes.push(table);
        }
        (channels, routes)
    }

    #[test]
    fn clockwise_ring_deadlocks_under_saturation() {
        let (channels, routes) = ring_spec();
        let view = SpecView {
            num_nodes: 4,
            channels: &channels,
            routes: &routes,
        };
        let report = SpecSim::new(view, 7, 4).run(200, 100_000);
        assert!(report.deadlocked, "{report:?}");
        assert!(report.delivered < report.injected);
    }

    #[test]
    fn single_packet_on_ring_is_delivered() {
        let (channels, routes) = ring_spec();
        let view = SpecView {
            num_nodes: 4,
            channels: &channels,
            routes: &routes,
        };
        // One packet per node is below the cyclic-wait threshold only for
        // zero contention; inject from a single node instead.
        let mut sim = SpecSim::new(view, 7, 0);
        sim.dest.push(2);
        sim.state.push(0);
        sim.inject_queue[0].push(0);
        sim.injected += 1;
        let report = sim.run(200, 100_000);
        assert_eq!(report.delivered, 1);
        assert!(!report.deadlocked);
    }

    #[test]
    fn same_seed_same_outcome() {
        let (channels, routes) = ring_spec();
        let view = SpecView {
            num_nodes: 4,
            channels: &channels,
            routes: &routes,
        };
        let a = SpecSim::new(view, 11, 3).run(200, 100_000);
        let b = SpecSim::new(view, 11, 3).run(200, 100_000);
        assert_eq!(a, b);
    }
}
