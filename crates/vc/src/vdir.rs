//! Virtual directions: a physical direction plus a virtual-channel class.

use turnroute_topology::{Direction, Mesh, NodeId, Topology};

/// The virtual-channel class of a channel. The double-y mesh uses
/// [`VcClass::One`] for x channels and both classes for y channels;
/// synthesized assignments may use any number of classes, so the class is
/// an open index rather than a closed enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcClass(u8);

#[allow(non_upper_case_globals)]
impl VcClass {
    /// The first (or only) virtual channel of a physical link.
    pub const One: VcClass = VcClass(0);
    /// The second virtual channel of a doubled physical link.
    pub const Two: VcClass = VcClass(1);

    /// The class with zero-based index `index`.
    #[inline]
    pub fn new(index: u8) -> VcClass {
        VcClass(index)
    }

    /// Zero-based class index — used in slot indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VcClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A virtual direction: the paper's Step 1 treats the `v` channels of a
/// physical direction as `v` distinct virtual directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualDirection {
    dir: Direction,
    class: VcClass,
}

impl VirtualDirection {
    /// Create a virtual direction.
    pub fn new(dir: Direction, class: VcClass) -> VirtualDirection {
        VirtualDirection { dir, class }
    }

    /// The underlying physical direction.
    #[inline]
    pub fn dir(self) -> Direction {
        self.dir
    }

    /// The virtual-channel class.
    #[inline]
    pub fn class(self) -> VcClass {
        self.class
    }

    /// Dense index in `0..4n` (two classes per physical direction; class
    /// slots of single-channel directions simply go unused).
    #[inline]
    pub fn index(self) -> usize {
        self.index_in(2)
    }

    /// Dense index in `0..(2 * dims * num_classes)` when every physical
    /// direction carries `num_classes` virtual-channel slots.
    #[inline]
    pub fn index_in(self, num_classes: usize) -> usize {
        debug_assert!(self.class.index() < num_classes);
        self.dir.index() * num_classes + self.class.index()
    }

    /// All virtual directions of an `num_dims`-dimensional mesh with
    /// `num_classes` classes per physical direction, in dense
    /// [`VirtualDirection::index_in`] order.
    pub fn all_classes(num_dims: usize, num_classes: usize) -> Vec<VirtualDirection> {
        let mut out = Vec::with_capacity(2 * num_dims * num_classes);
        for dir in Direction::all(num_dims) {
            for class in 0..num_classes {
                out.push(VirtualDirection::new(dir, VcClass::new(class as u8)));
            }
        }
        out
    }

    /// All virtual directions of a double-y 2D mesh: `west`, `east` in
    /// class One, and both classes of `north` and `south`.
    pub fn double_y_all() -> [VirtualDirection; 6] {
        [
            VirtualDirection::new(Direction::WEST, VcClass::One),
            VirtualDirection::new(Direction::EAST, VcClass::One),
            VirtualDirection::new(Direction::NORTH, VcClass::One),
            VirtualDirection::new(Direction::NORTH, VcClass::Two),
            VirtualDirection::new(Direction::SOUTH, VcClass::One),
            VirtualDirection::new(Direction::SOUTH, VcClass::Two),
        ]
    }

    /// Whether this virtual direction exists in the double-y scheme
    /// (x channels have a single class).
    pub fn exists_in_double_y(self) -> bool {
        self.dir.dim() == 1 || self.class == VcClass::One
    }
}

impl std::fmt::Display for VirtualDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.dir.dim() == 0 {
            write!(f, "{}", self.dir)
        } else {
            write!(f, "{}{}", self.dir, self.class)
        }
    }
}

/// A routing function over virtual channels of a 2D mesh.
///
/// The contract mirrors
/// [`turnroute_model::RoutingFunction`]: empty output exactly at the
/// destination, only existing channels, and for minimal functions only
/// distance-reducing physical moves. Unreachable `(arrived, dest)` states
/// must return the empty set so dependency analysis stays exact.
pub trait VcRoutingFunction {
    /// Short human-readable name.
    fn name(&self) -> &str;

    /// Legal output virtual channels for a packet at `current` bound for
    /// `dest`, having arrived on `arrived` (`None` at injection).
    fn route(
        &self,
        mesh: &Mesh,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> Vec<VirtualDirection>;

    /// Whether only shortest-path moves are offered.
    fn is_minimal(&self) -> bool;

    /// Number of virtual-channel classes per physical direction. The
    /// default matches the hand-coded double-y scheme.
    fn num_classes(&self) -> usize {
        2
    }

    /// Whether the virtual channel `vd` exists on links that carry it.
    /// The default matches double-y: x links carry a single class.
    fn channel_exists(&self, vd: VirtualDirection) -> bool {
        vd.exists_in_double_y()
    }
}

/// The virtual channels leaving `node` in a double-y mesh, in a stable
/// order.
pub fn outgoing_vdirs(mesh: &Mesh, node: NodeId) -> Vec<VirtualDirection> {
    VirtualDirection::double_y_all()
        .into_iter()
        .filter(|vd| mesh.neighbor(node, vd.dir()).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_virtual_directions() {
        let all = VirtualDirection::double_y_all();
        assert_eq!(all.len(), 6);
        for vd in all {
            assert!(vd.exists_in_double_y());
        }
        assert!(!VirtualDirection::new(Direction::WEST, VcClass::Two).exists_in_double_y());
    }

    #[test]
    fn display_marks_classes_on_y_only() {
        assert_eq!(
            VirtualDirection::new(Direction::WEST, VcClass::One).to_string(),
            "west"
        );
        assert_eq!(
            VirtualDirection::new(Direction::NORTH, VcClass::Two).to_string(),
            "north2"
        );
    }

    #[test]
    fn indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for vd in VirtualDirection::double_y_all() {
            assert!(seen.insert(vd.index()));
        }
    }

    #[test]
    fn all_classes_is_in_dense_index_order() {
        for classes in 1..=4usize {
            let all = VirtualDirection::all_classes(2, classes);
            assert_eq!(all.len(), 4 * classes);
            for (i, vd) in all.iter().enumerate() {
                assert_eq!(vd.index_in(classes), i);
            }
        }
    }

    #[test]
    fn two_class_dense_index_matches_legacy_index() {
        for vd in VirtualDirection::all_classes(2, 2) {
            assert_eq!(vd.index_in(2), vd.index());
        }
    }

    #[test]
    fn corner_node_has_fewer_outgoing() {
        let mesh = Mesh::new_2d(4, 4);
        let corner = mesh.node_at_coords(&[0, 0]);
        // east (1 class) + north (2 classes).
        assert_eq!(outgoing_vdirs(&mesh, corner).len(), 3);
        let center = mesh.node_at_coords(&[1, 1]);
        assert_eq!(outgoing_vdirs(&mesh, center).len(), 6);
    }
}
