//! Virtual directions: a physical direction plus a virtual-channel class.

use turnroute_topology::{Direction, Mesh, NodeId, Topology};

/// The virtual-channel class of a channel. The double-y mesh uses
/// [`VcClass::One`] for x channels and both classes for y channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VcClass {
    /// The first (or only) virtual channel of a physical link.
    One,
    /// The second virtual channel of a doubled physical link.
    Two,
}

impl VcClass {
    /// `0` for `One`, `1` for `Two` — used in slot indexing.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            VcClass::One => 0,
            VcClass::Two => 1,
        }
    }
}

impl std::fmt::Display for VcClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcClass::One => write!(f, "1"),
            VcClass::Two => write!(f, "2"),
        }
    }
}

/// A virtual direction: the paper's Step 1 treats the `v` channels of a
/// physical direction as `v` distinct virtual directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualDirection {
    dir: Direction,
    class: VcClass,
}

impl VirtualDirection {
    /// Create a virtual direction.
    pub fn new(dir: Direction, class: VcClass) -> VirtualDirection {
        VirtualDirection { dir, class }
    }

    /// The underlying physical direction.
    #[inline]
    pub fn dir(self) -> Direction {
        self.dir
    }

    /// The virtual-channel class.
    #[inline]
    pub fn class(self) -> VcClass {
        self.class
    }

    /// Dense index in `0..4n` (two classes per physical direction; class
    /// slots of single-channel directions simply go unused).
    #[inline]
    pub fn index(self) -> usize {
        self.dir.index() * 2 + self.class.index()
    }

    /// All virtual directions of a double-y 2D mesh: `west`, `east` in
    /// class One, and both classes of `north` and `south`.
    pub fn double_y_all() -> [VirtualDirection; 6] {
        [
            VirtualDirection::new(Direction::WEST, VcClass::One),
            VirtualDirection::new(Direction::EAST, VcClass::One),
            VirtualDirection::new(Direction::NORTH, VcClass::One),
            VirtualDirection::new(Direction::NORTH, VcClass::Two),
            VirtualDirection::new(Direction::SOUTH, VcClass::One),
            VirtualDirection::new(Direction::SOUTH, VcClass::Two),
        ]
    }

    /// Whether this virtual direction exists in the double-y scheme
    /// (x channels have a single class).
    pub fn exists_in_double_y(self) -> bool {
        self.dir.dim() == 1 || self.class == VcClass::One
    }
}

impl std::fmt::Display for VirtualDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.dir.dim() == 0 {
            write!(f, "{}", self.dir)
        } else {
            write!(f, "{}{}", self.dir, self.class)
        }
    }
}

/// A routing function over virtual channels of a 2D mesh.
///
/// The contract mirrors
/// [`turnroute_model::RoutingFunction`]: empty output exactly at the
/// destination, only existing channels, and for minimal functions only
/// distance-reducing physical moves. Unreachable `(arrived, dest)` states
/// must return the empty set so dependency analysis stays exact.
pub trait VcRoutingFunction {
    /// Short human-readable name.
    fn name(&self) -> &str;

    /// Legal output virtual channels for a packet at `current` bound for
    /// `dest`, having arrived on `arrived` (`None` at injection).
    fn route(
        &self,
        mesh: &Mesh,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> Vec<VirtualDirection>;

    /// Whether only shortest-path moves are offered.
    fn is_minimal(&self) -> bool;
}

/// The virtual channels leaving `node` in a double-y mesh, in a stable
/// order.
pub fn outgoing_vdirs(mesh: &Mesh, node: NodeId) -> Vec<VirtualDirection> {
    VirtualDirection::double_y_all()
        .into_iter()
        .filter(|vd| mesh.neighbor(node, vd.dir()).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_virtual_directions() {
        let all = VirtualDirection::double_y_all();
        assert_eq!(all.len(), 6);
        for vd in all {
            assert!(vd.exists_in_double_y());
        }
        assert!(!VirtualDirection::new(Direction::WEST, VcClass::Two).exists_in_double_y());
    }

    #[test]
    fn display_marks_classes_on_y_only() {
        assert_eq!(
            VirtualDirection::new(Direction::WEST, VcClass::One).to_string(),
            "west"
        );
        assert_eq!(
            VirtualDirection::new(Direction::NORTH, VcClass::Two).to_string(),
            "north2"
        );
    }

    #[test]
    fn indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for vd in VirtualDirection::double_y_all() {
            assert!(seen.insert(vd.index()));
        }
    }

    #[test]
    fn corner_node_has_fewer_outgoing() {
        let mesh = Mesh::new_2d(4, 4);
        let corner = mesh.node_at_coords(&[0, 0]);
        // east (1 class) + north (2 classes).
        assert_eq!(outgoing_vdirs(&mesh, corner).len(), 3);
        let center = mesh.node_at_coords(&[1, 1]);
        assert_eq!(outgoing_vdirs(&mesh, center).len(), 6);
    }
}
