//! The double-y fully adaptive routing algorithm.

use crate::{VcClass, VcRoutingFunction, VirtualDirection};
use turnroute_topology::{Direction, Mesh, NodeId, Sign, Topology};

/// Minimal fully adaptive deadlock-free routing on a 2D mesh whose
/// vertical channels are doubled into classes `y1` and `y2`.
///
/// Derived with the turn model over virtual directions
/// `{west, east, north1, south1, north2, south2}`:
///
/// * a packet with westward hops remaining routes adaptively among
///   `west` and the productive `y1` channel;
/// * a packet with no westward hops remaining routes adaptively among
///   `east` and the productive `y2` channel;
/// * prohibited turns: everything from the `{east, y2}` side into the
///   `{west, y1}` side — `east -> y1`, `y2 -> west`, `y2 -> y1`
///   (0-degree), and `east -> west` / reversals.
///
/// Every shortest path remains available (`S = S_f`, the multinomial of
/// Section 3.4) because at each hop both productive physical moves are
/// offered — only the *class* of the vertical move is constrained. The
/// price is one extra virtual channel per vertical link: precisely the
/// buffer-and-control cost the paper attributes to channel-adding
/// approaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoubleYAdaptive;

impl DoubleYAdaptive {
    /// Create the double-y routing function.
    pub fn new() -> DoubleYAdaptive {
        DoubleYAdaptive
    }

    /// Whether a virtual direction belongs to the `{west, y1}` side.
    fn is_side_one(vd: VirtualDirection) -> bool {
        vd.dir() == Direction::WEST || (vd.dir().dim() == 1 && vd.class() == VcClass::One)
    }
}

impl VcRoutingFunction for DoubleYAdaptive {
    fn name(&self) -> &str {
        "double-y fully adaptive"
    }

    fn route(
        &self,
        mesh: &Mesh,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> Vec<VirtualDirection> {
        if current == dest {
            return Vec::new();
        }
        let (c, d) = (mesh.coord_of(current), mesh.coord_of(dest));
        let needs_west = d.get(0) < c.get(0);
        // Coherence: once on the {east, y2} side, {west, y1} is locked
        // out; a packet still needing west there is an unreachable state.
        if needs_west && matches!(arrived, Some(vd) if !Self::is_side_one(vd)) {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(2);
        if needs_west {
            out.push(VirtualDirection::new(Direction::WEST, VcClass::One));
        } else if d.get(0) > c.get(0) {
            out.push(VirtualDirection::new(Direction::EAST, VcClass::One));
        }
        if d.get(1) != c.get(1) {
            let sign = if d.get(1) > c.get(1) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            let class = if needs_west {
                VcClass::One
            } else {
                VcClass::Two
            };
            out.push(VirtualDirection::new(Direction::new(1, sign), class));
        }
        out
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

/// Count the shortest paths `DoubleYAdaptive` allows between two nodes by
/// memoized dynamic programming (virtual-channel analog of
/// [`turnroute_model::adaptiveness::count_minimal_paths`]).
pub fn count_paths(mesh: &Mesh, src: NodeId, dst: NodeId) -> u128 {
    use std::collections::HashMap;
    let alg = DoubleYAdaptive::new();
    fn go(
        mesh: &Mesh,
        alg: &DoubleYAdaptive,
        memo: &mut HashMap<(u32, usize), u128>,
        node: NodeId,
        arrived: Option<VirtualDirection>,
        dst: NodeId,
    ) -> u128 {
        if node == dst {
            return 1;
        }
        let key = (node.0, arrived.map_or(0, |vd| vd.index() + 1));
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        let mut total = 0u128;
        for vd in alg.route(mesh, node, dst, arrived) {
            let next = mesh.neighbor(node, vd.dir()).expect("offered channel");
            total += go(mesh, alg, memo, next, Some(vd), dst);
        }
        memo.insert(key, total);
        total
    }
    go(mesh, &alg, &mut HashMap::new(), src, None, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_model::adaptiveness::s_fully_adaptive;

    #[test]
    fn fully_adaptive_on_every_pair() {
        let mesh = Mesh::new_2d(6, 6);
        for s in 0..mesh.num_nodes() {
            for d in 0..mesh.num_nodes() {
                if s == d {
                    continue;
                }
                let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                let counted = count_paths(&mesh, s, d);
                let full = s_fully_adaptive(&mesh.coord_of(s), &mesh.coord_of(d));
                assert_eq!(counted, full, "pair {s}->{d}");
            }
        }
    }

    #[test]
    fn westbound_packets_use_class_one() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let cur = mesh.node_at_coords(&[5, 5]);
        let dst = mesh.node_at_coords(&[2, 7]);
        let out = alg.route(&mesh, cur, dst, None);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&VirtualDirection::new(Direction::WEST, VcClass::One)));
        assert!(out.contains(&VirtualDirection::new(Direction::NORTH, VcClass::One)));
    }

    #[test]
    fn eastbound_packets_use_class_two() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let cur = mesh.node_at_coords(&[5, 5]);
        let dst = mesh.node_at_coords(&[7, 2]);
        let out = alg.route(&mesh, cur, dst, None);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&VirtualDirection::new(Direction::EAST, VcClass::One)));
        assert!(out.contains(&VirtualDirection::new(Direction::SOUTH, VcClass::Two)));
    }

    #[test]
    fn pure_vertical_uses_class_two() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let cur = mesh.node_at_coords(&[4, 1]);
        let dst = mesh.node_at_coords(&[4, 6]);
        let out = alg.route(&mesh, cur, dst, None);
        assert_eq!(
            out,
            vec![VirtualDirection::new(Direction::NORTH, VcClass::Two)]
        );
    }

    #[test]
    fn unreachable_states_are_empty() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let cur = mesh.node_at_coords(&[5, 5]);
        let west_dst = mesh.node_at_coords(&[2, 5]);
        // Arrived on east or y2 while still needing west: unreachable.
        for arr in [
            VirtualDirection::new(Direction::EAST, VcClass::One),
            VirtualDirection::new(Direction::NORTH, VcClass::Two),
        ] {
            assert!(alg.route(&mesh, cur, west_dst, Some(arr)).is_empty());
        }
    }

    #[test]
    fn route_is_empty_at_destination() {
        let mesh = Mesh::new_2d(4, 4);
        let alg = DoubleYAdaptive::new();
        let node = mesh.node_at_coords(&[2, 2]);
        assert!(alg.route(&mesh, node, node, None).is_empty());
    }
}
