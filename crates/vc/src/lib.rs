//! Virtual-channel extension of the turn model.
//!
//! The turn-model paper confines itself to networks *without* extra
//! channels, but notes (Section 2, Section 7) that "adding extra physical
//! or virtual channels to the topologies allows the model to produce
//! fully adaptive routing algorithms, the topic of a forthcoming paper
//! \[18\]". This crate follows that pointer for the 2D mesh:
//!
//! * the **y channels are doubled** into virtual classes `y1` and `y2`
//!   (Step 1 of the model: channels in one physical direction split into
//!   distinct virtual directions);
//! * the turn rules prohibit every turn from the `{east, y2}` side back
//!   into the `{west, y1}` side (including the 0-degree turns
//!   `y2 -> y1`), breaking all cycles while leaving **every shortest
//!   path** available;
//! * the resulting [`DoubleYAdaptive`] algorithm is *minimal and fully
//!   adaptive* — `S = S_f` for every pair — at the cost of one extra
//!   virtual channel (buffer + control logic) per vertical link, exactly
//!   the trade-off the paper discusses;
//! * deadlock freedom is verified mechanically by [`VcCdg`], the channel
//!   dependency graph over *virtual* channels;
//! * [`VcSim`] simulates it faithfully: virtual channels have private
//!   single-flit buffers but **share the physical link's bandwidth** (one
//!   flit per physical link per cycle).
//!
//! # Example
//!
//! ```
//! use turnroute_vc::{DoubleYAdaptive, VcCdg};
//! use turnroute_topology::Mesh;
//!
//! let mesh = Mesh::new_2d(8, 8);
//! let alg = DoubleYAdaptive::new();
//! // Fully adaptive *and* deadlock free — with one extra y channel.
//! assert!(VcCdg::from_routing(&mesh, &alg).is_acyclic());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod double_y;
mod graph;
mod sim;
mod specsim;
mod table;
mod vdir;

pub use double_y::{count_paths, DoubleYAdaptive};
pub use graph::{VcCdg, VcChannel};
pub use sim::{VcSim, VcSimReport, VcSimSnapshot};
pub use specsim::{SpecSim, SpecSimReport, SpecView};
pub use table::TableVcRouting;
pub use vdir::{outgoing_vdirs, VcClass, VcRoutingFunction, VirtualDirection};
