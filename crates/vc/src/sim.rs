//! Virtual-channel wormhole simulator.
//!
//! Mirrors the base simulator's mechanics (single-flit buffers, header
//! reservation, tail release, FCFS input selection) with one addition:
//! each *physical* link transfers at most one flit per cycle, shared by
//! its virtual channels — the bandwidth cost of virtual channels the
//! paper points out ("it also reduces the bandwidths of the virtual
//! channels already sharing the physical channel").

use crate::{VcRoutingFunction, VirtualDirection};
use std::collections::VecDeque;
use turnroute_rng::rngs::StdRng;
use turnroute_rng::{Rng, SeedableRng};
use turnroute_sim::obs::{ChannelLayout, PacketBlame, StallReason, StreamingHistogram};
use turnroute_sim::{
    BlameTotals, ChoiceScript, FaultTarget, LengthDist, NoopObserver, Packet, PacketId,
    RunTermination, SimConfig, SimObserver, SimReport,
};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};
use turnroute_traffic::TrafficPattern;

const NONE_U32: u32 = u32::MAX;

/// Results of a virtual-channel simulation (same shape as the base
/// simulator's report).
pub type VcSimReport = SimReport;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufFlit {
    packet: u32,
    is_head: bool,
    is_tail: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Emitting {
    packet: u32,
    sent: u32,
}

/// A complete copy of a [`VcSim`]'s mutable state, produced by
/// [`VcSim::snapshot`] and consumed by [`VcSim::restore`].
///
/// Same boundary as the base engine's
/// [`SimSnapshot`](turnroute_sim::SimSnapshot): the simulation state is
/// captured, the static network description and the attached observer are
/// not.
#[derive(Debug, Clone, PartialEq)]
pub struct VcSimSnapshot {
    now: u64,
    rng: StdRng,
    fault_cursor: usize,
    fault_depth: Vec<u16>,
    faulty: Vec<bool>,
    node_down: Vec<u16>,
    deadlines: VecDeque<(u64, u32)>,
    retry_counts: Vec<u32>,
    dropped_packets: u64,
    unroutable_packets: u64,
    total_retries: u64,
    owner: Vec<u32>,
    buf: Vec<Option<BufFlit>>,
    assigned_out: Vec<u32>,
    head_since: Vec<u64>,
    packets: Vec<Packet>,
    queues: Vec<VecDeque<u32>>,
    emitting: Vec<Option<Emitting>>,
    next_arrival: Vec<f64>,
    progress_cycles: Vec<u64>,
    last_progress: Vec<u64>,
    blame: BlameTotals,
    window: (u64, u64),
    generated_packets: u64,
    generated_flits: u64,
    delivered_flits_in_window: u64,
    max_queue_len: usize,
    last_move: u64,
    deadlocked: bool,
    total_stall_cycles: u64,
}

/// A wormhole simulation over a double-y virtual-channel mesh.
///
/// Uses the same [`SimConfig`] as the base simulator; input selection is
/// local FCFS and output selection takes the routing function's first
/// offered virtual channel that is free (the `input_policy` /
/// `output_policy` fields are ignored).
///
/// Like the base engine, the simulation is generic over a
/// [`SimObserver`]; the default [`NoopObserver`] compiles every hook call
/// away. The virtual-channel engine fires the per-flit hooks
/// (`on_inject`, `on_flit_source`, `on_flit_advance`, `on_deliver`,
/// `on_fault`, `on_purge`, `on_drop`, `on_cycle_end`) using the slot
/// numbering of [`VcSim::channel_layout`]; the turn-level hooks
/// (`on_turn`, `on_misroute`) are specific to the base engine's physical
/// directions and are not fired here.
pub struct VcSim<'a, O: SimObserver = NoopObserver> {
    mesh: &'a Mesh,
    routing: &'a dyn VcRoutingFunction,
    pattern: &'a dyn TrafficPattern,
    cfg: SimConfig,
    rng: StdRng,
    obs: O,
    now: u64,

    num_nodes: usize,
    /// Virtual-channel classes per physical direction (2 for double-y).
    num_classes: usize,
    /// Network VC slots per node: `4 * num_classes`.
    slots_per_node: usize,
    /// Network VC slots: `node * slots_per_node + vdir.index_in(classes)`;
    /// then injection, then ejection slots.
    inj_base: usize,
    ej_base: usize,
    num_channels: usize,
    exists: Vec<bool>,
    input_router: Vec<u32>,
    /// Physical link of each slot (per-cycle bandwidth arbiter).
    phys_link: Vec<u32>,
    num_links: usize,

    // --- fault injection (same model as the base engine: fail-stop for
    // new channel acquisitions, in-flight flits drain) ---
    /// Time-sorted transitions compiled from the config's fault plan. A
    /// link fault takes down both virtual channels of the physical link.
    fault_events: Vec<turnroute_sim::FaultEvent>,
    fault_cursor: usize,
    /// Per-slot failure refcount (overlapping faults compose).
    fault_depth: Vec<u16>,
    faulty: Vec<bool>,
    /// Whether the plan has any fault at all; gates every hot-path
    /// `faulty` lookup so an empty plan costs one predictable branch.
    faults_possible: bool,
    /// Per-node failure refcount; a down router neither injects nor
    /// ejects.
    node_down: Vec<u16>,

    // --- graceful degradation ---
    /// Packet-lifetime deadlines, nondecreasing; expiry is an amortized
    /// O(1) front-pop scan.
    deadlines: VecDeque<(u64, u32)>,
    retry_counts: Vec<u32>,
    dropped_packets: u64,
    unroutable_packets: u64,
    total_retries: u64,

    owner: Vec<u32>,
    buf: Vec<Option<BufFlit>>,
    assigned_out: Vec<u32>,
    head_since: Vec<u64>,

    packets: Vec<Packet>,
    queues: Vec<VecDeque<u32>>,
    emitting: Vec<Option<Emitting>>,
    next_arrival: Vec<f64>,

    // --- latency blame attribution (turnscope; misroute is always zero
    // here — the double-y scheme only offers productive channels) ---
    /// Per-packet in-network cycles with at least one flit movement,
    /// current injection attempt only.
    progress_cycles: Vec<u64>,
    /// Cycle stamp deduplicating progress increments (`u64::MAX` = no
    /// movement yet).
    last_progress: Vec<u64>,
    /// Blame totals accumulated over delivered window packets.
    blame: BlameTotals,

    window: (u64, u64),
    generated_packets: u64,
    generated_flits: u64,
    delivered_flits_in_window: u64,
    max_queue_len: usize,
    last_move: u64,
    deadlocked: bool,
    /// Occupied-channel cycles that advanced nothing, measurement window
    /// only.
    total_stall_cycles: u64,
}

impl<'a> VcSim<'a> {
    /// Create a virtual-channel simulation with no instrumentation.
    pub fn new(
        mesh: &'a Mesh,
        routing: &'a dyn VcRoutingFunction,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
    ) -> VcSim<'a> {
        VcSim::with_observer(mesh, routing, pattern, cfg, NoopObserver)
    }
}

impl<'a, O: SimObserver> VcSim<'a, O> {
    /// Create a virtual-channel simulation that reports events to `obs`.
    pub fn with_observer(
        mesh: &'a Mesh,
        routing: &'a dyn VcRoutingFunction,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
        obs: O,
    ) -> VcSim<'a, O> {
        assert_eq!(mesh.num_dims(), 2, "VC engine is for 2D meshes");
        let num_nodes = mesh.num_nodes();
        let num_classes = routing.num_classes();
        assert!(num_classes >= 1, "need at least one VC class");
        let slots_per_node = 4 * num_classes;
        let inj_base = num_nodes * slots_per_node;
        let ej_base = inj_base + num_nodes;
        let num_channels = ej_base + num_nodes;
        let phys_network_links = num_nodes * 4;
        let num_links = phys_network_links + 2 * num_nodes;

        let mut exists = vec![false; num_channels];
        let mut input_router = vec![NONE_U32; num_channels];
        let mut phys_link = vec![NONE_U32; num_channels];
        for node in 0..num_nodes {
            let node_id = NodeId(node as u32);
            for vd in VirtualDirection::all_classes(2, num_classes) {
                if !routing.channel_exists(vd) {
                    continue;
                }
                if let Some(next) = mesh.neighbor(node_id, vd.dir()) {
                    let slot = node * slots_per_node + vd.index_in(num_classes);
                    exists[slot] = true;
                    input_router[slot] = next.0;
                    phys_link[slot] = (node * 4 + vd.dir().index()) as u32;
                }
            }
            exists[inj_base + node] = true;
            input_router[inj_base + node] = node as u32;
            phys_link[inj_base + node] = (phys_network_links + node) as u32;
            exists[ej_base + node] = true;
            input_router[ej_base + node] = node as u32;
            phys_link[ej_base + node] = (phys_network_links + num_nodes + node) as u32;
        }

        let fault_events = cfg.fault_plan.events();
        let faults_possible = !fault_events.is_empty();
        let mut sim = VcSim {
            mesh,
            routing,
            pattern,
            rng: StdRng::seed_from_u64(cfg.seed),
            obs,
            now: 0,
            fault_events,
            fault_cursor: 0,
            faults_possible,
            fault_depth: vec![0; num_channels],
            faulty: vec![false; num_channels],
            node_down: vec![0; num_nodes],
            deadlines: VecDeque::new(),
            retry_counts: Vec::new(),
            dropped_packets: 0,
            unroutable_packets: 0,
            total_retries: 0,
            cfg,
            num_nodes,
            num_classes,
            slots_per_node,
            inj_base,
            ej_base,
            num_channels,
            exists,
            input_router,
            phys_link,
            num_links,
            owner: vec![NONE_U32; num_channels],
            buf: vec![None; num_channels],
            assigned_out: vec![NONE_U32; num_channels],
            head_since: vec![0; num_channels],
            packets: Vec::new(),
            queues: vec![VecDeque::new(); num_nodes],
            emitting: vec![None; num_nodes],
            next_arrival: vec![0.0; num_nodes],
            progress_cycles: Vec::new(),
            last_progress: Vec::new(),
            blame: BlameTotals::default(),
            window: (0, u64::MAX),
            generated_packets: 0,
            generated_flits: 0,
            delivered_flits_in_window: 0,
            max_queue_len: 0,
            last_move: 0,
            deadlocked: false,
            total_stall_cycles: 0,
        };
        if sim.cfg.injection_rate > 0.0 {
            let mean = sim.mean_interarrival();
            for v in 0..num_nodes {
                sim.next_arrival[v] = sim.sample_exp(mean);
            }
        }
        sim
    }

    /// The current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consume the simulation, returning the observer.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// The engine's slot numbering, for decoding observer events:
    /// `4 * num_classes` virtual-direction slots per node
    /// (`node * slots_per_node + vdir.index_in(num_classes)`, the shape of
    /// a `2 * num_classes`-dimension layout), then one injection and one
    /// ejection slot per node. [`ChannelLayout::dir_of`] is meaningless
    /// here — slot index pairs are (direction, VC class) — but the
    /// injection/ejection predicates and `node_of` decode correctly.
    pub fn channel_layout(&self) -> ChannelLayout {
        ChannelLayout::new(self.num_nodes, 2 * self.num_classes)
    }

    /// Whether deadlock was detected.
    pub fn deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// All packets created so far.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Manually queue a packet.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or `len == 0`.
    pub fn inject_packet(&mut self, src: NodeId, dst: NodeId, len: u32) -> PacketId {
        assert_ne!(src, dst, "packet must leave its source");
        assert!(len >= 1, "packet needs at least one flit");
        PacketId(self.create_packet(src, dst, len))
    }

    fn create_packet(&mut self, src: NodeId, dst: NodeId, len: u32) -> u32 {
        let id = self.packets.len() as u32;
        self.packets.push(Packet {
            id: PacketId(id),
            src,
            dst,
            len,
            created: self.now,
            injected: None,
            delivered: None,
            dropped: None,
            hops: 0,
            misroutes: 0,
        });
        if self.cfg.packet_timeout > 0 {
            self.deadlines
                .push_back((self.now + self.cfg.packet_timeout, id));
            self.retry_counts.push(0);
        }
        self.progress_cycles.push(0);
        self.last_progress.push(u64::MAX);
        self.queues[src.index()].push_back(id);
        if self.in_window() {
            self.generated_packets += 1;
            self.generated_flits += u64::from(len);
        }
        id
    }

    fn in_window(&self) -> bool {
        self.now >= self.window.0 && self.now < self.window.1
    }

    fn mean_interarrival(&self) -> f64 {
        self.cfg.lengths.mean() / self.cfg.injection_rate
    }

    fn sample_exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    fn sample_len(&mut self) -> u32 {
        match self.cfg.lengths {
            LengthDist::Fixed(n) => n,
            LengthDist::Bimodal { short, long } => {
                if self.rng.gen_bool(0.5) {
                    short
                } else {
                    long
                }
            }
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        self.apply_faults();
        self.expire_packets();
        self.generate();
        self.assign_outputs();
        self.advance();
        self.feed_injection();
        if self.now.saturating_sub(self.last_move) >= self.cfg.deadlock_threshold
            && self.buf.iter().any(Option::is_some)
        {
            self.deadlocked = true;
        }
        if O::ENABLED {
            self.obs.on_cycle_end(self.now);
        }
        self.now += 1;
    }

    /// Run warmup → measure → drain and summarize.
    pub fn run(&mut self) -> VcSimReport {
        let start = self.now;
        let ms = start + self.cfg.warmup_cycles;
        let me = ms + self.cfg.measure_cycles;
        let end = me + self.cfg.drain_cycles;
        self.window = (ms, me);
        while self.now < end && !self.deadlocked {
            self.step();
        }
        self.report()
    }

    /// Step until idle or `max_cycles` pass; `true` if everything
    /// drained.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        let end = self.now + max_cycles;
        while self.now < end && !self.deadlocked {
            self.step();
            if self.is_idle() {
                return true;
            }
        }
        self.is_idle()
    }

    /// Whether nothing is queued, streaming, or in flight.
    pub fn is_idle(&self) -> bool {
        self.buf.iter().all(Option::is_none)
            && self.queues.iter().all(VecDeque::is_empty)
            && self.emitting.iter().all(Option::is_none)
    }

    /// Summarize packets created in the measurement window.
    pub fn report(&self) -> VcSimReport {
        let (ms, me) = self.window;
        let mut hist = StreamingHistogram::new();
        let mut network_sum = 0u64;
        let mut hops_sum = 0u64;
        for p in &self.packets {
            if p.created < ms || p.created >= me {
                continue;
            }
            if let Some(lat) = p.latency() {
                hist.record(lat);
                network_sum += p.network_latency().unwrap_or(lat);
                hops_sum += u64::from(p.hops);
            }
        }
        let delivered = hist.count();
        let avg = |sum: u64, n: u64| if n == 0 { 0.0 } else { sum as f64 / n as f64 };
        SimReport {
            generated_packets: self.generated_packets,
            generated_flits: self.generated_flits,
            delivered_packets: delivered,
            delivered_flits_in_window: self.delivered_flits_in_window,
            measure_cycles: me.saturating_sub(ms),
            avg_latency_cycles: hist.mean(),
            p50_latency_cycles: hist.p50() as f64,
            p90_latency_cycles: hist.p90() as f64,
            p99_latency_cycles: hist.p99() as f64,
            max_latency_cycles: hist.max(),
            avg_network_latency_cycles: avg(network_sum, delivered),
            avg_hops: avg(hops_sum, delivered),
            avg_misroutes: 0.0,
            blame: self.blame,
            total_stall_cycles: self.total_stall_cycles,
            queued_at_end: self.queues.iter().map(|q| q.len() as u64).sum(),
            max_queue_len: self.max_queue_len,
            dropped_packets: self.dropped_packets,
            unroutable_packets: self.unroutable_packets,
            retries: self.total_retries,
            deadlocked: self.deadlocked,
            termination: if self.deadlocked {
                RunTermination::Deadlock
            } else if self.generated_packets
                > delivered + self.dropped_packets + self.unroutable_packets
            {
                // Same cohort rule as the base engine: window packets
                // unresolved at the horizon mean the measured load never
                // drained.
                RunTermination::Timeout
            } else {
                RunTermination::Completed
            },
            end_cycle: self.now,
        }
    }

    /// Every virtual-channel slot of the physical link leaving `node` in
    /// `dir` (one per class, whether or not the routing uses it).
    fn link_vc_slots(&self, node: NodeId, dir: Direction) -> Vec<usize> {
        let base = node.index() * self.slots_per_node + dir.index() * self.num_classes;
        (base..base + self.num_classes).collect()
    }

    /// Apply every fault transition scheduled at or before `now`.
    fn apply_faults(&mut self) {
        while self.fault_cursor < self.fault_events.len()
            && self.fault_events[self.fault_cursor].at <= self.now
        {
            let ev = self.fault_events[self.fault_cursor];
            self.fault_cursor += 1;
            match ev.target {
                FaultTarget::Link { node, dir } => {
                    // In the double-y scheme only the y links carry two
                    // virtual channels; fail whichever VC slots the
                    // physical link actually has.
                    let slots = self.link_vc_slots(node, dir);
                    assert!(
                        slots.iter().any(|&s| self.exists[s]),
                        "fault plan names a missing channel: {node} {dir}"
                    );
                    for slot in slots {
                        if self.exists[slot] {
                            self.shift_fault(slot, ev.down);
                        }
                    }
                }
                FaultTarget::Node(v) => {
                    let vi = v.index();
                    if ev.down {
                        self.node_down[vi] += 1;
                    } else {
                        self.node_down[vi] -= 1;
                    }
                    for dir in Direction::all(2) {
                        if self.mesh.neighbor(v, dir).is_some() {
                            for slot in self.link_vc_slots(v, dir) {
                                if self.exists[slot] {
                                    self.shift_fault(slot, ev.down);
                                }
                            }
                        }
                        if let Some(prev) = self.mesh.neighbor(v, dir.opposite()) {
                            for slot in self.link_vc_slots(prev, dir) {
                                if self.exists[slot] {
                                    self.shift_fault(slot, ev.down);
                                }
                            }
                        }
                    }
                    self.shift_fault(self.inj_base + vi, ev.down);
                    self.shift_fault(self.ej_base + vi, ev.down);
                }
            }
        }
    }

    fn shift_fault(&mut self, slot: usize, down: bool) {
        let was = self.faulty[slot];
        if down {
            self.fault_depth[slot] += 1;
        } else {
            self.fault_depth[slot] -= 1;
        }
        let is = self.fault_depth[slot] > 0;
        self.faulty[slot] = is;
        if O::ENABLED && was != is {
            self.obs.on_fault(self.now, slot, is);
        }
    }

    /// Purge packets whose lifetime expired: retry while retries remain
    /// and delivery is still possible, otherwise drop and account. Same
    /// precedence as the base engine: a purge counts as progress, so
    /// `packet_timeout < deadlock_threshold` degrades gracefully.
    fn expire_packets(&mut self) {
        if self.cfg.packet_timeout == 0 {
            return;
        }
        while let Some(&(deadline, pid)) = self.deadlines.front() {
            if deadline > self.now {
                break;
            }
            self.deadlines.pop_front();
            let p = self.packets[pid as usize];
            if p.delivered.is_some() || p.dropped.is_some() {
                continue;
            }
            self.purge_packet(pid);
            if O::ENABLED {
                self.obs.on_purge(self.now, PacketId(pid));
            }
            let unroutable = self.node_down[p.src.index()] > 0 || self.node_down[p.dst.index()] > 0;
            let counted = p.created >= self.window.0 && p.created < self.window.1;
            if !unroutable && self.retry_counts[pid as usize] < self.cfg.max_retries {
                self.retry_counts[pid as usize] += 1;
                if counted {
                    self.total_retries += 1;
                }
                let p = &mut self.packets[pid as usize];
                p.injected = None;
                p.hops = 0;
                p.misroutes = 0;
                self.progress_cycles[pid as usize] = 0;
                self.last_progress[pid as usize] = u64::MAX;
                self.queues[p.src.index()].push_back(pid);
                self.deadlines
                    .push_back((self.now + self.cfg.packet_timeout, pid));
            } else {
                self.packets[pid as usize].dropped = Some(self.now);
                if counted {
                    if unroutable {
                        self.unroutable_packets += 1;
                    } else {
                        self.dropped_packets += 1;
                    }
                }
                if O::ENABLED {
                    self.obs.on_drop(self.now, PacketId(pid), unroutable);
                }
            }
            self.last_move = self.now;
        }
    }

    /// Remove every trace of `pid` from the network.
    fn purge_packet(&mut self, pid: u32) {
        let src = self.packets[pid as usize].src.index();
        self.queues[src].retain(|&q| q != pid);
        if matches!(self.emitting[src], Some(e) if e.packet == pid) {
            self.emitting[src] = None;
        }
        for slot in 0..self.num_channels {
            if self.owner[slot] != pid {
                continue;
            }
            if matches!(self.buf[slot], Some(f) if f.packet == pid) {
                self.buf[slot] = None;
            }
            self.owner[slot] = NONE_U32;
            self.assigned_out[slot] = NONE_U32;
        }
    }

    fn generate(&mut self) {
        if self.cfg.injection_rate <= 0.0 {
            return;
        }
        let mean = self.mean_interarrival();
        for v in 0..self.num_nodes {
            while self.next_arrival[v] <= self.now as f64 {
                let step = self.sample_exp(mean);
                self.next_arrival[v] += step;
                let src = NodeId(v as u32);
                if let Some(dst) = self.pattern.dest(self.mesh, src, &mut self.rng) {
                    let len = self.sample_len();
                    self.create_packet(src, dst, len);
                }
            }
            if self.in_window() {
                self.max_queue_len = self.max_queue_len.max(self.queues[v].len());
            }
        }
    }

    fn vdir_of_slot(&self, slot: usize) -> VirtualDirection {
        let vidx = slot % self.slots_per_node;
        let dir = turnroute_topology::Direction::from_index(vidx / self.num_classes);
        let class = crate::VcClass::new((vidx % self.num_classes) as u8);
        VirtualDirection::new(dir, class)
    }

    fn assign_outputs(&mut self) {
        let mut heads: Vec<u32> = Vec::new();
        for slot in 0..self.ej_base {
            if !self.exists[slot] || self.assigned_out[slot] != NONE_U32 {
                continue;
            }
            if matches!(self.buf[slot], Some(f) if f.is_head) {
                heads.push(slot as u32);
            }
        }
        heads.sort_unstable_by_key(|&c| (self.head_since[c as usize], c));
        for &c in &heads {
            self.try_assign(c as usize);
        }
    }

    fn try_assign(&mut self, c: usize) {
        let flit = self.buf[c].expect("head present");
        let pkt = self.packets[flit.packet as usize];
        let v = NodeId(self.input_router[c]);
        if v == pkt.dst {
            let ej = self.ej_base + v.index();
            if self.owner[ej] == NONE_U32 && !(self.faults_possible && self.faulty[ej]) {
                self.assigned_out[c] = ej as u32;
                self.owner[ej] = flit.packet;
            }
            return;
        }
        let arrived = if c >= self.inj_base {
            None
        } else {
            Some(self.vdir_of_slot(c))
        };
        // Faulty channels are simply skipped: removing outputs from the
        // double-y scheme never adds edges to its (acyclic) virtual-channel
        // dependency graph, so deadlock freedom survives any fault
        // pattern; packets with every offered channel down wait for the
        // packet timeout.
        for vd in self.routing.route(self.mesh, v, pkt.dst, arrived) {
            let slot = v.index() * self.slots_per_node + vd.index_in(self.num_classes);
            debug_assert!(self.exists[slot], "offered channel must exist");
            if self.owner[slot] == NONE_U32 && !(self.faults_possible && self.faulty[slot]) {
                self.assigned_out[c] = slot as u32;
                self.owner[slot] = flit.packet;
                self.packets[flit.packet as usize].hops += 1;
                return;
            }
        }
    }

    // ---- choice-scripted stepping (model checking) ------------------

    /// Advance one cycle with every arbitration decision resolved by
    /// `script` instead of the engine's FCFS/first-free defaults.
    ///
    /// Same phases in the same order as [`VcSim::step`]; the explored
    /// decision points are (1) which waiting head each router serves
    /// next and (2) which *free* offered virtual channel a served head
    /// acquires — together these cover every input-selection and
    /// VC-allocation policy. The physical-link bandwidth arbiter in
    /// `advance` stays deterministic (slot order): it is work-conserving
    /// and re-arbitrated from scratch every cycle, so it can delay a flit
    /// by at most the link's service of other ready flits and can never
    /// create a circular wait — a sound reduction for deadlock checking.
    pub fn step_with_choices(&mut self, script: &mut ChoiceScript) {
        self.apply_faults();
        self.expire_packets();
        self.generate();
        self.assign_outputs_scripted(script);
        self.advance();
        self.feed_injection();
        if self.now.saturating_sub(self.last_move) >= self.cfg.deadlock_threshold
            && self.buf.iter().any(Option::is_some)
        {
            self.deadlocked = true;
        }
        if O::ENABLED {
            self.obs.on_cycle_end(self.now);
        }
        self.now += 1;
    }

    /// Phase A under the choice oracle: same routable-head collection as
    /// [`VcSim::assign_outputs`], grouped by input router (router
    /// arbitrations at distinct routers touch disjoint channel state and
    /// commute), served in a script-chosen order.
    fn assign_outputs_scripted(&mut self, script: &mut ChoiceScript) {
        let mut heads: Vec<u32> = Vec::new();
        for slot in 0..self.ej_base {
            if !self.exists[slot] || self.assigned_out[slot] != NONE_U32 {
                continue;
            }
            if matches!(self.buf[slot], Some(f) if f.is_head) {
                heads.push(slot as u32);
            }
        }
        heads.sort_unstable_by_key(|&c| (self.input_router[c as usize], c));
        let mut i = 0;
        while i < heads.len() {
            let router = self.input_router[heads[i] as usize];
            let mut j = i;
            while j < heads.len() && self.input_router[heads[j] as usize] == router {
                j += 1;
            }
            let mut remaining: Vec<u32> = heads[i..j].to_vec();
            while !remaining.is_empty() {
                let k = script.decide(remaining.len());
                let c = remaining.remove(k);
                self.try_assign_scripted(c as usize, script);
            }
            i = j;
        }
    }

    /// [`VcSim::try_assign`] with the free-VC pick delegated to the
    /// oracle: instead of the first free offered virtual channel, any of
    /// them is reachable.
    fn try_assign_scripted(&mut self, c: usize, script: &mut ChoiceScript) {
        let flit = self.buf[c].expect("head present");
        let pkt = self.packets[flit.packet as usize];
        let v = NodeId(self.input_router[c]);
        if v == pkt.dst {
            let ej = self.ej_base + v.index();
            if self.owner[ej] == NONE_U32 && !(self.faults_possible && self.faulty[ej]) {
                self.assigned_out[c] = ej as u32;
                self.owner[ej] = flit.packet;
            }
            return;
        }
        let arrived = if c >= self.inj_base {
            None
        } else {
            Some(self.vdir_of_slot(c))
        };
        let mut free: Vec<usize> = Vec::with_capacity(4);
        for vd in self.routing.route(self.mesh, v, pkt.dst, arrived) {
            let slot = v.index() * self.slots_per_node + vd.index_in(self.num_classes);
            debug_assert!(self.exists[slot], "offered channel must exist");
            if self.owner[slot] == NONE_U32 && !(self.faults_possible && self.faulty[slot]) {
                free.push(slot);
            }
        }
        if free.is_empty() {
            return;
        }
        let slot = free[script.decide(free.len())];
        self.assigned_out[c] = slot as u32;
        self.owner[slot] = flit.packet;
        self.packets[flit.packet as usize].hops += 1;
    }

    // ---- snapshot / restore -----------------------------------------

    /// Capture the engine's complete mutable state. See [`VcSimSnapshot`].
    pub fn snapshot(&self) -> VcSimSnapshot {
        VcSimSnapshot {
            now: self.now,
            rng: self.rng.clone(),
            fault_cursor: self.fault_cursor,
            fault_depth: self.fault_depth.clone(),
            faulty: self.faulty.clone(),
            node_down: self.node_down.clone(),
            deadlines: self.deadlines.clone(),
            retry_counts: self.retry_counts.clone(),
            dropped_packets: self.dropped_packets,
            unroutable_packets: self.unroutable_packets,
            total_retries: self.total_retries,
            owner: self.owner.clone(),
            buf: self.buf.clone(),
            assigned_out: self.assigned_out.clone(),
            head_since: self.head_since.clone(),
            packets: self.packets.clone(),
            queues: self.queues.clone(),
            emitting: self.emitting.clone(),
            next_arrival: self.next_arrival.clone(),
            progress_cycles: self.progress_cycles.clone(),
            last_progress: self.last_progress.clone(),
            blame: self.blame,
            window: self.window,
            generated_packets: self.generated_packets,
            generated_flits: self.generated_flits,
            delivered_flits_in_window: self.delivered_flits_in_window,
            max_queue_len: self.max_queue_len,
            last_move: self.last_move,
            deadlocked: self.deadlocked,
            total_stall_cycles: self.total_stall_cycles,
        }
    }

    /// Restore state captured by [`VcSim::snapshot`]. The observer is not
    /// rewound.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a differently-shaped network.
    pub fn restore(&mut self, snap: &VcSimSnapshot) {
        assert_eq!(
            snap.owner.len(),
            self.num_channels,
            "snapshot from a different network shape"
        );
        assert_eq!(
            snap.queues.len(),
            self.num_nodes,
            "snapshot from a different network shape"
        );
        self.now = snap.now;
        self.rng = snap.rng.clone();
        self.fault_cursor = snap.fault_cursor;
        self.fault_depth.clone_from(&snap.fault_depth);
        self.faulty.clone_from(&snap.faulty);
        self.node_down.clone_from(&snap.node_down);
        self.deadlines.clone_from(&snap.deadlines);
        self.retry_counts.clone_from(&snap.retry_counts);
        self.dropped_packets = snap.dropped_packets;
        self.unroutable_packets = snap.unroutable_packets;
        self.total_retries = snap.total_retries;
        self.owner.clone_from(&snap.owner);
        self.buf.clone_from(&snap.buf);
        self.assigned_out.clone_from(&snap.assigned_out);
        self.head_since.clone_from(&snap.head_since);
        self.packets.clone_from(&snap.packets);
        self.queues.clone_from(&snap.queues);
        self.emitting.clone_from(&snap.emitting);
        self.next_arrival.clone_from(&snap.next_arrival);
        self.progress_cycles.clone_from(&snap.progress_cycles);
        self.last_progress.clone_from(&snap.last_progress);
        self.blame = snap.blame;
        self.window = snap.window;
        self.generated_packets = snap.generated_packets;
        self.generated_flits = snap.generated_flits;
        self.delivered_flits_in_window = snap.delivered_flits_in_window;
        self.max_queue_len = snap.max_queue_len;
        self.last_move = snap.last_move;
        self.deadlocked = snap.deadlocked;
        self.total_stall_cycles = snap.total_stall_cycles;
    }

    // ---- model-checker state views ----------------------------------

    /// Total channel slots (eight VC slots per node, then injection, then
    /// ejection; see [`VcSim::channel_layout`]).
    pub fn num_slots(&self) -> usize {
        self.num_channels
    }

    /// The packet whose worm currently owns `slot`, if any.
    pub fn slot_owner(&self, slot: usize) -> Option<u32> {
        (self.owner[slot] != NONE_U32).then_some(self.owner[slot])
    }

    /// The output slot the worm crossing input `slot` is bound to, if
    /// routed.
    pub fn slot_binding(&self, slot: usize) -> Option<usize> {
        (self.assigned_out[slot] != NONE_U32).then_some(self.assigned_out[slot] as usize)
    }

    /// The flit buffered at `slot` (VC buffers hold at most one) as
    /// `(packet, is_head, is_tail)`.
    pub fn slot_flits(&self, slot: usize) -> impl Iterator<Item = (u32, bool, bool)> + '_ {
        self.buf[slot]
            .iter()
            .map(|f| (f.packet, f.is_head, f.is_tail))
    }

    /// Packets queued at `node`'s source, front first.
    pub fn source_queue(&self, node: usize) -> impl Iterator<Item = u32> + '_ {
        self.queues[node].iter().copied()
    }

    /// The packet currently streaming into `node`'s injection channel and
    /// how many of its flits have been emitted.
    pub fn source_emitting(&self, node: usize) -> Option<(u32, u32)> {
        self.emitting[node].map(|e| (e.packet, e.sent))
    }

    fn advance(&mut self) {
        const UNKNOWN: u8 = 0;
        const IN_PROGRESS: u8 = 1;
        const YES: u8 = 2;
        const NO: u8 = 3;
        let mut state = vec![UNKNOWN; self.num_channels];
        let mut order: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();

        // Per-channel stall candidates (occupied at cycle start); cleared
        // as moves land so the survivors fire `on_stall`.
        let mut stalled: Vec<bool> = if O::ENABLED {
            vec![false; self.num_channels]
        } else {
            Vec::new()
        };
        let mut occupied = 0usize;
        for start in 0..self.num_channels {
            if self.buf[start].is_none() {
                continue;
            }
            occupied += 1;
            if O::ENABLED {
                stalled[start] = true;
            }
            if state[start] != UNKNOWN {
                continue;
            }
            stack.clear();
            stack.push(start as u32);
            while let Some(&c) = stack.last() {
                let c = c as usize;
                match state[c] {
                    UNKNOWN => {
                        if self.buf[c].is_none() {
                            state[c] = NO;
                            stack.pop();
                            continue;
                        }
                        if c >= self.ej_base {
                            state[c] = YES;
                            order.push(c as u32);
                            stack.pop();
                            continue;
                        }
                        let o = self.assigned_out[c];
                        if o == NONE_U32 {
                            state[c] = NO;
                            stack.pop();
                            continue;
                        }
                        let o = o as usize;
                        if self.buf[o].is_none() {
                            state[c] = YES;
                            order.push(c as u32);
                            stack.pop();
                            continue;
                        }
                        match state[o] {
                            UNKNOWN => {
                                state[c] = IN_PROGRESS;
                                stack.push(o as u32);
                            }
                            IN_PROGRESS => {
                                state[c] = NO;
                                stack.pop();
                            }
                            YES => {
                                state[c] = YES;
                                order.push(c as u32);
                                stack.pop();
                            }
                            _ => {
                                state[c] = NO;
                                stack.pop();
                            }
                        }
                    }
                    IN_PROGRESS => {
                        let o = self.assigned_out[c] as usize;
                        if state[o] == YES {
                            state[c] = YES;
                            order.push(c as u32);
                        } else {
                            state[c] = NO;
                        }
                        stack.pop();
                    }
                    _ => {
                        stack.pop();
                    }
                }
            }
        }

        // Apply targets-first, with one flit per physical link per cycle.
        // A move is skipped if its link budget is spent or its target did
        // not actually vacate (because an earlier move was skipped);
        // skipping cascades naturally through the occupancy check.
        let in_window = self.in_window();
        let mut link_used = vec![false; self.num_links];
        let mut moved = 0usize;
        for &c in &order {
            let c = c as usize;
            let Some(flit) = self.buf[c] else { continue };
            let pidx = flit.packet as usize;
            if c >= self.ej_base {
                // Consume from the ejection buffer (the processor side of
                // the ejection link was already paid when entering it).
                self.buf[c] = None;
                self.last_move = self.now;
                moved += 1;
                if self.last_progress[pidx] != self.now {
                    self.last_progress[pidx] = self.now;
                    self.progress_cycles[pidx] += 1;
                }
                if in_window {
                    self.delivered_flits_in_window += 1;
                }
                if O::ENABLED {
                    stalled[c] = false;
                    self.obs.on_flit_advance(
                        self.now,
                        c,
                        None,
                        PacketId(flit.packet),
                        flit.is_tail,
                    );
                }
                if flit.is_tail {
                    self.owner[c] = NONE_U32;
                    let p = &mut self.packets[pidx];
                    p.delivered = Some(self.now);
                    let (id, created, hops) = (p.id, p.created, p.hops);
                    let injected = p.injected.expect("delivered packet was injected");
                    let latency = self.now - created;
                    let progress = self.progress_cycles[pidx];
                    let blame = PacketBlame {
                        queue_cycles: injected - created,
                        blocked_cycles: (self.now - injected) - progress,
                        service_cycles: progress,
                        misroute_cycles: 0,
                    };
                    debug_assert_eq!(blame.total(), latency);
                    if created >= self.window.0 && created < self.window.1 {
                        self.blame.queue_cycles += blame.queue_cycles;
                        self.blame.blocked_cycles += blame.blocked_cycles;
                        self.blame.service_cycles += blame.service_cycles;
                    }
                    if O::ENABLED {
                        self.obs.on_deliver(self.now, id, latency, hops);
                        self.obs.on_blame(self.now, id, blame);
                    }
                }
                continue;
            }
            let o = self.assigned_out[c] as usize;
            if self.buf[o].is_some() {
                continue; // upstream of a skipped move
            }
            let link = self.phys_link[o] as usize;
            if link_used[link] {
                continue; // physical bandwidth spent this cycle
            }
            link_used[link] = true;
            self.buf[c] = None;
            self.buf[o] = Some(flit);
            self.last_move = self.now;
            moved += 1;
            if self.last_progress[pidx] != self.now {
                self.last_progress[pidx] = self.now;
                self.progress_cycles[pidx] += 1;
            }
            if O::ENABLED {
                stalled[c] = false;
                self.obs
                    .on_flit_advance(self.now, c, Some(o), PacketId(flit.packet), flit.is_tail);
            }
            if flit.is_head {
                self.head_since[o] = self.now;
            }
            if flit.is_tail {
                self.owner[c] = NONE_U32;
                self.assigned_out[c] = NONE_U32;
            }
        }
        // Occupied channels that moved nothing this cycle stalled.
        if in_window {
            self.total_stall_cycles += (occupied - moved) as u64;
        }
        if O::ENABLED {
            for (c, &was_stalled) in stalled.iter().enumerate() {
                if !was_stalled {
                    continue;
                }
                let Some(flit) = self.buf[c] else { continue };
                let reason = if c < self.ej_base && self.assigned_out[c] == NONE_U32 {
                    StallReason::NotRouted
                } else {
                    StallReason::Backpressure
                };
                self.obs
                    .on_stall(self.now, c, PacketId(flit.packet), reason);
            }
        }
    }

    fn feed_injection(&mut self) {
        for v in 0..self.num_nodes {
            let inj = self.inj_base + v;
            if (self.faults_possible && self.faulty[inj]) || self.buf[inj].is_some() {
                continue;
            }
            if self.emitting[v].is_none() {
                let Some(pid) = self.queues[v].pop_front() else {
                    continue;
                };
                self.packets[pid as usize].injected = Some(self.now);
                self.emitting[v] = Some(Emitting {
                    packet: pid,
                    sent: 0,
                });
                if O::ENABLED {
                    let p = self.packets[pid as usize];
                    self.obs.on_inject(self.now, p.id, p.src, p.dst, p.len);
                }
            }
            let Emitting { packet, sent } = self.emitting[v].expect("set above");
            let len = self.packets[packet as usize].len;
            let flit = BufFlit {
                packet,
                is_head: sent == 0,
                is_tail: sent + 1 == len,
            };
            if O::ENABLED {
                self.obs
                    .on_flit_source(self.now, inj, PacketId(packet), flit.is_tail);
            }
            self.buf[inj] = Some(flit);
            if flit.is_head {
                self.head_since[inj] = self.now;
                self.owner[inj] = packet;
            }
            self.emitting[v] = if sent + 1 == len {
                None
            } else {
                Some(Emitting {
                    packet,
                    sent: sent + 1,
                })
            };
        }
    }
}

impl<O: SimObserver> std::fmt::Debug for VcSim<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcSim")
            .field("now", &self.now)
            .field("routing", &self.routing.name())
            .field("packets", &self.packets.len())
            .field("deadlocked", &self.deadlocked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DoubleYAdaptive;
    use turnroute_traffic::{MeshTranspose, Uniform};

    fn quiet_cfg() -> SimConfig {
        SimConfig::builder()
            .injection_rate(0.0)
            .deadlock_threshold(500)
            .build()
    }

    #[test]
    fn single_packet_latency_matches_base_model() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let mut sim = VcSim::new(&mesh, &alg, &pattern, quiet_cfg());
        let src = mesh.node_at_coords(&[1, 1]);
        let dst = mesh.node_at_coords(&[5, 4]);
        let id = sim.inject_packet(src, dst, 10);
        assert!(sim.run_until_idle(500));
        let p = sim.packets()[id.index()];
        assert_eq!(p.hops, 7);
        // Identical pipeline to the base sim: head consumed at cycle 9,
        // tail 9 flit-cycles later.
        assert_eq!(p.latency(), Some(18));
    }

    #[test]
    fn delivers_uniform_traffic_without_deadlock() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.05)
            .lengths(LengthDist::Fixed(8))
            .warmup_cycles(500)
            .measure_cycles(3_000)
            .drain_cycles(4_000)
            .seed(2)
            .build();
        let report = VcSim::new(&mesh, &alg, &pattern, cfg).run();
        assert!(!report.deadlocked);
        assert!(report.delivered_fraction() > 0.99);
        assert!(report.generated_packets > 100);
    }

    #[test]
    fn oversaturation_does_not_deadlock() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let pattern = MeshTranspose::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.8)
            .warmup_cycles(0)
            .measure_cycles(6_000)
            .drain_cycles(0)
            .deadlock_threshold(2_000)
            .seed(3)
            .build();
        let report = VcSim::new(&mesh, &alg, &pattern, cfg).run();
        assert!(!report.deadlocked);
        assert!(report.delivered_flits_in_window > 0);
    }

    #[test]
    fn physical_link_bandwidth_is_shared() {
        // Two packets heading north through the same physical link on
        // different virtual channels: total time must reflect one
        // flit/cycle of shared bandwidth, not two.
        let mesh = Mesh::new_2d(4, 4);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let mut sim = VcSim::new(&mesh, &alg, &pattern, quiet_cfg());
        // Packet A: pure vertical (uses y2). Packet B: west-then-north at
        // the same column (uses y1 while westbound... it starts at the
        // column, so it is pure vertical too — give it a west leg first).
        let a = sim.inject_packet(
            mesh.node_at_coords(&[1, 0]),
            mesh.node_at_coords(&[1, 3]),
            20,
        );
        let b = sim.inject_packet(
            mesh.node_at_coords(&[2, 0]),
            mesh.node_at_coords(&[1, 3]),
            20,
        );
        assert!(sim.run_until_idle(1_000));
        let (pa, pb) = (sim.packets()[a.index()], sim.packets()[b.index()]);
        // Both traverse the column-1 northward links; with one flit per
        // cycle per physical link their tails must be >= 20 cycles apart
        // (they also share the ejection channel).
        let (da, db) = (pa.delivered.unwrap(), pb.delivered.unwrap());
        assert!(da.abs_diff(db) >= 20, "physical bandwidth not shared");
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.06)
            .warmup_cycles(200)
            .measure_cycles(1_000)
            .drain_cycles(1_000)
            .seed(42)
            .build();
        let r1 = VcSim::new(&mesh, &alg, &pattern, cfg.clone()).run();
        let r2 = VcSim::new(&mesh, &alg, &pattern, cfg).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn fault_plan_runs_are_deterministic() {
        let mesh = Mesh::new_2d(8, 8);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let plan = turnroute_sim::FaultPlan::random_links(&mesh, 0.05, 300, 11).transient_node(
            NodeId(19),
            500,
            400,
        );
        let cfg = SimConfig::builder()
            .injection_rate(0.05)
            .warmup_cycles(200)
            .measure_cycles(1_500)
            .drain_cycles(1_500)
            .packet_timeout(900)
            .max_retries(1)
            .seed(21)
            .fault_plan(plan)
            .build();
        let r1 = VcSim::new(&mesh, &alg, &pattern, cfg.clone()).run();
        let r2 = VcSim::new(&mesh, &alg, &pattern, cfg).run();
        assert_eq!(r1, r2);
        assert!(r1.delivered_packets > 0);
    }

    #[test]
    fn faulty_link_is_routed_around() {
        // Double-y is adaptive in x until aligned: with the eastward link
        // out of the source down, the packet detours via the row above.
        let mesh = Mesh::new_2d(4, 4);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let src = mesh.node_at_coords(&[0, 0]);
        let dst = mesh.node_at_coords(&[2, 2]);
        let plan = turnroute_sim::FaultPlan::new().permanent_link(src, Direction::EAST, 0);
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .deadlock_threshold(500)
            .fault_plan(plan)
            .build();
        let mut sim = VcSim::new(&mesh, &alg, &pattern, cfg);
        let id = sim.inject_packet(src, dst, 5);
        assert!(sim.run_until_idle(500));
        let p = sim.packets()[id.index()];
        assert!(p.delivered.is_some());
        assert_eq!(p.hops, 4, "minimal detour north-then-east");
    }

    #[test]
    fn invariant_sanitizer_stays_clean_under_load_faults_and_retries() {
        use turnroute_sim::InvariantObserver;
        let mesh = Mesh::new_2d(6, 6);
        let alg = DoubleYAdaptive::new();
        let pattern = MeshTranspose::new();
        let plan = turnroute_sim::FaultPlan::new()
            .transient_link(NodeId(10), Direction::NORTH, 200, 300)
            .transient_node(NodeId(21), 500, 200);
        let cfg = SimConfig::builder()
            .injection_rate(0.3)
            .warmup_cycles(200)
            .measure_cycles(1_500)
            .drain_cycles(1_000)
            .packet_timeout(600)
            .max_retries(1)
            .deadlock_threshold(5_000)
            .seed(9)
            .fault_plan(plan)
            .build();
        // VC buffers hold a single flit regardless of cfg.buffer_depth.
        let obs = InvariantObserver::new(ChannelLayout::new(mesh.num_nodes(), 4), 1);
        let mut sim = VcSim::with_observer(&mesh, &alg, &pattern, cfg, obs);
        let report = sim.run();
        assert!(!report.deadlocked);
        let obs = sim.observer();
        obs.assert_clean();
        let s = obs.summary();
        assert!(s.sourced_flits > 0 && s.consumed_flits > 0);
    }

    #[test]
    fn snapshot_restore_resumes_bit_for_bit() {
        let mesh = Mesh::new_2d(6, 6);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let cfg = SimConfig::builder()
            .injection_rate(0.06)
            .warmup_cycles(100)
            .measure_cycles(400)
            .drain_cycles(400)
            .seed(31)
            .build();
        let plain = VcSim::new(&mesh, &alg, &pattern, cfg.clone()).run();
        let mut sim = VcSim::new(&mesh, &alg, &pattern, cfg);
        sim.window = (100, 500);
        for _ in 0..250 {
            sim.step();
        }
        let snap = sim.snapshot();
        sim.inject_packet(NodeId(0), NodeId(35), 7);
        for _ in 0..40 {
            sim.step();
        }
        sim.restore(&snap);
        assert_eq!(sim.snapshot(), snap, "restore is lossless");
        while sim.now() < 900 && !sim.deadlocked() {
            sim.step();
        }
        assert_eq!(sim.report(), plain, "restored run diverged");
    }

    #[test]
    fn scripted_step_explores_the_free_vc_choice() {
        // A head offered two free virtual channels (the adaptive
        // east-or-north choice): digit 0 takes the first, digit 1 the
        // second — distinct owners result.
        let mesh = Mesh::new_2d(4, 4);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let mut owners = Vec::new();
        for digit in [0u32, 1] {
            let mut sim = VcSim::new(&mesh, &alg, &pattern, quiet_cfg());
            sim.inject_packet(
                mesh.node_at_coords(&[0, 0]),
                mesh.node_at_coords(&[2, 2]),
                3,
            );
            {
                let mut s = ChoiceScript::default();
                sim.step_with_choices(&mut s); // head enters injection buffer
            }
            let mut script = ChoiceScript::new(vec![digit]);
            sim.step_with_choices(&mut script);
            let chosen: Vec<usize> = (0..sim.num_slots())
                .filter(|&s| s < sim.inj_base && sim.slot_owner(s).is_some())
                .collect();
            assert_eq!(chosen.len(), 1, "exactly one network VC acquired");
            assert!(
                !script.arities().is_empty(),
                "two free VCs must be a choice point"
            );
            owners.push(chosen[0]);
        }
        assert_ne!(owners[0], owners[1], "digit did not change the VC pick");
    }

    #[test]
    fn down_destination_degrades_to_unroutable_drop() {
        let mesh = Mesh::new_2d(4, 4);
        let alg = DoubleYAdaptive::new();
        let pattern = Uniform::new();
        let dst = mesh.node_at_coords(&[3, 3]);
        let plan = turnroute_sim::FaultPlan::new().permanent_node(dst, 0);
        let cfg = SimConfig::builder()
            .injection_rate(0.0)
            .warmup_cycles(0)
            .measure_cycles(400)
            .drain_cycles(400)
            .packet_timeout(200)
            .deadlock_threshold(10_000)
            .fault_plan(plan)
            .build();
        let mut sim = VcSim::new(&mesh, &alg, &pattern, cfg);
        sim.inject_packet(mesh.node_at_coords(&[0, 0]), dst, 5);
        let report = sim.run();
        assert_eq!(report.termination, RunTermination::Completed);
        assert_eq!(report.unroutable_packets, 1);
        assert_eq!(report.delivered_packets, 0);
        assert!(sim.is_idle(), "purge must empty the network");
    }
}
