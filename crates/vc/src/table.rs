//! Table-backed virtual-channel routing functions.
//!
//! A [`TableVcRouting`] stores the full `(destination, current node,
//! arrived virtual direction) -> offered virtual channels` relation of a
//! 2D mesh explicitly. Two constructors feed it:
//!
//! * [`TableVcRouting::from_function`] snapshots any
//!   [`VcRoutingFunction`] point by point — the generalized engines and
//!   lowering paths must treat the snapshot identically to the original
//!   function, which pins the N-class generalization to the hand-coded
//!   double-y case;
//! * [`TableVcRouting::builder`] assembles a table from explicit entries —
//!   the form synthesized escape/adaptive assignments arrive in.

use crate::{VcRoutingFunction, VirtualDirection};
use turnroute_topology::{Mesh, NodeId, Topology};

/// A fully tabulated [`VcRoutingFunction`] over a 2D mesh.
#[derive(Debug, Clone)]
pub struct TableVcRouting {
    name: String,
    minimal: bool,
    num_classes: usize,
    num_nodes: usize,
    /// Existence bitmap indexed by `vd.index_in(num_classes)`.
    exists: Vec<bool>,
    /// `moves[dest][node * (1 + 4 * classes) + arrived_code]`, where
    /// `arrived_code` is `0` at injection and `1 + vd.index_in(classes)`
    /// after arriving on `vd`.
    moves: Vec<Vec<Vec<VirtualDirection>>>,
}

impl TableVcRouting {
    fn arrived_codes(num_classes: usize) -> usize {
        1 + 4 * num_classes
    }

    /// Snapshot `routing` on `mesh` into an explicit table. Every state
    /// the dependency analysis or an engine can query — all
    /// `(dest, node, arrived)` combinations, including unreachable ones —
    /// is recorded verbatim, so the snapshot routes identically to the
    /// original function.
    pub fn from_function(mesh: &Mesh, routing: &dyn VcRoutingFunction) -> TableVcRouting {
        assert_eq!(mesh.num_dims(), 2, "table routing is for 2D meshes");
        let num_classes = routing.num_classes();
        let num_nodes = mesh.num_nodes();
        let codes = Self::arrived_codes(num_classes);
        let all: Vec<VirtualDirection> = VirtualDirection::all_classes(2, num_classes);
        let exists = all.iter().map(|&vd| routing.channel_exists(vd)).collect();
        let mut moves = Vec::with_capacity(num_nodes);
        for dest in 0..num_nodes {
            let dest = NodeId(dest as u32);
            let mut table = vec![Vec::new(); num_nodes * codes];
            for node in 0..num_nodes {
                let node_id = NodeId(node as u32);
                if node_id == dest {
                    continue;
                }
                table[node * codes] = routing.route(mesh, node_id, dest, None);
                for &vd in &all {
                    if !routing.channel_exists(vd) {
                        continue;
                    }
                    // Only states whose incoming channel exists on the
                    // mesh can be queried; record the rest as empty.
                    if mesh.neighbor(node_id, vd.dir().opposite()).is_none() {
                        continue;
                    }
                    table[node * codes + 1 + vd.index_in(num_classes)] =
                        routing.route(mesh, node_id, dest, Some(vd));
                }
            }
            moves.push(table);
        }
        TableVcRouting {
            name: format!("{} (tabulated)", routing.name()),
            minimal: routing.is_minimal(),
            num_classes,
            num_nodes,
            exists,
            moves,
        }
    }

    /// Start an empty table (every state routes to the empty set).
    pub fn builder(
        name: impl Into<String>,
        mesh: &Mesh,
        num_classes: usize,
        minimal: bool,
    ) -> TableVcRouting {
        assert_eq!(mesh.num_dims(), 2, "table routing is for 2D meshes");
        let num_nodes = mesh.num_nodes();
        let codes = Self::arrived_codes(num_classes);
        TableVcRouting {
            name: name.into(),
            minimal,
            num_classes,
            num_nodes,
            exists: vec![false; 4 * num_classes],
            moves: vec![vec![Vec::new(); num_nodes * codes]; num_nodes],
        }
    }

    /// Declare that the virtual channel `vd` exists on links carrying its
    /// physical direction.
    pub fn declare_channel(&mut self, vd: VirtualDirection) {
        self.exists[vd.index_in(self.num_classes)] = true;
    }

    /// Record the offered virtual channels for a packet at `node` bound
    /// for `dest` having arrived on `arrived` (`None` at injection).
    pub fn set_route(
        &mut self,
        dest: NodeId,
        node: NodeId,
        arrived: Option<VirtualDirection>,
        offered: Vec<VirtualDirection>,
    ) {
        let codes = Self::arrived_codes(self.num_classes);
        let code = match arrived {
            None => 0,
            Some(vd) => 1 + vd.index_in(self.num_classes),
        };
        self.moves[dest.index()][node.index() * codes + code] = offered;
    }
}

impl VcRoutingFunction for TableVcRouting {
    fn name(&self) -> &str {
        &self.name
    }

    fn route(
        &self,
        _mesh: &Mesh,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> Vec<VirtualDirection> {
        if current == dest {
            return Vec::new();
        }
        let codes = Self::arrived_codes(self.num_classes);
        let code = match arrived {
            None => 0,
            Some(vd) => 1 + vd.index_in(self.num_classes),
        };
        debug_assert!(current.index() < self.num_nodes);
        self.moves[dest.index()][current.index() * codes + code].clone()
    }

    fn is_minimal(&self) -> bool {
        self.minimal
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn channel_exists(&self, vd: VirtualDirection) -> bool {
        self.exists[vd.index_in(self.num_classes)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DoubleYAdaptive, VcCdg};

    #[test]
    fn snapshot_routes_identically_to_double_y() {
        let mesh = Mesh::new_2d(4, 4);
        let dy = DoubleYAdaptive::new();
        let table = TableVcRouting::from_function(&mesh, &dy);
        for dest in 0..mesh.num_nodes() {
            let dest = NodeId(dest as u32);
            for node in 0..mesh.num_nodes() {
                let node = NodeId(node as u32);
                assert_eq!(
                    table.route(&mesh, node, dest, None),
                    dy.route(&mesh, node, dest, None),
                    "injection state {node} -> {dest}"
                );
                for vd in VirtualDirection::all_classes(2, 2) {
                    if !dy.channel_exists(vd) {
                        continue;
                    }
                    if mesh.neighbor(node, vd.dir().opposite()).is_none() {
                        continue;
                    }
                    assert_eq!(
                        table.route(&mesh, node, dest, Some(vd)),
                        dy.route(&mesh, node, dest, Some(vd)),
                        "holding state {node} ({vd}) -> {dest}"
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_cdg_is_acyclic_like_double_y() {
        let mesh = Mesh::new_2d(4, 4);
        let dy = DoubleYAdaptive::new();
        let table = TableVcRouting::from_function(&mesh, &dy);
        let direct = VcCdg::from_routing(&mesh, &dy);
        let via_table = VcCdg::from_routing(&mesh, &table);
        assert!(via_table.is_acyclic());
        assert_eq!(direct.channels().len(), via_table.channels().len());
    }
}
