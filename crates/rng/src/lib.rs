//! Deterministic pseudo-random numbers with no external dependencies.
//!
//! The simulators need a small, fast, seedable generator and a handful of
//! sampling helpers (`gen_range`, `gen_bool`). This crate provides exactly
//! that surface, mirroring the `rand` API names the workspace used before
//! it went fully offline: [`StdRng`], [`SeedableRng`], [`RngCore`], and an
//! extension trait [`Rng`] carrying the samplers. Streams are stable
//! across platforms and releases — identical seeds give identical runs,
//! which the simulation determinism tests rely on.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64, the standard recipe for expanding a 64-bit seed into a
//! full 256-bit state.
//!
//! # Example
//!
//! ```
//! use turnroute_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let die = rng.gen_range(1u32..=6);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let _ = coin;
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Object safe: traffic patterns take
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's default generator: xoshiro256** with SplitMix64
/// seeding. Not cryptographic; excellent statistical quality for
/// simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// Compatibility module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A range of values [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draw one uniform sample using `bits` as the entropy source.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> Self::Output;
}

/// Uniform integer in `[0, n)` by 128-bit multiply-shift (Lemire). The
/// modulo bias is at most `n / 2^64` — irrelevant at simulation scales.
#[inline]
fn uniform_below(bits: &mut dyn FnMut() -> u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(bits()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(bits, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + bits() as $t;
                }
                lo + uniform_below(bits, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform bits in [0, 1), scaled into the range. Floating-point
        // rounding could land exactly on `end`; fold that back to `start`.
        let unit = (bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Sampling helpers, available on every [`RngCore`] (including
/// `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        let mut bits = || self.next_u64();
        range.sample(&mut bits)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&v));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9u64..=9), 9);
    }

    #[test]
    fn float_range_is_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniformity_chi_square_sanity() {
        // 16 cells, 16k draws: expected 1000 per cell; a crude bound on
        // the deviation catches gross generator bugs.
        let mut rng = StdRng::seed_from_u64(4);
        let mut cells = [0u32; 16];
        for _ in 0..16_000 {
            cells[rng.gen_range(0usize..16)] += 1;
        }
        for (i, &c) in cells.iter().enumerate() {
            assert!((850..1150).contains(&c), "cell {i} has {c}");
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u32..100);
        assert!(v < 100);
        assert!(dyn_rng.next_u32() as u64 <= u64::from(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5u32..5);
    }
}
