//! Virtual-channel ablation: what do extra channels buy?
//!
//! The paper deliberately improves routing *without* extra channels and
//! defers the with-channels story to its companion paper \[18\]. This
//! ablation quantifies the comparison on the 16×16 mesh: the nonadaptive
//! baseline (xy), the best no-extra-channel partially adaptive algorithm
//! (negative-first), and the fully adaptive double-y algorithm that
//! doubles every vertical channel.
//!
//! The double-y network pays for its full adaptiveness with extra buffer
//! space (one more flit buffer per vertical link) while each vertical
//! *physical* link still moves one flit per cycle.

use crate::sweep::{SweepPoint, SweepResult};
use crate::Scale;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::SimConfig;
use turnroute_topology::Mesh;
use turnroute_traffic::TrafficPattern;
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// Sweep the double-y fully adaptive algorithm (virtual-channel
/// simulator).
pub fn sweep_double_y<P: TrafficPattern + Sync>(
    mesh: &Mesh,
    pattern: &P,
    rates: &[f64],
    scale: Scale,
    seed: u64,
) -> SweepResult {
    let (warmup, measure, drain) = scale.cycles();
    let alg = DoubleYAdaptive::new();
    let points = std::thread::scope(|scope| {
        let handles: Vec<_> = rates
            .iter()
            .map(|&rate| {
                let alg = &alg;
                scope.spawn(move || {
                    let cfg = SimConfig::builder()
                        .injection_rate(rate)
                        .warmup_cycles(warmup)
                        .measure_cycles(measure)
                        .drain_cycles(drain)
                        .seed(seed)
                        .build();
                    let report = VcSim::new(mesh, alg, pattern, cfg).run();
                    SweepPoint {
                        injection_rate: rate,
                        report,
                        metrics: None,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    SweepResult {
        algorithm: "double-y fully adaptive (2 VCs)".to_string(),
        pattern: pattern.name().to_string(),
        points,
    }
}

/// Run the ablation on one pattern: xy and negative-first (plain mesh)
/// vs double-y (virtual channels).
pub fn measure<P: TrafficPattern + Sync>(pattern: &P, scale: Scale, seed: u64) -> Vec<SweepResult> {
    let mesh = Mesh::new_2d(16, 16);
    let rates = crate::sweep::default_rates();
    let mut out = vec![
        crate::sweep::load_sweep(&mesh, &mesh2d::xy(), pattern, &rates, scale, seed),
        crate::sweep::load_sweep(
            &mesh,
            &mesh2d::negative_first(RoutingMode::Minimal),
            pattern,
            &rates,
            scale,
            seed,
        ),
    ];
    out.push(sweep_double_y(&mesh, pattern, &rates, scale, seed));
    out
}

/// Render the ablation as markdown for uniform and transpose traffic.
pub fn render(scale: Scale, seed: u64) -> String {
    use turnroute_traffic::{MeshTranspose, Uniform};
    let mut out = String::from(
        "# Virtual-channel ablation: no-extra-channel adaptivity vs double-y\n\n\
         The turn model's premise is improving performance *without* extra\n\
         channels; its companion paper adds them for full adaptivity. Both\n\
         points on that trade-off, measured:\n\n",
    );
    for (title, sweeps) in [
        ("Uniform traffic", measure(&Uniform::new(), scale, seed)),
        (
            "Matrix-transpose traffic",
            measure(&MeshTranspose::new(), scale, seed),
        ),
    ] {
        out.push_str(&crate::sweep::to_markdown(&sweeps, title));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_traffic::MeshTranspose;

    #[test]
    fn double_y_matches_negative_first_on_transpose() {
        // On the anti-diagonal transpose both are fully adaptive (and the
        // two VC classes serve disjoint packet populations), so delivered
        // throughput at a fixed high load must be nearly identical.
        let mesh = Mesh::new_2d(16, 16);
        let rates = [0.16];
        let nf = crate::sweep::load_sweep(
            &mesh,
            &mesh2d::negative_first(RoutingMode::Minimal),
            &MeshTranspose::new(),
            &rates,
            Scale::Quick,
            7,
        );
        let dy = sweep_double_y(&mesh, &MeshTranspose::new(), &rates, Scale::Quick, 7);
        let (nf_thru, dy_thru) = (
            nf.points[0].report.throughput_flits_per_us(),
            dy.points[0].report.throughput_flits_per_us(),
        );
        assert!(
            dy_thru >= nf_thru * 0.9,
            "double-y {dy_thru:.1} should match negative-first {nf_thru:.1}"
        );
        assert!(!dy.points[0].report.deadlocked);
    }

    #[test]
    fn render_contains_both_patterns() {
        let sweeps = measure(&MeshTranspose::new(), Scale::Quick, 1);
        let md = crate::sweep::to_markdown(&sweeps, "T");
        assert!(md.contains("double-y"));
    }
}
