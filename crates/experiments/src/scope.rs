//! `exp scope` — the turnscope saturation-approach study.
//!
//! The turnscope contract is that congestion collapse is *predictable*:
//! the frame stream's early-warning detectors must fire ahead of a
//! `Timeout`/`Deadlock` termination and stay silent while the load is
//! sustainable. This study validates that contract end to end:
//!
//! 1. **Ramp** — a load ramp on a west-first mesh from deep
//!    sub-saturation to well past it, each point run with a
//!    [`FrameCollector`] riding the engine and the frame stream pushed
//!    through a [`DetectorBank`]. The table shows the blame decomposition
//!    shifting from service- to blocked-dominated as the load climbs, and
//!    the alert columns turning on exactly where sustainability ends.
//! 2. **Planted collapse** — the saturating probe configuration
//!    (injection rate 0.9, no warmup or drain). The run must end in
//!    `Timeout` or `Deadlock`, and the first alert must land strictly
//!    before the end cycle — the early warning the detectors exist for.
//! 3. **Clean heavy-load baseline** — the heaviest clearly-sustainable
//!    load of the ramp topology. The run must complete with a high
//!    delivered fraction and *zero* alerts: no false positives.
//! 4. **Chaos storm** — the quick chaos storm from the turnheal soak,
//!    run twice with frame telemetry attached. Both runs must produce
//!    identical frame and alert streams (the storm plan is deterministic,
//!    so telemetry must be too).
//!
//! The study's `passed()` verdict gates CI: a silent detector on the
//! collapse, a noisy detector on the baseline, or nondeterministic
//! telemetry under the storm all fail the run.

use crate::Scale;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::harness::{chaos_plan, saturating_config, StormSpec};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{
    Alert, DetectorBank, DetectorConfig, FrameCollector, RunTermination, Sim, SimConfig, SimReport,
    TelemetryFrame,
};
use turnroute_topology::Mesh;
use turnroute_traffic::{TrafficPattern, Uniform};

/// One instrumented run: the engine report plus the telemetry the frame
/// collector sealed and the alerts the detector bank raised on it.
#[derive(Debug, Clone)]
pub struct ScopedRun {
    /// The engine's report.
    pub report: SimReport,
    /// Frames sealed during the run, in order.
    pub frames: Vec<TelemetryFrame>,
    /// Alerts the detector bank raised on the frame stream, in order.
    pub alerts: Vec<Alert>,
}

impl ScopedRun {
    /// Cycle of the first alert, if any fired.
    pub fn first_alert_cycle(&self) -> Option<u64> {
        self.alerts.first().map(|a| a.cycle)
    }
}

/// Run `cfg` on a west-first `side`x`side` mesh with a frame collector at
/// `cadence` and push the sealed stream through a fresh detector bank.
pub fn scoped_run(
    side: u16,
    pattern: &dyn TrafficPattern,
    cfg: SimConfig,
    cadence: u64,
) -> ScopedRun {
    let mesh = Mesh::new_2d(side, side);
    let routing = mesh2d::west_first(RoutingMode::Minimal);
    let layout = ChannelLayout::for_topology(&mesh);
    let collector = FrameCollector::new(layout.num_channels, cadence);
    let mut sim = Sim::with_observer(&mesh, &routing, pattern, cfg, collector);
    let report = sim.run();
    let mut collector = sim.into_observer();
    let frames = collector.take_frames();
    // The bank is a pure function of the frame stream: pushing the sealed
    // frames after the run raises exactly the alerts a live bank would.
    // Thresholds are scaled to the mesh and cadence — long wormhole
    // packets make small-scenario defaults trigger-happy here.
    let mut bank = DetectorBank::with_config(
        layout.num_channels,
        DetectorConfig::for_network(layout.num_channels, cadence),
    );
    let mut alerts = Vec::new();
    for f in &frames {
        alerts.extend(bank.push(f));
    }
    ScopedRun {
        report,
        frames,
        alerts,
    }
}

/// Everything the saturation-approach study established.
#[derive(Debug, Clone)]
pub struct ScopeReport {
    /// Mesh side length of the ramp topology.
    pub side: u16,
    /// Frame cadence used throughout, in cycles.
    pub cadence: u64,
    /// The ramp: (injection rate, run) in increasing-load order.
    pub ramp: Vec<(f64, ScopedRun)>,
    /// The planted saturating collapse.
    pub collapse: ScopedRun,
    /// The clean heavy-load baseline rate and run.
    pub baseline_rate: f64,
    /// The clean heavy-load baseline.
    pub baseline: ScopedRun,
    /// The chaos-storm spec telemetry determinism was checked under.
    pub storm: StormSpec,
    /// Alerts raised during the chaos storm.
    pub storm_alerts: usize,
    /// Whether two identically-seeded storm runs produced identical
    /// frame and alert streams.
    pub storm_deterministic: bool,
}

impl ScopeReport {
    /// The collapse ended in `Timeout` or `Deadlock` (the load really was
    /// unsustainable).
    pub fn collapse_collapsed(&self) -> bool {
        matches!(
            self.collapse.report.termination,
            RunTermination::Timeout | RunTermination::Deadlock
        )
    }

    /// The detector fired strictly before the collapse ended.
    pub fn warned_before_collapse(&self) -> bool {
        self.collapse
            .first_alert_cycle()
            .is_some_and(|c| c < self.collapse.report.end_cycle)
    }

    /// The clean baseline completed, delivered essentially everything,
    /// and raised no alert.
    pub fn baseline_silent(&self) -> bool {
        self.baseline.report.termination == RunTermination::Completed
            && self.baseline.report.delivered_fraction() >= 0.98
            && self.baseline.alerts.is_empty()
    }

    /// The early-warning contract held on every scenario.
    pub fn passed(&self) -> bool {
        self.collapse_collapsed()
            && self.warned_before_collapse()
            && self.baseline_silent()
            && self.storm_deterministic
    }

    /// Render the study as markdown.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# turnscope: the approach to saturation\n\n\
             Early-warning validation on a {side}x{side} west-first mesh under uniform\n\
             traffic, telemetry frames every {cadence} cycles. Blame columns are mean\n\
             cycles per delivered packet (queue + blocked + service + misroute equals\n\
             total latency exactly, per packet).\n\n\
             ## Load ramp\n\n\
             | rate | termination | delivered | avg lat | p90 lat | queue | blocked | service | misroute | peak blocked mass | alerts | first alert |\n\
             |---:|:---|---:|---:|---:|---:|---:|---:|---:|---:|---:|:---|\n",
            side = self.side,
            cadence = self.cadence,
        );
        for (rate, run) in &self.ramp {
            let r = &run.report;
            let d = r.delivered_packets;
            out.push_str(&format!(
                "| {:.2} | {} | {:.3} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {} | {} | {} |\n",
                rate,
                r.termination,
                r.delivered_fraction(),
                r.avg_latency_cycles,
                r.p90_latency_cycles,
                r.blame.avg_queue_cycles(d),
                r.blame.avg_blocked_cycles(d),
                r.blame.avg_service_cycles(d),
                r.blame.avg_misroute_cycles(d),
                run.frames
                    .iter()
                    .map(TelemetryFrame::blocked_mass)
                    .max()
                    .unwrap_or(0),
                run.alerts.len(),
                match run.alerts.first() {
                    Some(a) => format!("{} @ {}", a.kind.name(), a.cycle),
                    None => "—".to_string(),
                },
            ));
        }
        let c = &self.collapse;
        out.push_str(&format!(
            "\n## Planted collapse (saturating probe, rate 0.9)\n\n\
             - termination: **{}** at cycle {}\n\
             - first alert: {}\n\
             - early warning: **{}**\n",
            c.report.termination,
            c.report.end_cycle,
            match c.alerts.first() {
                Some(a) => format!(
                    "{} at cycle {} (value {} vs threshold {}) — lead time {} cycles",
                    a.kind.name(),
                    a.cycle,
                    a.value,
                    a.threshold,
                    c.report.end_cycle.saturating_sub(a.cycle)
                ),
                None => "none (detector stayed silent)".to_string(),
            },
            if self.collapse_collapsed() && self.warned_before_collapse() {
                "fired before collapse"
            } else {
                "MISSED"
            },
        ));
        let b = &self.baseline;
        out.push_str(&format!(
            "\n## Clean heavy-load baseline (rate {:.2})\n\n\
             - termination: {}, delivered fraction {:.3}\n\
             - alerts: {} — {}\n",
            self.baseline_rate,
            b.report.termination,
            b.report.delivered_fraction(),
            b.alerts.len(),
            if self.baseline_silent() {
                "**silent, as required**"
            } else {
                "**FALSE POSITIVE / degraded baseline**"
            },
        ));
        out.push_str(&format!(
            "\n## Chaos storm telemetry\n\n\
             - storm: horizon {} cycles, link MTTF {}, mean repair {}\n\
             - alerts raised: {}\n\
             - two same-seed runs byte-identical (frames and alerts): **{}**\n\
             \n## Verdict\n\n{}\n",
            self.storm.horizon,
            self.storm.link_mttf,
            self.storm.mean_repair,
            self.storm_alerts,
            if self.storm_deterministic {
                "yes"
            } else {
                "NO"
            },
            if self.passed() {
                "early-warning contract holds: **PASS**"
            } else {
                "early-warning contract violated: **FAIL**"
            },
        ));
        out
    }
}

/// Run the full study at `scale` with `seed`.
pub fn study(scale: Scale, seed: u64) -> ScopeReport {
    let side: u16 = 8;
    let uniform = Uniform::new();
    let (warmup, measure, drain) = scale.cycles();
    // One cadence at both scales: window statistics (and so detector
    // behavior) should not change when CI shrinks the cycle counts.
    let cadence = 500;
    // Deep sub-saturation through well past it: 16x16 uniform west-first
    // saturates near rate 0.07; the smaller 8x8 mesh a little higher.
    let rates: &[f64] = &[0.02, 0.04, 0.06, 0.08, 0.12, 0.16, 0.24, 0.32];
    let ramp = rates
        .iter()
        .map(|&rate| {
            let cfg = SimConfig::builder()
                .injection_rate(rate)
                .warmup_cycles(warmup)
                .measure_cycles(measure)
                .drain_cycles(drain)
                .seed(seed)
                .build();
            (rate, scoped_run(side, &uniform, cfg, cadence))
        })
        .collect();
    let collapse_cycles = match scale {
        Scale::Quick => 6_000,
        Scale::Full => 20_000,
    };
    let collapse = scoped_run(
        side,
        &uniform,
        saturating_config(seed, collapse_cycles, collapse_cycles / 2),
        cadence,
    );
    let baseline_rate = 0.05;
    let baseline = scoped_run(
        side,
        &uniform,
        SimConfig::builder()
            .injection_rate(baseline_rate)
            .warmup_cycles(warmup)
            .measure_cycles(measure)
            .drain_cycles(drain)
            .seed(seed)
            .build(),
        cadence,
    );
    let storm = crate::chaos::storm(Scale::Quick, seed);
    let storm_run = |spec: &StormSpec| {
        let mesh = Mesh::new_2d(side, side);
        let cfg = SimConfig::builder()
            .injection_rate(0.04)
            .warmup_cycles(0)
            .measure_cycles(spec.horizon)
            .drain_cycles(2_000)
            .fault_plan(chaos_plan(&mesh, spec))
            .seed(seed)
            .build();
        scoped_run(side, &uniform, cfg, cadence)
    };
    let a = storm_run(&storm);
    let b = storm_run(&storm);
    let storm_deterministic = a.frames == b.frames && a.alerts == b.alerts;
    ScopeReport {
        side,
        cadence,
        ramp,
        collapse,
        baseline_rate,
        baseline,
        storm,
        storm_alerts: a.alerts.len(),
        storm_deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_upholds_the_early_warning_contract() {
        let report = study(Scale::Quick, 7);
        assert!(
            report.collapse_collapsed(),
            "rate 0.9 must end in timeout/deadlock, got {:?}",
            report.collapse.report.termination
        );
        assert!(
            report.warned_before_collapse(),
            "no alert before collapse at cycle {} (alerts: {:?})",
            report.collapse.report.end_cycle,
            report.collapse.alerts.len()
        );
        assert!(
            report.baseline_silent(),
            "baseline must stay silent: {} alerts, termination {:?}, fraction {:.3}",
            report.baseline.alerts.len(),
            report.baseline.report.termination,
            report.baseline.report.delivered_fraction()
        );
        assert!(report.storm_deterministic);
        assert!(report.passed());
        let md = report.render();
        assert!(md.contains("## Load ramp"));
        assert!(md.contains("**PASS**"));
        // The blame decomposition tells the congestion story: the
        // blocked share of latency grows as the ramp climbs.
        let (_, light) = &report.ramp[0];
        let (_, heavy) = report.ramp.last().unwrap();
        let frac = |run: &ScopedRun| {
            let b = &run.report.blame;
            b.blocked_cycles as f64 / b.total().max(1) as f64
        };
        assert!(
            frac(heavy) > frac(light),
            "blocked share must grow with load: light {:.3}, heavy {:.3}",
            frac(light),
            frac(heavy)
        );
    }
}
