//! Minimal vs nonminimal ablation.
//!
//! The paper keeps its Section 6 simulations minimal but argues
//! nonminimal routing buys adaptiveness and fault tolerance. This
//! ablation measures what misrouting costs (and buys) in a healthy
//! network and under channel faults.

use crate::Scale;
use turnroute_model::RoutingFunction;
use turnroute_rng::rngs::StdRng;
use turnroute_rng::{Rng, SeedableRng};
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::{Sim, SimConfig, SimReport};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};
use turnroute_traffic::Uniform;

/// One ablation row: a (mode, misroute budget, faults) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct NonminimalRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Number of broken channels injected.
    pub faults: usize,
    /// Results.
    pub report: SimReport,
}

fn run(
    routing: &dyn RoutingFunction,
    budget: u32,
    faults: &[(NodeId, Direction)],
    scale: Scale,
    seed: u64,
) -> SimReport {
    let mesh = Mesh::new_2d(16, 16);
    let pattern = Uniform::new();
    let (warmup, measure, drain) = scale.cycles();
    let cfg = SimConfig::builder()
        .injection_rate(0.06)
        .warmup_cycles(warmup)
        .measure_cycles(measure)
        .drain_cycles(drain)
        .misroute_budget(budget)
        .seed(seed)
        .build();
    let mut sim = Sim::new(&mesh, routing, &pattern, cfg);
    for &(node, dir) in faults {
        sim.set_fault(node, dir);
    }
    sim.run()
}

/// Random interior faults that a nonminimal west-first packet can always
/// route around (never westward channels, never on the boundary rows).
pub fn random_faults(mesh: &Mesh, count: usize, seed: u64) -> Vec<(NodeId, Direction)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    while out.len() < count {
        let x = rng.gen_range(1..mesh.radix(0) as u16 - 1);
        let y = rng.gen_range(1..mesh.radix(1) as u16 - 1);
        let node = mesh.node_at_coords(&[x, y]);
        let dir = [Direction::EAST, Direction::NORTH, Direction::SOUTH][rng.gen_range(0usize..3)];
        if mesh.neighbor(node, dir).is_some() && !out.contains(&(node, dir)) {
            out.push((node, dir));
        }
    }
    out
}

/// Run the ablation: minimal vs nonminimal west-first, healthy and with
/// random faults.
pub fn measure(scale: Scale, seed: u64) -> Vec<NonminimalRow> {
    let mesh = Mesh::new_2d(16, 16);
    let faults = random_faults(&mesh, 8, seed);
    let minimal = mesh2d::west_first(RoutingMode::Minimal);
    let nonminimal = mesh2d::west_first(RoutingMode::Nonminimal);
    vec![
        NonminimalRow {
            label: "minimal, healthy".into(),
            faults: 0,
            report: run(&minimal, 0, &[], scale, seed),
        },
        NonminimalRow {
            label: "nonminimal (budget 4), healthy".into(),
            faults: 0,
            report: run(&nonminimal, 4, &[], scale, seed),
        },
        NonminimalRow {
            label: "minimal, 8 faults".into(),
            faults: 8,
            report: run(&minimal, 0, &faults, scale, seed),
        },
        NonminimalRow {
            label: "nonminimal (budget 8), 8 faults".into(),
            faults: 8,
            report: run(&nonminimal, 8, &faults, scale, seed),
        },
    ]
}

/// Render the ablation as markdown.
pub fn render(scale: Scale, seed: u64) -> String {
    let mut out = String::from(
        "# Minimal vs nonminimal west-first (uniform traffic, 16x16 mesh)\n\n\
         | configuration | faults | latency (us) | delivered frac | avg misroutes |\n\
         |---|---:|---:|---:|---:|\n",
    );
    for row in measure(scale, seed) {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.3} | {:.2} |\n",
            row.label,
            row.faults,
            row.report.avg_latency_us(),
            row.report.delivered_fraction(),
            row.report.avg_misroutes,
        ));
    }
    out.push_str(
        "\nWith broken channels, minimal routing strands every packet whose\n\
         only legal channel is faulty; nonminimal routing keeps delivering\n\
         at the cost of a few extra hops.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonminimal_beats_minimal_under_faults() {
        // Deterministic given the seed; the margin depends on the fault
        // layout the seed produces, so the seed is part of the test.
        let rows = measure(Scale::Quick, 10);
        assert_eq!(rows.len(), 4);
        let minimal_faulty = &rows[2].report;
        let nonminimal_faulty = &rows[3].report;
        assert!(
            nonminimal_faulty.delivered_fraction() > minimal_faulty.delivered_fraction(),
            "nonminimal {:.3} must beat minimal {:.3} with faults",
            nonminimal_faulty.delivered_fraction(),
            minimal_faulty.delivered_fraction()
        );
        // Healthy network: both modes deliver nearly everything.
        assert!(rows[0].report.delivered_fraction() > 0.95);
        assert!(rows[1].report.delivered_fraction() > 0.95);
    }

    #[test]
    fn faults_are_distinct_interior_and_never_west() {
        let mesh = Mesh::new_2d(16, 16);
        let faults = random_faults(&mesh, 12, 3);
        assert_eq!(faults.len(), 12);
        for (i, &(node, dir)) in faults.iter().enumerate() {
            assert_ne!(dir, Direction::WEST);
            assert!(mesh.neighbor(node, dir).is_some());
            assert!(!faults[..i].contains(&(node, dir)), "duplicate fault");
        }
    }
}
