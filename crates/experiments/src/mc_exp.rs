//! State-space study: what exhaustive model checking of the production
//! engines actually covers.
//!
//! `turncheck` (the `mc` module of `turnroute-analysis`) certifies the
//! safe turn sets by walking every reachable global engine state of
//! small configurations and refutes the unsafe ones with replayed
//! counterexamples. This experiment renders that run as a paper-style
//! table — configuration, engine, reachable states, explored
//! transitions, symmetry factor, verdict — so the census of *how big
//! these exhaustive guarantees are* is a first-class artifact next to
//! the latency curves, not a number buried in a CI log.

use crate::Scale;
use turnroute_analysis::mc::{run, McOptions};

/// Run the model-checking matrix and render `results/mc.md`. Returns the
/// markdown and whether every configuration met its expectation.
pub fn study(scale: Scale) -> (String, bool) {
    let report = run(&McOptions {
        quick: scale == Scale::Quick,
        inject_bad: false,
    });
    let passed = report.passed();

    let mut md = String::from("# turncheck: exhaustive state-space census\n\n");
    md.push_str(
        "Explicit-state bounded model checking of the *production* engines \
         (wormhole and virtual-channel), not an abstraction: every reachable \
         global state of each configuration under a bounded injection front, \
         with all injection subsets and all arbitration resolutions \
         branched.\n\n",
    );
    md.push_str(&format!(
        "- configurations: **{}**, all meeting expectations: **{}**\n",
        report.entries.len(),
        if passed { "yes" } else { "NO" },
    ));
    let certified = report
        .entries
        .iter()
        .filter(|e| e.expect_deadlock_free && e.complete)
        .count();
    let refuted = report
        .entries
        .iter()
        .filter(|e| !e.expect_deadlock_free && e.deadlock)
        .count();
    let total_states: usize = report.entries.iter().map(|e| e.states).sum();
    let total_transitions: usize = report.entries.iter().map(|e| e.transitions).sum();
    md.push_str(&format!(
        "- exhaustively certified deadlock-free: **{certified}**; refuted \
         with a replayed counterexample: **{refuted}**\n\
         - reachable states visited: **{total_states}**, transitions \
         explored: **{total_transitions}**\n\n",
    ));

    md.push_str(
        "| configuration | engine | expectation | states | transitions | sym | verdict |\n\
         |---|---|---|---:|---:|---:|---|\n",
    );
    for e in &report.entries {
        let expectation = if e.expect_deadlock_free {
            "deadlock-free"
        } else {
            "deadlocks as proven"
        };
        let verdict = if e.expect_deadlock_free {
            let misroutes = match e.misroute_bound {
                Some(b) => format!(", misroutes {}/{b}", e.max_misroutes),
                None => String::new(),
            };
            if e.complete && !e.deadlock {
                format!("certified (exhaustive{misroutes})")
            } else if e.deadlock {
                "DEADLOCK FOUND".to_string()
            } else {
                "INCOMPLETE".to_string()
            }
        } else {
            format!(
                "deadlock reached; refinement {}, replay {}",
                tick(e.refinement_ok),
                tick(e.replay_stuck),
            )
        };
        md.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            e.name, e.engine, expectation, e.states, e.transitions, e.group_order, verdict,
        ));
    }
    md.push_str(&format!(
        "\nVerdict: **{}** — every census-safe turn set is deadlock-free on \
         every reachable engine state, and every census-unsafe set's \
         counterexample replays to a stuck state the engine's own detector \
         declares, on the CDG cycle the abstract proof predicted.\n",
        if passed { "PASS" } else { "FAIL" },
    ));
    (md, passed)
}

fn tick(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "ok",
        Some(false) => "MISMATCH",
        None => "n/a",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_passes_and_renders_every_row() {
        let (md, passed) = study(Scale::Quick);
        assert!(passed, "\n{md}");
        assert!(md.contains("| configuration |"));
        // The quick matrix: 12 certifications, 4 refutations, 5 extras.
        assert_eq!(md.matches("certified (exhaustive").count(), 17, "\n{md}");
        assert_eq!(md.matches("deadlock reached").count(), 4, "\n{md}");
        assert!(md.contains("**PASS**"));
    }
}
