//! Section 6's scalar claims: sustainable-throughput ratios and average
//! path lengths.
//!
//! The paper reports, for its 256-node networks:
//!
//! * matrix transpose: partially adaptive sustainable throughput ≈ 2× the
//!   nonadaptive algorithms (mesh and hypercube);
//! * reverse-flip: partially adaptive ≈ 4× e-cube;
//! * the best mesh combination (negative-first + transpose) ≈ 30% above
//!   the second best (xy + uniform);
//! * average path lengths: 4.27 hops (reverse-flip) vs 4.01 (uniform) in
//!   the 8-cube; 11.34 (transpose) vs 10.61 (uniform) in the mesh.

use crate::figures;
use crate::Scale;
use turnroute_rng::rngs::StdRng;
use turnroute_rng::SeedableRng;
use turnroute_topology::{Hypercube, Mesh, NodeId, Topology};
use turnroute_traffic::{HypercubeTranspose, MeshTranspose, ReverseFlip, TrafficPattern, Uniform};

/// Measured claim ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct Claims {
    /// Best cube combination (adaptive + reverse-flip) over the runner-up
    /// (e-cube + uniform) (paper: ≈ 1.5).
    pub cube_best_ratio: f64,
    /// Best mesh combination (negative-first + transpose) over the
    /// runner-up (xy + uniform) (paper: ≈ 1.3).
    pub mesh_best_ratio: f64,
    /// Best adaptive / best nonadaptive sustainable throughput, mesh
    /// transpose (paper: ≈ 2).
    pub mesh_transpose_ratio: f64,
    /// Best adaptive / best nonadaptive sustainable throughput, cube
    /// transpose (paper: ≈ 2).
    pub cube_transpose_ratio: f64,
    /// Best adaptive / e-cube sustainable throughput, reverse-flip
    /// (paper: ≈ 4).
    pub reverse_flip_ratio: f64,
    /// Average minimal path length of uniform traffic in the 8-cube
    /// (paper: 4.01).
    pub cube_uniform_hops: f64,
    /// Average path length of reverse-flip traffic (paper: 4.27).
    pub cube_reverse_flip_hops: f64,
    /// Average minimal path length of uniform traffic in the 16×16 mesh
    /// (paper: 10.61).
    pub mesh_uniform_hops: f64,
    /// Average path length of mesh transpose traffic (paper: 11.34).
    pub mesh_transpose_hops: f64,
}

/// Analytic average minimal path length of a pattern on a topology
/// (sampled for stochastic patterns).
pub fn average_path_length(topo: &dyn Topology, pattern: &dyn TrafficPattern, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    let mut count = 0usize;
    // Deterministic patterns need one pass; sample stochastic ones.
    let passes = 64;
    for _ in 0..passes {
        for node in 0..topo.num_nodes() {
            let src = NodeId(node as u32);
            if let Some(dst) = pattern.dest(topo, src, &mut rng) {
                total += topo.min_hops(src, dst);
                count += 1;
            }
        }
    }
    total as f64 / count as f64
}

fn best(sweeps: &[crate::sweep::SweepResult], names: &[&str]) -> f64 {
    sweeps
        .iter()
        .filter(|s| names.contains(&s.algorithm.as_str()))
        .map(crate::sweep::SweepResult::sustainable_throughput)
        .fold(0.0, f64::max)
}

/// Measure the Section 6 claims at the given scale.
pub fn measure(scale: Scale, seed: u64) -> Claims {
    let adaptive_mesh = ["west-first", "north-last", "negative-first"];
    let adaptive_cube = [
        "p-cube",
        "all-but-one-negative-first",
        "all-but-one-positive-last",
    ];

    let f13 = figures::fig13(scale, seed, false);
    let f14 = figures::fig14(scale, seed, false);
    let f15 = figures::fig15(scale, seed, false);
    let f16 = figures::fig16(scale, seed, false);
    // The paper's cube-uniform runner-up combination (e-cube + uniform).
    let cube8 = Hypercube::new(8);
    let cube_uniform_ecube = crate::sweep::load_sweep(
        &cube8,
        &turnroute_routing::hypercube::e_cube(8),
        &Uniform::new(),
        &crate::sweep::default_rates(),
        scale,
        seed,
    )
    .sustainable_throughput();

    let mesh = Mesh::new_2d(16, 16);
    let cube = Hypercube::new(8);
    Claims {
        cube_best_ratio: best(&f16, &adaptive_cube) / cube_uniform_ecube,
        mesh_best_ratio: best(&f14, &["negative-first"]) / best(&f13, &["xy"]),
        mesh_transpose_ratio: best(&f14, &adaptive_mesh) / best(&f14, &["xy"]),
        cube_transpose_ratio: best(&f15, &adaptive_cube) / best(&f15, &["e-cube"]),
        reverse_flip_ratio: best(&f16, &adaptive_cube) / best(&f16, &["e-cube"]),
        cube_uniform_hops: average_path_length(&cube, &Uniform::new(), seed),
        cube_reverse_flip_hops: average_path_length(&cube, &ReverseFlip::new(), seed),
        mesh_uniform_hops: average_path_length(&mesh, &Uniform::new(), seed),
        mesh_transpose_hops: average_path_length(&mesh, &MeshTranspose::new(), seed),
    }
}

/// Render the claims, paper value vs measured.
pub fn render(scale: Scale, seed: u64) -> String {
    let c = measure(scale, seed);
    let _ = HypercubeTranspose::new(); // pattern exercised through fig15
    format!(
        "# Section 6 scalar claims: paper vs measured\n\n\
         | claim | paper | measured |\n|---|---:|---:|\n\
         | transpose sustainable throughput, adaptive/nonadaptive (mesh) | ~2x | {:.2}x |\n\
         | transpose sustainable throughput, adaptive/nonadaptive (8-cube) | ~2x | {:.2}x |\n\
         | reverse-flip sustainable throughput, adaptive/e-cube | ~4x | {:.2}x |\n\
         | avg path length, uniform, 8-cube | 4.01 | {:.2} |\n\
         | avg path length, reverse-flip, 8-cube | 4.27 | {:.2} |\n\
         | avg path length, uniform, 16x16 mesh | 10.61 | {:.2} |\n\
         | avg path length, transpose, 16x16 mesh | 11.34 | {:.2} |\n\
         | best cube combo (adaptive+reverse-flip) / runner-up (e-cube+uniform) | ~1.5x | {:.2}x |\n\
         | best mesh combo (NF+transpose) / runner-up (xy+uniform) | ~1.3x | {:.2}x |\n",
        c.mesh_transpose_ratio,
        c.cube_transpose_ratio,
        c.reverse_flip_ratio,
        c.cube_uniform_hops,
        c.cube_reverse_flip_hops,
        c.mesh_uniform_hops,
        c.mesh_transpose_hops,
        c.cube_best_ratio,
        c.mesh_best_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_lengths_match_paper() {
        let mesh = Mesh::new_2d(16, 16);
        let cube = Hypercube::new(8);
        let mu = average_path_length(&mesh, &Uniform::new(), 1);
        let mt = average_path_length(&mesh, &MeshTranspose::new(), 1);
        let cu = average_path_length(&cube, &Uniform::new(), 1);
        let cr = average_path_length(&cube, &ReverseFlip::new(), 1);
        assert!((mu - 10.61).abs() < 0.1, "mesh uniform {mu}");
        assert!((mt - 11.34).abs() < 0.1, "mesh transpose {mt}");
        assert!((cu - 4.01).abs() < 0.05, "cube uniform {cu}");
        assert!((cr - 4.27).abs() < 0.05, "cube reverse-flip {cr}");
    }
}
