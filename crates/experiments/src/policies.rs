//! Input/output selection policy ablation — the study the paper defers
//! to its companion paper \[19\] ("we investigate the effects of
//! different input and output selection policies on network
//! performance").
//!
//! We sweep one mid-to-high load for every (input, output) policy pair on
//! the 16×16 mesh under transpose traffic with west-first routing (an
//! algorithm with real adaptivity on that workload), reporting latency
//! and delivered throughput.

use crate::Scale;
use turnroute_model::RoutingFunction;
use turnroute_sim::{InputPolicy, OutputPolicy, Sim, SimConfig, SimReport};
use turnroute_topology::Mesh;
use turnroute_traffic::MeshTranspose;

/// One ablation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// Input selection policy simulated.
    pub input: InputPolicy,
    /// Output selection policy simulated.
    pub output: OutputPolicy,
    /// Results at the probe load.
    pub report: SimReport,
}

/// Run the policy grid at the given scale and load.
pub fn measure(
    routing: &dyn RoutingFunction,
    rate: f64,
    scale: Scale,
    seed: u64,
) -> Vec<PolicyCell> {
    let mesh = Mesh::new_2d(16, 16);
    let pattern = MeshTranspose::new();
    let (warmup, measure, drain) = scale.cycles();
    let mut out = Vec::new();
    for input in [
        InputPolicy::Fcfs,
        InputPolicy::PortOrder,
        InputPolicy::Random,
    ] {
        for output in [
            OutputPolicy::LowestDim,
            OutputPolicy::HighestDim,
            OutputPolicy::Random,
        ] {
            let cfg = SimConfig::builder()
                .injection_rate(rate)
                .warmup_cycles(warmup)
                .measure_cycles(measure)
                .drain_cycles(drain)
                .input_policy(input)
                .output_policy(output)
                .seed(seed)
                .build();
            let report = Sim::new(&mesh, routing, &pattern, cfg).run();
            out.push(PolicyCell {
                input,
                output,
                report,
            });
        }
    }
    out
}

/// Render the policy ablation as markdown.
pub fn render(routing: &dyn RoutingFunction, scale: Scale, seed: u64) -> String {
    let rate = 0.12;
    let cells = measure(routing, rate, scale, seed);
    let mut out = format!(
        "# Selection-policy ablation ({} routing, transpose, 16x16 mesh, {rate} flits/node/cycle)\n\n\
         | input policy | output policy | latency (us) | delivered (flits/us) | delivered frac |\n\
         |---|---|---:|---:|---:|\n",
        routing.name()
    );
    for cell in &cells {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.3} |\n",
            cell.input,
            cell.output,
            cell.report.avg_latency_us(),
            cell.report.throughput_flits_per_us(),
            cell.report.delivered_fraction(),
        ));
    }
    out.push_str(
        "\nThe paper's choices (local FCFS input selection, lowest-dimension\n\
         output selection) are the first row.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_routing::{mesh2d, RoutingMode};

    #[test]
    fn grid_covers_nine_cells_and_none_deadlock() {
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let cells = measure(&wf, 0.08, Scale::Quick, 5);
        assert_eq!(cells.len(), 9);
        for cell in &cells {
            assert!(
                !cell.report.deadlocked,
                "{}/{} deadlocked",
                cell.input, cell.output
            );
            assert!(cell.report.delivered_packets > 0);
        }
    }

    #[test]
    fn render_includes_paper_row() {
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let s = render(&wf, Scale::Quick, 5);
        assert!(s.contains("| fcfs | lowest-dim |"), "{s}");
    }
}
