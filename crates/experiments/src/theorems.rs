//! Theorems 1 and 6: prohibiting a quarter of the turns — `n(n-1)` of
//! `4n(n-1)` — is necessary and sufficient to prevent deadlock in an
//! n-dimensional mesh.

use turnroute_model::cycle::{breaks_all_abstract_cycles, num_abstract_cycles, num_ninety_turns};
use turnroute_model::{presets, Cdg};
use turnroute_topology::Mesh;

/// One row of the theorem verification table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremRow {
    /// Mesh dimensionality.
    pub n: usize,
    /// Total 90-degree turns, `4n(n-1)`.
    pub turns: usize,
    /// Abstract cycles, `n(n-1)`.
    pub cycles: usize,
    /// Turns prohibited by negative-first (the claimed minimum).
    pub prohibited: usize,
    /// Whether negative-first's turn-set CDG is acyclic on a small mesh
    /// (sufficiency witness).
    pub sufficient: bool,
    /// Whether every abstract cycle really requires a prohibition
    /// (necessity: all cycles broken, and count equals the cycle count).
    pub necessary: bool,
}

/// Verify Theorems 1 and 6 mechanically for `n` in `2..=max_n`.
pub fn verify(max_n: usize) -> Vec<TheoremRow> {
    (2..=max_n)
        .map(|n| {
            let set = presets::negative_first_turns(n);
            let prohibited = set.prohibited_ninety().len();
            // Sufficiency: the CDG of the pruned turn set is acyclic.
            let mesh = Mesh::new_cubic(3, n);
            let sufficient = Cdg::from_turn_set(&mesh, &set).is_acyclic();
            // Necessity: the prohibited count equals the number of
            // abstract cycles, and each cycle is broken exactly once by
            // construction — fewer prohibitions would leave some cycle
            // intact.
            let necessary =
                breaks_all_abstract_cycles(&set) && prohibited == num_abstract_cycles(n);
            TheoremRow {
                n,
                turns: num_ninety_turns(n),
                cycles: num_abstract_cycles(n),
                prohibited,
                sufficient,
                necessary,
            }
        })
        .collect()
}

/// Render the verification as markdown.
pub fn render(max_n: usize) -> String {
    let mut out = String::from(
        "# Theorems 1 & 6: n(n-1) prohibited turns, necessary and sufficient\n\n\
         | n | turns 4n(n-1) | cycles n(n-1) | prohibited (NF) | quarter? | CDG acyclic | all cycles broken |\n\
         |--:|--:|--:|--:|:--:|:--:|:--:|\n",
    );
    for row in verify(max_n) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            row.n,
            row.turns,
            row.cycles,
            row.prohibited,
            if row.prohibited * 4 == row.turns {
                "yes"
            } else {
                "NO"
            },
            if row.sufficient { "yes" } else { "NO" },
            if row.necessary { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_counts_hold_up_to_4d() {
        for row in verify(4) {
            assert_eq!(row.turns, 4 * row.n * (row.n - 1));
            assert_eq!(row.cycles, row.n * (row.n - 1));
            assert_eq!(row.prohibited, row.cycles);
            assert_eq!(row.prohibited * 4, row.turns, "a quarter of the turns");
            assert!(row.sufficient, "n = {}", row.n);
            assert!(row.necessary, "n = {}", row.n);
        }
    }

    #[test]
    fn render_table_has_rows() {
        let s = render(3);
        assert!(s.contains("| 2 | 8 | 2 | 2 | yes | yes | yes |"), "{s}");
        assert!(s.contains("| 3 | 24 | 6 | 6 | yes | yes | yes |"), "{s}");
    }
}
