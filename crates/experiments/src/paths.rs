//! Figures 5b, 9b, 10b: example paths of the partially adaptive
//! algorithms in an 8×8 mesh, detouring around blocked channels.

use turnroute_model::RoutingFunction;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_topology::{Direction, Mesh, NodeId, Topology};

/// Walk a single packet from `src` to `dst` under `routing`, avoiding the
/// `blocked` channels when an alternative is offered. Returns the node
/// sequence.
///
/// # Panics
///
/// Panics if the walk gets stuck (every offered channel blocked) or
/// exceeds `max_hops` (misrouting livelock in a demo scenario).
pub fn trace_path(
    topo: &dyn Topology,
    routing: &dyn RoutingFunction,
    src: NodeId,
    dst: NodeId,
    blocked: &[(NodeId, Direction)],
    max_hops: usize,
) -> Vec<NodeId> {
    let mut path = vec![src];
    let mut current = src;
    let mut arrived = None;
    while current != dst {
        assert!(path.len() <= max_hops, "walk exceeded {max_hops} hops");
        let dirs = routing.route(topo, current, dst, arrived);
        assert!(!dirs.is_empty(), "stuck at {current}");
        let usable: Vec<Direction> = dirs
            .iter()
            .filter(|&d| !blocked.contains(&(current, d)))
            .collect();
        // Prefer productive usable channels, then any usable, then (as a
        // stalled packet eventually would) the blocked best option.
        let here = topo.min_hops(current, dst);
        let choice = usable
            .iter()
            .copied()
            .find(|&d| {
                topo.neighbor(current, d)
                    .is_some_and(|n| topo.min_hops(n, dst) < here)
            })
            .or_else(|| usable.first().copied())
            .unwrap_or_else(|| dirs.iter().next().expect("nonempty"));
        current = topo
            .neighbor(current, choice)
            .expect("offered channel exists");
        arrived = Some(choice);
        path.push(current);
    }
    path
}

fn fmt_path(topo: &dyn Topology, path: &[NodeId]) -> String {
    path.iter()
        .map(|&n| topo.coord_of(n).to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Render example paths for west-first, north-last, and negative-first in
/// an 8×8 mesh, with and without blocked channels (the figures' gray
/// bars).
pub fn render() -> String {
    let mesh = Mesh::new_2d(8, 8);
    let mut out = String::from("# Figures 5b / 9b / 10b: example paths in an 8x8 mesh\n\n");

    let cases: Vec<(&str, Box<dyn RoutingFunction>)> = vec![
        (
            "west-first (Figure 5b)",
            Box::new(mesh2d::west_first(RoutingMode::Minimal)),
        ),
        (
            "north-last (Figure 9b)",
            Box::new(mesh2d::north_last(RoutingMode::Minimal)),
        ),
        (
            "negative-first (Figure 10b)",
            Box::new(mesh2d::negative_first(RoutingMode::Minimal)),
        ),
    ];
    let src = mesh.node_at_coords(&[1, 2]);
    let dst = mesh.node_at_coords(&[6, 5]);
    let blocked = [
        (mesh.node_at_coords(&[2, 2]), Direction::EAST),
        (mesh.node_at_coords(&[3, 3]), Direction::NORTH),
        (mesh.node_at_coords(&[4, 4]), Direction::EAST),
    ];
    for (title, alg) in &cases {
        let clear = trace_path(&mesh, alg, src, dst, &[], 32);
        let detour = trace_path(&mesh, alg, src, dst, &blocked, 32);
        out.push_str(&format!(
            "## {title}\n\n* unobstructed ({} hops): {}\n* around blocked channels ({} hops): {}\n\n",
            clear.len() - 1,
            fmt_path(&mesh, &clear),
            detour.len() - 1,
            fmt_path(&mesh, &detour),
        ));
    }

    // A nonminimal example: west-first overshooting west around a wall of
    // blocked eastward channels (Figure 5b's nonminimal path).
    let wf = mesh2d::west_first(RoutingMode::Nonminimal);
    let src = mesh.node_at_coords(&[3, 3]);
    let dst = mesh.node_at_coords(&[5, 3]);
    let wall = [
        (mesh.node_at_coords(&[3, 3]), Direction::EAST),
        (mesh.node_at_coords(&[3, 3]), Direction::NORTH),
    ];
    let path = trace_path(&mesh, &wf, src, dst, &wall, 32);
    out.push_str(&format!(
        "## nonminimal west-first detour\n\n* {} hops (minimal would be {}): {}\n",
        path.len() - 1,
        mesh.min_hops(src, dst),
        fmt_path(&mesh, &path),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobstructed_traces_are_minimal() {
        let mesh = Mesh::new_2d(8, 8);
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let src = mesh.node_at_coords(&[1, 2]);
        let dst = mesh.node_at_coords(&[6, 5]);
        let path = trace_path(&mesh, &wf, src, dst, &[], 32);
        assert_eq!(path.len() - 1, mesh.min_hops(src, dst));
        assert_eq!(*path.first().unwrap(), src);
        assert_eq!(*path.last().unwrap(), dst);
    }

    #[test]
    fn blocked_channels_cause_detours_not_failures() {
        let mesh = Mesh::new_2d(8, 8);
        let nl = mesh2d::north_last(RoutingMode::Minimal);
        let src = mesh.node_at_coords(&[1, 2]);
        let dst = mesh.node_at_coords(&[6, 5]);
        let blocked = [(mesh.node_at_coords(&[2, 2]), Direction::EAST)];
        let path = trace_path(&mesh, &nl, src, dst, &blocked, 32);
        assert_eq!(*path.last().unwrap(), dst);
        // Minimal adaptivity: the detour is still a shortest path.
        assert_eq!(path.len() - 1, mesh.min_hops(src, dst));
    }

    #[test]
    fn consecutive_path_nodes_are_neighbors() {
        let mesh = Mesh::new_2d(8, 8);
        let nf = mesh2d::negative_first(RoutingMode::Minimal);
        let src = mesh.node_at_coords(&[7, 7]);
        let dst = mesh.node_at_coords(&[0, 0]);
        let path = trace_path(&mesh, &nf, src, dst, &[], 32);
        for w in path.windows(2) {
            assert_eq!(mesh.min_hops(w[0], w[1]), 1);
        }
    }

    #[test]
    fn render_shows_all_three_algorithms() {
        let s = render();
        assert!(s.contains("west-first (Figure 5b)"));
        assert!(s.contains("north-last (Figure 9b)"));
        assert!(s.contains("negative-first (Figure 10b)"));
        assert!(s.contains("nonminimal west-first detour"));
    }
}
