//! Chaos-storm soak: seeded MTTF/MTTR fault storms driven through the
//! certificate-gated healing engine and the virtual-channel engine.
//!
//! A [`StormSpec`] compiles to a deterministic fault plan of overlapping
//! permanent and transient faults ([`turnroute_sim::harness::chaos_plan`]).
//! The soak then runs the storm twice:
//!
//! 1. **Wormhole engine, healing attached** — `turnheal` pauses
//!    arbitration around each fault transition, re-proves the masked
//!    channel graph, and swaps only behind the checker gate, while the
//!    [`InvariantObserver`] shadow model audits every flit move and a
//!    [`HealingLog`] records the full reconfiguration protocol as a
//!    replayable TTRL stream.
//! 2. **Virtual-channel engine** — the identical storm under the same
//!    sanitizer, so both engines face millions of faulted cycles.
//!
//! The soak passes only if both sanitizers stay clean, neither engine
//! deadlocks, every reconfiguration epoch carries a checker-validated
//! certificate, and each engine's delivered fraction stays above the
//! storm's severity-derived floor. With `inject_bad`, the first
//! post-baseline epoch deliberately submits the previous (stale)
//! certificate to the checker, which must reject it — the self-test CI
//! runs to prove the gate is load-bearing.

use crate::Scale;
use turnroute_analysis::{run_healing, HealOptions, HealReport};
use turnroute_obslog::log::fnv1a64;
use turnroute_obslog::LogObserver;
use turnroute_routing::{mesh2d, RoutingMode};
use turnroute_sim::harness::{chaos_plan, StormSpec};
use turnroute_sim::obs::ChannelLayout;
use turnroute_sim::{HealEvent, InvariantObserver, InvariantSummary, SimConfig, SimObserver};
use turnroute_topology::{Mesh, Topology};
use turnroute_traffic::Uniform;
use turnroute_vc::{DoubleYAdaptive, VcSim};

/// Forwards only the healing protocol — fault transitions and
/// [`HealEvent`]s — into a TTRL log. The resulting *healing log* stays
/// kilobytes even over million-cycle storms, replays through `turnstat`
/// like any other log, and is the byte-compared determinism witness of
/// the chaos CI gate.
pub struct HealingLog(pub LogObserver);

impl SimObserver for HealingLog {
    fn on_fault(&mut self, now: u64, slot: usize, active: bool) {
        self.0.on_fault(now, slot, active);
    }

    fn on_heal(&mut self, now: u64, ev: HealEvent) {
        self.0.on_heal(now, ev);
    }
}

/// The storm the soak runs at a given scale. `Full` is the
/// acceptance-scale storm: a million-cycle horizon with overlapping
/// permanent and transient link faults plus transient node faults.
/// `Quick` shrinks the horizon for CI while keeping every ingredient
/// (overlap, permanents, node faults) present.
pub fn storm(scale: Scale, seed: u64) -> StormSpec {
    match scale {
        Scale::Quick => StormSpec {
            horizon: 12_000,
            link_mttf: 900,
            mean_repair: 500,
            permanent_fraction: 0.08,
            node_mttf: 5_000,
            node_mean_repair: 300,
            seed,
        },
        Scale::Full => StormSpec {
            horizon: 1_000_000,
            link_mttf: 2_000,
            mean_repair: 900,
            permanent_fraction: 0.002,
            node_mttf: 25_000,
            node_mean_repair: 500,
            seed,
        },
    }
}

/// One engine's share of the soak.
#[derive(Debug, Clone)]
pub struct EngineSoak {
    /// Engine label (`sim+heal` or `vc`).
    pub engine: String,
    /// Delivered fraction over the measurement window.
    pub delivered_fraction: f64,
    /// The floor the storm's severity demands.
    pub floor: f64,
    /// Whether the run deadlocked.
    pub deadlocked: bool,
    /// Shadow-model audit counters.
    pub sanitizer: InvariantSummary,
    /// Recorded sanitizer violations (empty on a clean run).
    pub violations: Vec<String>,
}

impl EngineSoak {
    /// Clean sanitizer, no deadlock, delivered fraction above the floor.
    pub fn passed(&self) -> bool {
        self.sanitizer.violations == 0 && !self.deadlocked && self.delivered_fraction >= self.floor
    }
}

/// Everything one chaos soak established.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The storm that ran.
    pub spec: StormSpec,
    /// Expected fraction of channels concurrently failed.
    pub severity: f64,
    /// Fault transitions the compiled plan schedules.
    pub fault_transitions: usize,
    /// The healing engine's epoch-by-epoch report.
    pub heal: HealReport,
    /// Wormhole-engine (healing) soak results.
    pub sim: EngineSoak,
    /// Virtual-channel-engine soak results.
    pub vc: EngineSoak,
    /// The sealed healing log (TTRL bytes).
    pub log: Vec<u8>,
    /// FNV-1a-64 of the sealed healing log — two same-seed soaks must
    /// print the same hash.
    pub log_hash: u64,
}

impl ChaosReport {
    /// The soak's overall verdict: both engines pass, every epoch is
    /// certified, and (when the self-test ran) the stale certificate was
    /// rejected.
    pub fn passed(&self) -> bool {
        self.sim.passed() && self.vc.passed() && self.heal.passed()
    }

    /// Human-readable soak summary (the `chaos.md` artifact).
    pub fn render(&self) -> String {
        let s = &self.spec;
        let mut out = format!(
            "## Chaos-storm soak\n\n\
             Storm: horizon {} cycles, link MTTF {} / MTTR {} ({}% permanent), \
             node MTTF {} / MTTR {}, storm seed {} — {} scheduled fault \
             transitions, expected severity {:.4} (concurrently-failed channel \
             fraction).\n\n",
            s.horizon,
            s.link_mttf,
            s.mean_repair,
            (s.permanent_fraction * 100.0).round(),
            s.node_mttf,
            s.node_mean_repair,
            s.seed,
            self.fault_transitions,
            self.severity,
        );
        out.push_str(
            "| engine | delivered | floor | deadlock | sanitizer violations | verdict |\n\
             |:---|---:|---:|:---|---:|:---|\n",
        );
        for e in [&self.sim, &self.vc] {
            out.push_str(&format!(
                "| {} | {:.4} | {:.4} | {} | {} | {} |\n",
                e.engine,
                e.delivered_fraction,
                e.floor,
                if e.deadlocked { "DEADLOCK" } else { "no" },
                e.sanitizer.violations,
                if e.passed() { "pass" } else { "FAIL" },
            ));
        }
        out.push_str(&format!(
            "\nHealing: {} epochs ({} incremental), every epoch certified: {}.\n",
            self.heal.epochs.len(),
            self.heal.incremental_epochs(),
            if self.heal.certified() { "yes" } else { "NO" },
        ));
        match self.heal.injected_caught {
            Some(true) => out
                .push_str("inject-bad self-test ok: the checker rejected the stale certificate.\n"),
            Some(false) => out.push_str(
                "inject-bad self-test FAILED: the stale certificate slipped past the checker.\n",
            ),
            None => {}
        }
        out.push_str(&format!(
            "Healing log: {} bytes, fnv1a64 {:016x} (same seed ⇒ same hash).\n\n\
             Soak verdict: **{}**\n",
            self.log.len(),
            self.log_hash,
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        for e in [&self.sim, &self.vc] {
            for v in &e.violations {
                out.push_str(&format!("  {}: {v}\n", e.engine));
            }
        }
        out
    }
}

/// The soak's simulator configuration: moderate load so delivery loss is
/// attributable to the storm, a packet lifetime with retries so blocked
/// packets degrade into drops instead of hanging the run, and a measure
/// window covering the whole storm horizon.
fn soak_config(spec: &StormSpec, topo: &dyn Topology, traffic_seed: u64) -> SimConfig {
    SimConfig::builder()
        .injection_rate(0.05)
        .warmup_cycles(1_000)
        .measure_cycles(spec.horizon)
        .drain_cycles(4_000)
        .packet_timeout(1_500)
        .max_retries(2)
        .deadlock_threshold(20_000)
        .fault_plan(chaos_plan(topo, spec))
        .seed(traffic_seed)
        .build()
}

/// Run the full soak: the storm through the healing wormhole engine and
/// the virtual-channel engine, both sanitized.
pub fn soak(scale: Scale, seed: u64, inject_bad: bool) -> ChaosReport {
    let m = match scale {
        Scale::Quick => 6,
        Scale::Full => 8,
    };
    let mesh = Mesh::new_2d(m, m);
    let spec = storm(scale, seed);
    let severity = spec.severity(&mesh);
    let floor = spec.delivered_floor(&mesh);
    let pattern = Uniform::new();
    let wf = mesh2d::west_first(RoutingMode::Minimal);

    // Engine 1: wormhole + healing, sanitized and logged.
    let cfg = soak_config(&spec, &mesh, seed.wrapping_add(1));
    let fault_transitions = cfg.fault_plan.events().len();
    let log = HealingLog(LogObserver::start(&mesh, &wf, &pattern, &cfg, "sim"));
    let sanitizer = InvariantObserver::new(ChannelLayout::for_topology(&mesh), cfg.buffer_depth);
    let (heal, (log, sanitizer)) = run_healing(
        &mesh,
        &wf,
        &pattern,
        cfg,
        (log, sanitizer),
        &HealOptions { inject_bad },
    );
    let log = log.0.finish();
    let log_hash = fnv1a64(&log);
    let sim = EngineSoak {
        engine: "sim+heal".to_string(),
        delivered_fraction: heal.sim.delivered_fraction(),
        floor,
        deadlocked: heal.sim.deadlocked,
        sanitizer: sanitizer.summary(),
        violations: sanitizer.violations().to_vec(),
    };

    // Engine 2: the virtual-channel engine under the identical storm.
    // VC buffers are depth 1 regardless of the configured network depth.
    let routing = DoubleYAdaptive::new();
    let cfg = soak_config(&spec, &mesh, seed.wrapping_add(2));
    let obs = InvariantObserver::new(ChannelLayout::new(mesh.num_nodes(), 4), 1);
    let mut vc_sim = VcSim::with_observer(&mesh, &routing, &pattern, cfg, obs);
    let report = vc_sim.run();
    let obs = vc_sim.observer();
    let vc = EngineSoak {
        engine: "vc".to_string(),
        delivered_fraction: report.delivered_fraction(),
        floor,
        deadlocked: report.deadlocked,
        sanitizer: obs.summary(),
        violations: obs.violations().to_vec(),
    };

    ChaosReport {
        spec,
        severity,
        fault_transitions,
        heal,
        sim,
        vc,
        log,
        log_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_obslog::verify_bytes;

    fn tiny() -> ChaosReport {
        // A scaled-down quick storm so the test stays fast; every soak
        // ingredient (overlap, permanents, node faults, healing, both
        // engines) is still present.
        let spec = StormSpec {
            horizon: 4_000,
            ..storm(Scale::Quick, 3)
        };
        let mesh = Mesh::new_2d(6, 6);
        assert!(chaos_plan(&mesh, &spec).len() > 2);
        soak_with(spec, false)
    }

    fn soak_with(spec: StormSpec, inject_bad: bool) -> ChaosReport {
        // Inline copy of `soak` over an explicit spec (the public entry
        // fixes the spec by scale so artifacts stay canonical).
        let mesh = Mesh::new_2d(6, 6);
        let severity = spec.severity(&mesh);
        let floor = spec.delivered_floor(&mesh);
        let pattern = Uniform::new();
        let wf = mesh2d::west_first(RoutingMode::Minimal);
        let cfg = soak_config(&spec, &mesh, spec.seed.wrapping_add(1));
        let fault_transitions = cfg.fault_plan.events().len();
        let log = HealingLog(LogObserver::start(&mesh, &wf, &pattern, &cfg, "sim"));
        let sanitizer =
            InvariantObserver::new(ChannelLayout::for_topology(&mesh), cfg.buffer_depth);
        let (heal, (log, sanitizer)) = run_healing(
            &mesh,
            &wf,
            &pattern,
            cfg,
            (log, sanitizer),
            &HealOptions { inject_bad },
        );
        let log = log.0.finish();
        let log_hash = fnv1a64(&log);
        let sim = EngineSoak {
            engine: "sim+heal".to_string(),
            delivered_fraction: heal.sim.delivered_fraction(),
            floor,
            deadlocked: heal.sim.deadlocked,
            sanitizer: sanitizer.summary(),
            violations: sanitizer.violations().to_vec(),
        };
        let routing = DoubleYAdaptive::new();
        let cfg = soak_config(&spec, &mesh, spec.seed.wrapping_add(2));
        let obs = InvariantObserver::new(ChannelLayout::new(mesh.num_nodes(), 4), 1);
        let mut vc_sim = VcSim::with_observer(&mesh, &routing, &pattern, cfg, obs);
        let report = vc_sim.run();
        let obs = vc_sim.observer();
        let vc = EngineSoak {
            engine: "vc".to_string(),
            delivered_fraction: report.delivered_fraction(),
            floor,
            deadlocked: report.deadlocked,
            sanitizer: obs.summary(),
            violations: obs.violations().to_vec(),
        };
        ChaosReport {
            spec,
            severity,
            fault_transitions,
            heal,
            sim,
            vc,
            log,
            log_hash,
        }
    }

    #[test]
    fn tiny_storm_soaks_clean_in_both_engines() {
        let r = tiny();
        assert!(r.passed(), "\n{}", r.render());
        assert!(r.heal.epochs.len() > 1, "storm must open healing epochs");
        assert!(r.heal.certified());
        // The healing log is a valid TTRL stream carrying the protocol.
        let s = verify_bytes(&r.log).expect("healing log verifies");
        // Epoch extensions re-emit EpochOpen under the same id, so the
        // event count can exceed the completed-epoch record count.
        assert!(s.count("heal_epoch") >= r.heal.epochs.len() as u64);
        assert_eq!(s.count("heal_proof"), r.heal.epochs.len() as u64);
        assert_eq!(s.count("heal_cert"), r.heal.epochs.len() as u64);
        assert!(s.count("heal_swap") > 0);
        assert!(s.count("fault") > 0);
        assert!(r.render().contains("PASS"));
    }

    #[test]
    fn same_seed_soaks_are_byte_identical() {
        let (a, b) = (tiny(), tiny());
        assert_eq!(a.log, b.log, "healing logs must be byte-identical");
        assert_eq!(a.log_hash, b.log_hash);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn inject_bad_is_caught_by_the_checker_gate() {
        let spec = StormSpec {
            horizon: 4_000,
            ..storm(Scale::Quick, 3)
        };
        let r = soak_with(spec, true);
        assert_eq!(r.heal.injected_caught, Some(true), "\n{}", r.heal.render());
        assert!(r.passed(), "\n{}", r.render());
        assert!(r.render().contains("self-test ok"));
    }
}
